//! # db2graph-server — the network surface of the graph
//!
//! A dependency-free HTTP/1.1 query service over `std::net`, fronting a
//! [`Db2Graph`] the way a Gremlin server fronts the paper's TinkerPop
//! stack. Design points, all load-bearing:
//!
//! * **Fixed acceptor + worker pool.** One thread accepts; `workers`
//!   threads execute. Max in-flight requests is exactly the worker
//!   count — queries never oversubscribe the process.
//! * **Admission control.** Accepted connections enter a bounded queue;
//!   when it is full the acceptor sheds the connection with `429`
//!   immediately instead of queuing unboundedly.
//! * **Per-request snapshot.** Every `/query` pins one committed MVCC
//!   snapshot for its whole script (via `Db2Graph::run`'s existing
//!   pinning), so a response can never observe half of a concurrent
//!   writer's transaction.
//! * **Per-request deadline.** `query_timeout` converts to a deadline the
//!   backend checks before every SQL statement; an expired query aborts
//!   with `503` and counts in `query_timeouts`.
//! * **Hostile-input limits.** Read timeout, header budget, body budget;
//!   malformed HTTP, JSON, or Gremlin is a structured `400`, never a
//!   panic.
//! * **Graceful shutdown.** Stop accepting, drain everything already
//!   admitted, join every thread. After shutdown,
//!   `completed == admitted`: zero dropped in-flight queries.
//! * **Vacuum daemon.** MVCC garbage collection runs on the server's
//!   clock (see [`vacuum::VacuumDaemon`]) and reports through `/metrics`.
//!
//! See `docs/SERVER.md` for the endpoint reference and curl examples.

pub mod client;
pub mod gjson;
pub mod http;
pub mod metrics;
pub mod replica;
pub mod vacuum;

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use db2graph_core::json::Json;
use db2graph_core::{Db2Graph, GraphError};

use crate::gjson::gvalue_to_json;
use crate::http::{HttpError, Request};
use crate::metrics::ServerMetrics;
use crate::replica::{ReplicaDaemon, ReplicaMetrics};
use crate::vacuum::VacuumDaemon;

pub use crate::client::{http_call, http_call_bytes, post_query, HttpBytesResponse, HttpResponse};

/// Serving knobs. `Default` is production-shaped; [`ServerConfig::from_env`]
/// layers the `DB2GRAPH_*` environment on top.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; `:0` picks an ephemeral port (see
    /// [`ServerHandle::addr`]). Env: `DB2GRAPH_HTTP_ADDR`.
    pub addr: String,
    /// Worker threads — the hard cap on in-flight requests.
    /// Env: `DB2GRAPH_MAX_INFLIGHT`.
    pub workers: usize,
    /// Accepted connections waiting for a worker beyond the in-flight
    /// cap; when full, new arrivals are shed with 429 (clamped ≥ 1).
    pub queue_depth: usize,
    /// Per-query execution budget; `None` disables deadlines.
    /// Env: `DB2GRAPH_QUERY_TIMEOUT_MS` (0 disables).
    pub query_timeout: Option<Duration>,
    /// Total budget for reading one request — head and body together —
    /// against slow or stalled clients (408). A per-request deadline, not
    /// a per-read idle timeout: dripping bytes does not renew it.
    pub read_timeout: Duration,
    /// Request head budget (431 beyond it).
    pub max_header_bytes: usize,
    /// Request body budget (413 beyond it).
    pub max_body_bytes: usize,
    /// Vacuum daemon period; `None` disables the daemon.
    pub vacuum_interval: Option<Duration>,
    /// Checkpoint cadence, driven by the vacuum daemon; `None` disables
    /// periodic checkpoints. Ignored for an in-memory database.
    /// Env: `DB2GRAPH_CHECKPOINT_MS` (0 disables).
    pub checkpoint_interval: Option<Duration>,
    /// Directory the database persists to (WAL + checkpoints). `None`
    /// serves a purely in-memory database. Env: `DB2GRAPH_DATA_DIR`.
    pub data_dir: Option<String>,
    /// Durability mode for `data_dir`. Env: `DB2GRAPH_DURABILITY`
    /// (`always`/`batch`/`off`).
    pub durability: reldb::Durability,
    /// Enable `POST /sql`, the raw-SQL administration channel. It can
    /// mutate or drop any table and carries no authentication, so it is
    /// opt-in and off by default — the graph endpoints stay read-only.
    /// When disabled the endpoint answers 403.
    /// Env: `DB2GRAPH_SQL_ENDPOINT` (`1`/`true` to enable).
    pub sql_endpoint: bool,
    /// Follow a primary at `host:port` instead of serving standalone: the
    /// server becomes a log-shipping read replica — it bootstraps from the
    /// primary's checkpoint, tails its WAL, serves every read endpoint at
    /// the applied epoch, and answers writes 403 pointing at the primary.
    /// Replicas serve from memory; `data_dir`/`durability` are ignored (a
    /// restarted replica re-bootstraps). Env: `DB2GRAPH_REPLICA_OF`.
    pub replica_of: Option<String>,
    /// How often a caught-up replica polls the primary for new WAL
    /// records (while behind it streams without pausing).
    /// Env: `DB2GRAPH_REPLICA_POLL_MS`.
    pub replica_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:8182".into(),
            workers: 8,
            queue_depth: 64,
            query_timeout: Some(Duration::from_secs(30)),
            read_timeout: Duration::from_secs(10),
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            vacuum_interval: Some(Duration::from_secs(1)),
            checkpoint_interval: Some(Duration::from_secs(60)),
            data_dir: None,
            durability: reldb::Durability::Always,
            sql_endpoint: false,
            replica_of: None,
            replica_poll: Duration::from_millis(100),
        }
    }
}

impl ServerConfig {
    /// Defaults overridden by `DB2GRAPH_HTTP_ADDR`, `DB2GRAPH_MAX_INFLIGHT`,
    /// `DB2GRAPH_QUERY_TIMEOUT_MS`, `DB2GRAPH_DATA_DIR`,
    /// `DB2GRAPH_DURABILITY`, `DB2GRAPH_CHECKPOINT_MS`,
    /// `DB2GRAPH_SQL_ENDPOINT`, `DB2GRAPH_REPLICA_OF`, and
    /// `DB2GRAPH_REPLICA_POLL_MS`.
    pub fn from_env() -> ServerConfig {
        let mut c = ServerConfig::default();
        if let Ok(addr) = std::env::var("DB2GRAPH_HTTP_ADDR") {
            if !addr.is_empty() {
                c.addr = addr;
            }
        }
        if let Some(n) = env_parse::<usize>("DB2GRAPH_MAX_INFLIGHT") {
            c.workers = n.max(1);
        }
        if let Some(ms) = env_parse::<u64>("DB2GRAPH_QUERY_TIMEOUT_MS") {
            c.query_timeout = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Ok(dir) = std::env::var("DB2GRAPH_DATA_DIR") {
            if !dir.is_empty() {
                c.data_dir = Some(dir);
            }
        }
        if let Ok(mode) = std::env::var("DB2GRAPH_DURABILITY") {
            if let Some(m) = reldb::Durability::parse(&mode) {
                c.durability = m;
            }
        }
        if let Some(ms) = env_parse::<u64>("DB2GRAPH_CHECKPOINT_MS") {
            c.checkpoint_interval = (ms > 0).then(|| Duration::from_millis(ms));
        }
        if let Ok(v) = std::env::var("DB2GRAPH_SQL_ENDPOINT") {
            c.sql_endpoint = matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "yes");
        }
        if let Ok(primary) = std::env::var("DB2GRAPH_REPLICA_OF") {
            if !primary.is_empty() {
                c.replica_of = Some(primary);
            }
        }
        if let Some(ms) = env_parse::<u64>("DB2GRAPH_REPLICA_POLL_MS") {
            c.replica_poll = Duration::from_millis(ms.max(1));
        }
        c
    }

    /// Open the database this configuration describes: durable (running
    /// crash recovery) when `data_dir` is set, in-memory otherwise. A
    /// replica (`replica_of`) always serves from memory — its durability
    /// story is re-bootstrapping from the primary, so `data_dir` is
    /// ignored — and is synchronized with the primary before returning,
    /// so the graph overlay constructed over it reads a populated
    /// catalog.
    pub fn open_database(&self) -> reldb::DbResult<Arc<reldb::Database>> {
        if let Some(primary) = &self.replica_of {
            let db = Arc::new(reldb::Database::new());
            replica::sync_once(&db, primary, self.read_timeout, Duration::from_secs(30))
                .map_err(reldb::DbError::Io)?;
            return Ok(db);
        }
        match &self.data_dir {
            Some(dir) => Ok(Arc::new(reldb::Database::open_with(dir, self.durability)?)),
            None => Ok(Arc::new(reldb::Database::new())),
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|s| s.trim().parse().ok())
}

/// Follower identity, present only when serving as a read replica: who
/// the primary is (for 403 redirects and metrics labels) and the apply
/// loop's counters.
struct ReplicaInfo {
    primary: String,
    metrics: Arc<ReplicaMetrics>,
}

/// State shared by the acceptor, the workers, and the handle.
struct Shared {
    graph: Arc<Db2Graph>,
    config: ServerConfig,
    metrics: ServerMetrics,
    /// `Some` when this server is a log-shipping follower.
    replica: Option<ReplicaInfo>,
    /// Admitted connections waiting for a worker.
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    /// Once true: the acceptor exits, workers drain the queue and exit.
    shutdown: AtomicBool,
    /// Live `http-shed` courtesy threads (bounded; see [`shed`]).
    shedding: AtomicUsize,
    /// Join handles for shed threads, pruned as they finish; shutdown
    /// joins the stragglers so in-flight 429s complete before the
    /// [`DrainReport`] is final.
    shed_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// The graph query service. [`GraphServer::start`] binds, spawns the
/// thread pool and the vacuum daemon, and returns a [`ServerHandle`].
pub struct GraphServer;

impl GraphServer {
    pub fn start(graph: Arc<Db2Graph>, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let vacuum = config.vacuum_interval.map(|interval| {
            VacuumDaemon::start(
                graph.database().clone(),
                graph.dialect().registry().clone(),
                interval,
                config.checkpoint_interval,
            )
        });
        // A follower keeps itself current on its own clock: the daemon
        // tails the primary's WAL and applies commits while the workers
        // serve reads at whatever epoch has been applied so far.
        let replica_daemon = config.replica_of.clone().map(|primary| {
            ReplicaDaemon::start(
                graph.database().clone(),
                primary,
                config.replica_poll,
                config.read_timeout,
            )
        });
        let replica = replica_daemon.as_ref().map(|d| ReplicaInfo {
            primary: d.primary().to_string(),
            metrics: d.metrics().clone(),
        });
        let shared = Arc::new(Shared {
            graph,
            config: config.clone(),
            metrics: ServerMetrics::default(),
            replica,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            shedding: AtomicUsize::new(0),
            shed_threads: Mutex::new(Vec::new()),
        });
        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("http-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("http-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(ServerHandle { shared, addr, acceptor: Some(acceptor), workers, vacuum, replica_daemon })
    }
}

/// Owner of the serving threads. Dropping the handle performs a graceful
/// shutdown (prefer calling [`ServerHandle::shutdown`] explicitly).
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    vacuum: Option<VacuumDaemon>,
    replica_daemon: Option<ReplicaDaemon>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving-layer counters (admission, shedding, bytes).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Block until the acceptor thread exits (it never does on its own —
    /// this is for serve-forever binaries that end via process signal).
    pub fn wait(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // The acceptor is gone; drop-time shutdown joins the rest.
    }

    /// Graceful shutdown: stop accepting, drain every admitted
    /// connection, join all threads, run a final vacuum pass. Returns
    /// once everything is down, with the final counters — a drained
    /// server always reports `completed == admitted`.
    pub fn shutdown(mut self) -> DrainReport {
        self.shutdown_impl();
        let m = &self.shared.metrics;
        DrainReport {
            admitted: m.admitted(),
            completed: m.completed(),
            rejected: m.rejected(),
            query_timeouts: m.query_timeouts(),
        }
    }

    fn shutdown_impl(&mut self) {
        // Store the flag while holding the queue mutex. A worker decides
        // to wait only after checking the flag under this same lock, so
        // once the store below completes, any worker that read `false` has
        // already released the lock by entering `wait()` (where the later
        // notify_all reaches it), and any worker checking afterwards sees
        // `true`. Storing without the lock loses the wakeup when the
        // store+notify lands between a worker's flag check and its wait,
        // hanging shutdown forever.
        {
            let _q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.shutdown.store(true, Ordering::SeqCst);
        }
        // Unblock the acceptor's blocking `accept()` by dialing it, and
        // join it *before* waking the workers: anything it admitted in the
        // meantime must still find live workers to drain it.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Wake every idle worker; busy ones re-check the flag after
        // finishing their request and after the queue runs dry.
        self.shared.queue_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Let in-flight 429 courtesy threads finish writing (each is
        // bounded by the read/write timeouts) so the drain report's
        // rejected/bytes counters are final when shutdown returns.
        let stragglers: Vec<JoinHandle<()>> = {
            let mut v = self.shared.shed_threads.lock().unwrap_or_else(|e| e.into_inner());
            v.drain(..).collect()
        };
        for h in stragglers {
            let _ = h.join();
        }
        if let Some(v) = self.vacuum.take() {
            v.stop();
        }
        if let Some(r) = self.replica_daemon.take() {
            r.stop();
        }
    }
}

/// Final counter values from [`ServerHandle::shutdown`]. The drain
/// guarantee is `completed == admitted`: no connection that made it past
/// admission was abandoned without a response.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    pub admitted: u64,
    pub completed: u64,
    pub rejected: u64,
    pub query_timeouts: u64,
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // A persistent accept error (e.g. EMFILE under an fd
                // flood) would otherwise spin this loop at 100% CPU;
                // pause briefly before retrying.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The shutdown wake-up call (or a late client): drop without
            // admitting. Admitted work is still drained by the workers.
            return;
        }
        shared.metrics.record_accepted();
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= shared.config.queue_depth.max(1) {
            drop(q);
            shed(shared, stream);
            continue;
        }
        q.push_back(stream);
        drop(q);
        shared.metrics.record_admitted();
        shared.queue_cv.notify_one();
    }
}

/// Upper bound on concurrent courtesy-429 threads. Past this the server
/// is under a flood, not mere saturation, and connections are dropped
/// outright — shedding must never become its own resource sink.
const MAX_SHED_THREADS: usize = 32;

/// Saturated: answer 429 without occupying a worker or the acceptor.
///
/// The reject happens on a short-lived side thread because it must
/// *read the request before closing* — closing a socket with unread
/// input makes the kernel send RST, which discards the in-flight 429 —
/// and the acceptor cannot afford to block on a client's upload.
fn shed(shared: &Arc<Shared>, stream: TcpStream) {
    shared.metrics.record_rejected();
    if shared.shedding.fetch_add(1, Ordering::SeqCst) >= MAX_SHED_THREADS {
        shared.shedding.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    let cloned = shared.clone();
    let spawned = std::thread::Builder::new().name("http-shed".into()).spawn(move || {
        answer_429(&cloned, stream);
        cloned.shedding.fetch_sub(1, Ordering::SeqCst);
    });
    match spawned {
        Ok(handle) => {
            // Keep the handle so shutdown can join stragglers; prune
            // finished ones here so the vec stays bounded by
            // MAX_SHED_THREADS plus a few already-exited entries.
            let mut v = shared.shed_threads.lock().unwrap_or_else(|e| e.into_inner());
            v.retain(|h| !h.is_finished());
            v.push(handle);
        }
        Err(_) => {
            shared.shedding.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn answer_429(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
    // Consume the request (bounded by the same limits and total read
    // deadline as real requests) so the close below is clean; ignore
    // whatever it contained.
    if let Ok(req) = http::read_request(
        &mut stream,
        shared.config.max_header_bytes,
        shared.config.max_body_bytes,
        shared.config.read_timeout,
    ) {
        shared.metrics.record_bytes_in(req.wire_bytes);
    }
    let body = Json::obj(vec![
        ("error", Json::str("server saturated, retry later")),
        ("rejected", Json::Bool(true)),
    ])
    .to_compact();
    if let Ok(n) = http::write_response(&mut stream, 429, &body) {
        shared.metrics.record_bytes_out(n);
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        match stream {
            Some(s) => handle_connection(shared, s),
            // Queue drained after shutdown: the worker may exit.
            None => return,
        }
    }
}

/// A routed response body: JSON everywhere except the replication
/// endpoints, which ship binary WAL frames and checkpoint images.
enum Payload {
    Json(Json),
    Bytes { content_type: &'static str, data: Vec<u8> },
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _gauge = shared.metrics.enter();
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut head_only = false;
    let (status, payload) = match http::read_request(
        &mut stream,
        shared.config.max_header_bytes,
        shared.config.max_body_bytes,
        shared.config.read_timeout,
    ) {
        Ok(req) => {
            shared.metrics.record_bytes_in(req.wire_bytes);
            head_only = req.method == "HEAD";
            route(shared, &req)
        }
        Err(HttpError::Closed) => {
            // Nothing arrived; nothing to answer.
            shared.metrics.record_completed();
            return;
        }
        Err(e) => {
            let (status, msg) = match e {
                HttpError::Timeout => (408, "request read timed out".to_string()),
                HttpError::HeadersTooLarge => (431, "request head too large".to_string()),
                HttpError::BodyTooLarge => (413, "request body too large".to_string()),
                HttpError::Malformed(m) => (400, m),
                HttpError::Io(e) => (400, format!("transport error: {e}")),
                HttpError::Closed => unreachable!("handled above"),
            };
            if status == 400 || status == 413 || status == 431 {
                shared.metrics.record_bad_request();
            }
            (status, Payload::Json(Json::obj(vec![("error", Json::str(msg))])))
        }
    };
    let (content_type, body) = match payload {
        Payload::Json(j) => ("application/json", j.to_compact().into_bytes()),
        Payload::Bytes { content_type, data } => (content_type, data),
    };
    if let Ok(n) = http::write_response_raw(&mut stream, status, content_type, &body, head_only) {
        shared.metrics.record_bytes_out(n);
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
    shared.metrics.record_completed();
}

/// Pull the Gremlin script out of a request body: either a JSON object
/// `{"gremlin": "..."}` / JSON string, or the raw body verbatim. Raw
/// Gremlin can't start with `{` or `"`, so the sniff is unambiguous.
fn extract_gremlin(body: &[u8]) -> Result<String, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let trimmed = text.trim_start();
    if trimmed.starts_with('{') || trimmed.starts_with('"') {
        let json = Json::parse(text).map_err(|e| format!("bad JSON body: {e}"))?;
        match &json {
            Json::Str(s) => Ok(s.clone()),
            Json::Obj(_) => json
                .get("gremlin")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| "JSON body must have a string 'gremlin' field".to_string()),
            _ => Err("JSON body must be an object or a string".to_string()),
        }
    } else if text.trim().is_empty() {
        Err("empty query body".to_string())
    } else {
        Ok(text.to_string())
    }
}

/// Classify a graph error into a response. Parse/config/runtime-usage
/// errors are the client's fault (400); deadline expiry is 503 so retry
/// policies treat it as load, not as a bad query; storage errors are 500.
fn graph_error_response(shared: &Shared, e: GraphError) -> (u16, Json) {
    let status = match &e {
        GraphError::Timeout => {
            shared.metrics.record_query_timeout();
            503
        }
        GraphError::Gremlin(_) | GraphError::Config(_) => {
            shared.metrics.record_bad_request();
            400
        }
        GraphError::Db(_) => 500,
    };
    let mut fields = vec![("error", Json::str(e.to_string()))];
    if status == 503 {
        fields.push(("timeout", Json::Bool(true)));
    }
    (status, Json::obj(fields))
}

fn route(shared: &Shared, req: &Request) -> (u16, Payload) {
    // HEAD is answered as a headers-only GET: same status and
    // Content-Length as the GET would carry, no body bytes
    // (`handle_connection` suppresses them).
    let method = if req.method == "HEAD" { "GET" } else { req.method.as_str() };
    match (method, req.path.as_str()) {
        ("GET", "/wal") => route_wal(shared, req),
        ("GET", "/checkpoint") => route_checkpoint(shared),
        _ => {
            let (status, json) = route_json(shared, req, method);
            (status, Payload::Json(json))
        }
    }
}

/// Primary side of log shipping: ship committed WAL frames from
/// `from_seq` as a binary batch (see [`replica::encode_ship`]). `410`
/// tells the follower its position has rotated out of the log — it must
/// re-bootstrap from `/checkpoint`; `403` means this server has no WAL
/// to ship (in-memory, or itself a replica).
fn route_wal(shared: &Shared, req: &Request) -> (u16, Payload) {
    let Some(from_seq) = req.query_param("from_seq").and_then(|s| s.parse::<u64>().ok()) else {
        let (status, json) =
            bad_request(shared, "GET /wal requires an integer from_seq query parameter".into());
        return (status, Payload::Json(json));
    };
    match shared.graph.database().wal_tail(from_seq, replica::MAX_SHIP_BYTES) {
        Ok(reldb::WalTailResult::Tail(tail)) => (
            200,
            Payload::Bytes {
                content_type: "application/octet-stream",
                data: replica::encode_ship(&tail),
            },
        ),
        Ok(reldb::WalTailResult::Gap { base_seq }) => (
            410,
            Payload::Json(Json::obj(vec![
                (
                    "error",
                    Json::str("requested wal position is gone; bootstrap from /checkpoint"),
                ),
                ("base_seq", Json::u64(base_seq)),
            ])),
        ),
        Err(e) => {
            let status = match e {
                reldb::DbError::Unsupported(_) => 403,
                _ => 500,
            };
            (status, Payload::Json(Json::obj(vec![("error", Json::str(e.to_string()))])))
        }
    }
}

/// Serve the installed checkpoint image verbatim for follower bootstrap,
/// writing one first if the primary has never checkpointed.
fn route_checkpoint(shared: &Shared) -> (u16, Payload) {
    let db = shared.graph.database();
    let fetch = || -> reldb::DbResult<Option<Vec<u8>>> {
        if let Some(bytes) = db.checkpoint_bytes()? {
            return Ok(Some(bytes));
        }
        // Fresh primary with no image on disk yet: take a checkpoint now
        // so a follower can always bootstrap.
        db.checkpoint()?;
        db.checkpoint_bytes()
    };
    match fetch() {
        Ok(Some(data)) => {
            (200, Payload::Bytes { content_type: "application/octet-stream", data })
        }
        Ok(None) => (
            500,
            Payload::Json(Json::obj(vec![(
                "error",
                Json::str("checkpoint produced no image"),
            )])),
        ),
        Err(e) => {
            let status = match e {
                reldb::DbError::Unsupported(_) => 403,
                _ => 500,
            };
            (status, Payload::Json(Json::obj(vec![("error", Json::str(e.to_string()))])))
        }
    }
}

/// Every JSON endpoint. `method` is the request method with HEAD already
/// normalized to GET.
fn route_json(shared: &Shared, req: &Request, method: &str) -> (u16, Json) {
    let deadline = shared.config.query_timeout.map(|t| Instant::now() + t);
    match (method, req.path.as_str()) {
        ("POST", "/query") => match extract_gremlin(&req.body) {
            Ok(g) => match shared.graph.run_with_deadline(&g, deadline) {
                Ok(values) => {
                    let results: Vec<Json> = values.iter().map(gvalue_to_json).collect();
                    (
                        200,
                        Json::obj(vec![
                            ("count", Json::u64(results.len() as u64)),
                            ("result", Json::arr(results)),
                        ]),
                    )
                }
                Err(e) => graph_error_response(shared, e),
            },
            Err(m) => bad_request(shared, m),
        },
        ("POST", "/explain") => match extract_gremlin(&req.body) {
            Ok(g) => match shared.graph.explain_report(&g) {
                Ok(report) => (200, report.to_json()),
                Err(e) => graph_error_response(shared, e),
            },
            Err(m) => bad_request(shared, m),
        },
        ("POST", "/profile") => match extract_gremlin(&req.body) {
            Ok(g) => match shared.graph.profile_with_deadline(&g, deadline) {
                Ok((values, report)) => {
                    let results: Vec<Json> = values.iter().map(gvalue_to_json).collect();
                    (
                        200,
                        Json::obj(vec![
                            ("count", Json::u64(results.len() as u64)),
                            ("result", Json::arr(results)),
                            ("profile", report.to_json()),
                        ]),
                    )
                }
                Err(e) => graph_error_response(shared, e),
            },
            Err(m) => bad_request(shared, m),
        },
        ("POST", "/sql") => {
            // Raw SQL against the underlying database — the seeding and
            // administration channel (the graph endpoints stay read-only
            // Gremlin). Returns the last statement's result set. Because
            // it can mutate or drop anything, it must be opted into.
            if let Some(rep) = &shared.replica {
                // A follower's state is a function of the primary's log;
                // local writes would silently diverge it.
                return (
                    403,
                    Json::obj(vec![
                        (
                            "error",
                            Json::str(format!(
                                "read-only replica: writes must go to the primary at {}",
                                rep.primary
                            )),
                        ),
                        ("primary", Json::str(rep.primary.clone())),
                    ]),
                );
            }
            if !shared.config.sql_endpoint {
                return (
                    403,
                    Json::obj(vec![(
                        "error",
                        Json::str(
                            "SQL endpoint disabled; opt in with \
                             ServerConfig::sql_endpoint or DB2GRAPH_SQL_ENDPOINT=1",
                        ),
                    )]),
                );
            }
            let Ok(sql) = std::str::from_utf8(&req.body) else {
                return bad_request(shared, "SQL body is not valid UTF-8".into());
            };
            if sql.trim().is_empty() {
                return bad_request(shared, "empty SQL body".into());
            }
            match shared.graph.database().execute_script(sql) {
                Ok(rs) => {
                    let columns: Vec<Json> =
                        rs.columns.iter().map(|c| Json::str(c.clone())).collect();
                    let rows: Vec<Json> = rs
                        .rows
                        .iter()
                        .map(|row| Json::arr(row.iter().map(sql_value_to_json).collect()))
                        .collect();
                    (
                        200,
                        Json::obj(vec![
                            ("count", Json::u64(rows.len() as u64)),
                            ("columns", Json::arr(columns)),
                            ("rows", Json::arr(rows)),
                        ]),
                    )
                }
                Err(e) => bad_request(shared, e.to_string()),
            }
        }
        ("GET", "/metrics") => {
            let queued = shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
            let mut sections = vec![
                ("graph", shared.graph.metrics().to_json()),
                ("server", shared.metrics.to_json(queued)),
            ];
            if let Some(rep) = &shared.replica {
                sections.push(("replication", rep.metrics.to_json(&rep.primary)));
            }
            (200, Json::obj(sections))
        }
        ("GET", "/slow-queries") => {
            (200, Json::obj(vec![("slow_queries", shared.graph.slow_queries_json())]))
        }
        ("GET", "/workload") => (200, shared.graph.workload_report().to_json()),
        ("GET", "/healthz") => (
            200,
            Json::obj(vec![
                ("status", Json::str("ok")),
                (
                    "role",
                    Json::str(if shared.replica.is_some() { "replica" } else { "primary" }),
                ),
                ("commit_epoch", Json::u64(shared.graph.database().commit_epoch())),
                ("in_flight", Json::u64(shared.metrics.in_flight())),
            ]),
        ),
        (_, "/query" | "/sql" | "/explain" | "/profile" | "/metrics" | "/slow-queries"
        | "/workload" | "/healthz" | "/wal" | "/checkpoint") => (
            405,
            Json::obj(vec![("error", Json::str(format!("method {} not allowed", req.method)))]),
        ),
        (_, path) => {
            (404, Json::obj(vec![("error", Json::str(format!("no such endpoint '{path}'")))]))
        }
    }
}

fn bad_request(shared: &Shared, msg: String) -> (u16, Json) {
    shared.metrics.record_bad_request();
    (400, Json::obj(vec![("error", Json::str(msg))]))
}

fn sql_value_to_json(v: &reldb::Value) -> Json {
    match v {
        reldb::Value::Null => Json::Null,
        // Numbers ride through f64 in the JSON layer; a BIGINT beyond
        // 2^53 would silently lose precision there, so it degrades to a
        // string instead — the same convention as element ids and Longs
        // in `gjson`.
        reldb::Value::Bigint(i) if i.unsigned_abs() <= (1u64 << 53) => Json::num(*i as f64),
        reldb::Value::Bigint(i) => Json::str(i.to_string()),
        reldb::Value::Double(d) => Json::num(*d),
        reldb::Value::Varchar(s) => Json::str(s.clone()),
        reldb::Value::Boolean(b) => Json::Bool(*b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_bigints_past_2_53_degrade_to_strings() {
        let exact = 1i64 << 53;
        assert_eq!(sql_value_to_json(&reldb::Value::Bigint(exact)).to_compact(), "9007199254740992");
        for i in [exact + 1, -(exact + 1), i64::MAX, i64::MIN] {
            let json = sql_value_to_json(&reldb::Value::Bigint(i));
            assert_eq!(json, Json::Str(i.to_string()), "{i} must not round through f64");
        }
    }
}
