//! SLO health monitor: a daemon (peer of [`crate::vacuum::VacuumDaemon`])
//! that evaluates rolling windows of the serving stack's own metrics
//! against configured targets and publishes a degradation verdict.
//!
//! `/healthz` stays pure liveness — "the process is up and answering".
//! Readiness is a different question ("should a load balancer send
//! traffic here?"), answered by `/readyz` from the [`Health`] this daemon
//! publishes: 503 naming the violated SLOs while degraded, 200 once the
//! window slides past the bad period — recovery without a restart.
//!
//! Inputs per tick: per-endpoint latency histograms (p99 over the
//! window), error/shed rate, replication lag, WAL fsync latency, and
//! admission-queue depth. All are cumulative counters/histograms, so the
//! window is computed by diffing the newest sample against the oldest
//! retained one — no per-request bookkeeping on the hot path.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use db2graph_core::json::Json;

use crate::Shared;

/// Configured SLO targets; `None` disables that check. The daemon only
/// runs when at least one target is set.
#[derive(Debug, Clone, Default)]
pub struct SloTargets {
    /// Per-endpoint p99 latency ceiling, milliseconds
    /// (`DB2GRAPH_SLO_P99_MS`).
    pub p99_ms: Option<f64>,
    /// Error + shed percentage ceiling over the window
    /// (`DB2GRAPH_SLO_ERROR_PCT`).
    pub error_pct: Option<f64>,
    /// Replication-lag ceiling in WAL records, follower side
    /// (`DB2GRAPH_MAX_REPLICA_LAG`).
    pub max_replica_lag: Option<u64>,
    /// WAL fsync p99 ceiling, milliseconds (`DB2GRAPH_SLO_FSYNC_P99_MS`).
    pub fsync_p99_ms: Option<f64>,
    /// Open-session ceiling (`DB2GRAPH_SLO_MAX_SESSIONS`): a pile-up of
    /// open transactions pins the vacuum horizon, so it is a readiness
    /// signal like replica lag — a level, not a rate, read directly off
    /// the gauge rather than windowed.
    pub max_sessions: Option<u64>,
}

impl SloTargets {
    /// Whether any target is configured (the daemon starts only then).
    pub fn any(&self) -> bool {
        self.p99_ms.is_some()
            || self.error_pct.is_some()
            || self.max_replica_lag.is_some()
            || self.fsync_p99_ms.is_some()
            || self.max_sessions.is_some()
    }
}

/// The published verdict `/readyz` serves.
#[derive(Debug, Clone, Default)]
pub struct Health {
    pub degraded: bool,
    /// One human-readable line per violated SLO, each naming the knob
    /// (e.g. `DB2GRAPH_SLO_P99_MS: /query p99 42.3ms > 5ms`).
    pub violations: Vec<String>,
}

impl Health {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("status", Json::str(if self.degraded { "degraded" } else { "ready" })),
            (
                "violations",
                Json::arr(self.violations.iter().map(|v| Json::str(v.clone())).collect()),
            ),
        ])
    }
}

/// One cumulative histogram capture: total count plus cumulative
/// `(upper_bound_nanos, count)` pairs.
#[derive(Debug, Clone, Default)]
struct HistCapture {
    count: u64,
    buckets: Vec<(u64, u64)>,
}

impl HistCapture {
    /// Cumulative count at or below `upper` (total count past the last
    /// recorded bucket — cumulative histograms are monotone).
    fn cum_at(&self, upper: u64) -> u64 {
        let mut last = 0;
        for &(u, c) in &self.buckets {
            if u > upper {
                return last;
            }
            last = c;
        }
        last
    }
}

/// The q-quantile of the histogram delta `now - base`, as a bucket upper
/// bound in nanos; `None` when no events landed in the window.
fn delta_quantile(now: &HistCapture, base: &HistCapture, q: f64) -> Option<u64> {
    let total = now.count.saturating_sub(base.count);
    if total == 0 {
        return None;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    for &(upper, cum_now) in &now.buckets {
        if cum_now.saturating_sub(base.cum_at(upper)) >= rank {
            return Some(upper);
        }
    }
    Some(u64::MAX)
}

/// One tick's capture of every monitored cumulative series.
struct Sample {
    at: Instant,
    completed: u64,
    rejected: u64,
    error_responses: u64,
    query_timeouts: u64,
    endpoints: HashMap<String, HistCapture>,
    fsync: HistCapture,
}

fn capture(shared: &Shared) -> Sample {
    let m = &shared.metrics;
    let endpoints = m
        .endpoint_histograms()
        .entries()
        .into_iter()
        .map(|(key, h)| {
            (key, HistCapture { count: h.count(), buckets: h.cumulative_buckets() })
        })
        .collect();
    let db = shared.graph.database();
    Sample {
        at: Instant::now(),
        completed: m.completed(),
        rejected: m.rejected(),
        error_responses: m.error_responses(),
        query_timeouts: m.query_timeouts(),
        endpoints,
        fsync: HistCapture { count: db.wal_fsync_count(), buckets: db.wal_fsync_buckets() },
    }
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

/// Evaluate the window `base → now` against the targets.
fn evaluate(shared: &Shared, targets: &SloTargets, now: &Sample, base: &Sample) -> Vec<String> {
    let mut violations = Vec::new();
    if let Some(limit_ms) = targets.p99_ms {
        let limit_nanos = (limit_ms * 1e6) as u64;
        for (endpoint, capture) in &now.endpoints {
            // Health probes are exempt from the latency SLO: a load
            // balancer polling /readyz while degraded must not itself
            // keep the p99 window hot and wedge the server degraded.
            if endpoint == "/healthz" || endpoint == "/readyz" {
                continue;
            }
            let empty = HistCapture::default();
            let earlier = base.endpoints.get(endpoint).unwrap_or(&empty);
            if let Some(p99) = delta_quantile(capture, earlier, 0.99) {
                if p99 > limit_nanos {
                    violations.push(format!(
                        "DB2GRAPH_SLO_P99_MS: {endpoint} p99 {:.1}ms > {limit_ms}ms",
                        ms(p99)
                    ));
                }
            }
        }
    }
    if let Some(limit_pct) = targets.error_pct {
        let served = now.completed.saturating_sub(base.completed);
        let shed = now.rejected.saturating_sub(base.rejected);
        let errors = now.error_responses.saturating_sub(base.error_responses) + shed;
        let denom = served + shed;
        if denom > 0 {
            let pct = 100.0 * errors as f64 / denom as f64;
            if pct > limit_pct {
                violations.push(format!(
                    "DB2GRAPH_SLO_ERROR_PCT: {pct:.2}% of {denom} requests errored or shed \
                     > {limit_pct}%"
                ));
            }
        }
    }
    if let Some(limit) = targets.max_replica_lag {
        if let Some(rep) = &shared.replica {
            let lag = rep.metrics.lag_records.load(Ordering::Relaxed);
            if lag > limit {
                violations.push(format!(
                    "DB2GRAPH_MAX_REPLICA_LAG: {lag} records behind {} > {limit}",
                    rep.primary
                ));
            }
        }
    }
    if let Some(limit) = targets.max_sessions {
        let open = shared.metrics.sessions_open();
        if open > limit {
            violations.push(format!(
                "DB2GRAPH_SLO_MAX_SESSIONS: {open} open sessions > {limit}"
            ));
        }
    }
    if let Some(limit_ms) = targets.fsync_p99_ms {
        if let Some(p99) = delta_quantile(&now.fsync, &base.fsync, 0.99) {
            if p99 > (limit_ms * 1e6) as u64 {
                violations.push(format!(
                    "DB2GRAPH_SLO_FSYNC_P99_MS: wal fsync p99 {:.1}ms > {limit_ms}ms",
                    ms(p99)
                ));
            }
        }
    }
    // Query timeouts ride the error budget; surface them explicitly when
    // they are what is eating it.
    let _ = now.query_timeouts;
    violations
}

/// The SLO monitor daemon. Same lifecycle discipline as the vacuum
/// daemon: condvar stop signal, prompt shutdown, joined handle.
pub struct MonitorDaemon {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl MonitorDaemon {
    pub(crate) fn start(
        shared: Arc<Shared>,
        targets: SloTargets,
        interval: Duration,
        window: Duration,
    ) -> MonitorDaemon {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let handle = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("slo-monitor".into())
                .spawn(move || {
                    let (lock, cv) = &*stop;
                    let mut samples: VecDeque<Sample> = VecDeque::new();
                    samples.push_back(capture(&shared));
                    let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        if *stopped {
                            return;
                        }
                        let (guard, _) = cv
                            .wait_timeout(stopped, interval)
                            .unwrap_or_else(|e| e.into_inner());
                        stopped = guard;
                        if *stopped {
                            return;
                        }
                        let now = capture(&shared);
                        // The baseline is the newest retained sample at
                        // least `window` old; younger history behind it is
                        // dropped. Until the process has run that long the
                        // oldest sample serves, so a fresh server still
                        // evaluates (over a shorter, growing window).
                        while samples.len() >= 2
                            && now.at.duration_since(samples[1].at) >= window
                        {
                            samples.pop_front();
                        }
                        let base = samples.front().expect("at least one sample");
                        let violations = evaluate(&shared, &targets, &now, base);
                        publish(&shared, violations);
                        samples.push_back(now);
                    }
                })
                .expect("spawn slo monitor")
        };
        MonitorDaemon { stop, handle: Some(handle) }
    }

    /// Signal the thread and join it.
    pub fn stop(mut self) {
        self.stop_impl();
    }

    fn stop_impl(&mut self) {
        let Some(handle) = self.handle.take() else { return };
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
        let _ = handle.join();
    }
}

impl Drop for MonitorDaemon {
    fn drop(&mut self) {
        self.stop_impl();
    }
}

/// Install the new verdict; on a state transition, log it to the event
/// stream so the flip is diagnosable after the fact.
fn publish(shared: &Shared, violations: Vec<String>) {
    let degraded = !violations.is_empty();
    let mut health = shared.health.lock().unwrap_or_else(|e| e.into_inner());
    let was_degraded = health.degraded;
    health.degraded = degraded;
    health.violations = violations.clone();
    drop(health);
    if degraded != was_degraded {
        let kind = if degraded { "slo_degraded" } else { "slo_recovered" };
        shared.events.emit(
            kind,
            vec![(
                "violations",
                Json::arr(violations.into_iter().map(Json::str).collect()),
            )],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_quantile_diffs_cumulative_histograms() {
        // base: 10 events all <= 1023ns. now: those plus 10 at ~1ms.
        let base = HistCapture { count: 10, buckets: vec![(1023, 10)] };
        let now = HistCapture { count: 20, buckets: vec![(1023, 10), (1_048_575, 20)] };
        let p99 = delta_quantile(&now, &base, 0.99).unwrap();
        assert_eq!(p99, 1_048_575);
        // p50 of the delta is also in the millisecond bucket: all 10 new
        // events landed there.
        assert_eq!(delta_quantile(&now, &base, 0.50).unwrap(), 1_048_575);
        // No new events → no verdict.
        assert!(delta_quantile(&base, &base, 0.99).is_none());
    }

    #[test]
    fn cum_at_handles_missing_buckets() {
        let c = HistCapture { count: 7, buckets: vec![(15, 3), (1023, 7)] };
        assert_eq!(c.cum_at(7), 0);
        assert_eq!(c.cum_at(15), 3);
        assert_eq!(c.cum_at(500), 3);
        assert_eq!(c.cum_at(1023), 7);
        assert_eq!(c.cum_at(u64::MAX), 7);
    }
}
