//! The `Database` facade: catalog, statement execution, transactions, and
//! snapshot management.
//!
//! Reads and writes meet here: writers allocate a *stamp*, mark versions in
//! the storage layer, and publish all their changes at once by finalizing
//! the stamp to a commit epoch under the commit lock. Readers either run at
//! "latest committed" (plain statements) or pin a [`Snapshot`] — a
//! registered commit epoch that guarantees every version it can see
//! survives until the snapshot is dropped (vacuum computes its horizon from
//! the registry). See `docs/CONSISTENCY.md` for the full model.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::checkpoint;
use crate::durability::{
    parse_frames, CrashHook, CrashPoint, Durability, DurabilityState, NetChange, Wal, WalRecord,
    WalTailResult, NO_FLOOR,
};
use crate::error::{DbError, DbResult};
use crate::func::TableFunction;
use crate::index::{IndexDef, RowId};
use crate::prepared::Prepared;
use crate::row::{Row, RowSet};
use crate::schema::TableSchema;
use crate::sql::ast::*;
use crate::sql::eval::{eval, truth, ColRef, RowEnv};
use crate::sql::exec::{execute_select, explain_select};
use crate::sql::parser::{parse_script, parse_statement};
use crate::sql::render;
use crate::sql::planner::{as_simple_pred, choose_access_path, split_conjuncts, AccessPath};
use crate::stats::ExecStats;
use crate::storage::{ReadView, Table};
use crate::txn::{TxnState, UndoLog, UndoOp};
use crate::value::Value;

/// Committed-dead versions tolerated across all tables before a commit
/// triggers an automatic vacuum. Pure-insert bulk loads never create
/// garbage, so loading is unaffected.
const VACUUM_THRESHOLD: usize = 4096;

/// Registry of pinned snapshot epochs; vacuum's horizon is the minimum.
#[derive(Debug, Default)]
struct SnapshotTracker {
    active: Mutex<BTreeMap<u64, usize>>,
}

/// A pinned, committed database state.
///
/// Queries executed through [`Database::execute_prepared_at`] with this
/// snapshot see exactly the state as of its epoch, no matter how many
/// writers commit in the meantime. Clones share one registration — an
/// `Arc` bump, no lock — and the registration is released for garbage
/// collection when the last clone drops. The graph layer pins one
/// snapshot per traversal and shares clones with every parallel worker,
/// which is what makes multi-statement traversals anachronism-free.
#[derive(Clone)]
pub struct Snapshot {
    epoch: u64,
    /// The uncommitted-marker stamp this snapshot additionally sees (0 =
    /// none). Nonzero only for snapshots pinned inside a session
    /// transaction: the session's own uncommitted writes stay visible to
    /// its queries — including clones handed to parallel fan-out workers
    /// on other threads, which is exactly why the stamp rides the
    /// snapshot instead of a thread-local.
    stamp: u64,
    /// Held only for its drop (the tracker deregistration); never read.
    #[allow(dead_code)]
    guard: Arc<SnapshotGuard>,
}

/// The tracker registration backing a snapshot and all its clones;
/// deregisters exactly once, when the last clone drops.
struct SnapshotGuard {
    epoch: u64,
    tracker: Arc<SnapshotTracker>,
}

impl Snapshot {
    /// Wrap an epoch whose tracker count [`Database::snapshot`] has
    /// already incremented; the guard's drop performs the one decrement.
    fn register_preincremented(epoch: u64, stamp: u64, tracker: Arc<SnapshotTracker>) -> Snapshot {
        Snapshot { epoch, stamp, guard: Arc::new(SnapshotGuard { epoch, tracker }) }
    }

    /// The commit epoch this snapshot is pinned to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The uncommitted-marker stamp this snapshot sees in addition to its
    /// epoch (0 outside session transactions).
    pub fn stamp(&self) -> u64 {
        self.stamp
    }
}

impl Drop for SnapshotGuard {
    fn drop(&mut self) {
        let mut active = self.tracker.active.lock();
        if let Some(n) = active.get_mut(&self.epoch) {
            *n -= 1;
            if *n == 0 {
                active.remove(&self.epoch);
            }
        }
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot").field("epoch", &self.epoch).finish()
    }
}

/// Per-statement write context: the stamp writes are marked with, and where
/// their undo records go. Statements inside an open transaction join its
/// stamp and shared log; standalone statements get a private stamp and log,
/// committed (or rolled back — statement atomicity) when the statement
/// ends.
pub(crate) struct WriteCtx {
    stamp: u64,
    joined: bool,
    local: UndoLog,
}

/// A named view: a stored SELECT executed on reference.
///
/// Views are *non-materialized*: every reference re-runs the query against
/// current table contents. This is the mechanism behind the paper's
/// "surprising benefit" (Section 5) — derived edges defined as a view over
/// two edge tables stay automatically consistent with the base data.
#[derive(Debug, Clone)]
pub struct ViewDef {
    pub name: String,
    pub query: SelectStmt,
}

/// An embedded, thread-safe relational database.
///
/// Share it across threads with `Arc<Database>`; all methods take `&self`.
pub struct Database {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
    views: RwLock<BTreeMap<String, ViewDef>>,
    functions: RwLock<BTreeMap<String, Arc<dyn TableFunction>>>,
    active_txn: Mutex<Option<TxnState>>,
    /// Session transactions: multi-statement transactions that outlive a
    /// single thread's attention, keyed by their stamp (the session
    /// token). `None` marks a checked-out entry — some thread has adopted
    /// it via [`Database::with_session_txn`] and is executing inside it
    /// right now, so commit/rollback/reap must wait (they error with
    /// "busy" rather than block). Unlike `active_txn`, any number of
    /// session transactions may be open concurrently; writes race under
    /// the same first-writer-wins conflict rules as auto-commit units.
    session_txns: Mutex<HashMap<u64, Option<TxnState>>>,
    /// Serializes engine-level transactions (`transaction()` blocks here
    /// while another writer's closure runs, instead of erroring).
    txn_gate: Mutex<()>,
    /// Serializes commit publication so each commit gets a unique epoch and
    /// readers can never observe a half-finalized transaction at an epoch
    /// they are allowed to see.
    commit_lock: Mutex<()>,
    /// Highest published commit epoch (0 = empty database).
    commit_epoch: AtomicU64,
    /// Source of unique transaction stamps (never reused).
    next_stamp: AtomicU64,
    /// Bumped by every DDL statement; prepared statements and downstream
    /// template caches compare against it to detect stale plans.
    schema_gen: AtomicU64,
    snapshots: Arc<SnapshotTracker>,
    /// Approximate dead versions created since the last vacuum.
    garbage_hint: AtomicUsize,
    enforce_foreign_keys: AtomicBool,
    stats: ExecStats,
    /// WAL + checkpoint machinery; `None` for a purely in-memory database
    /// (and during recovery replay, which must not re-log itself).
    durability: Option<Arc<DurabilityState>>,
    /// Replication position when this database is a follower: the next
    /// primary WAL sequence [`Database::apply_wal_frames`] expects. Always
    /// 0 on a primary or standalone database.
    applied_wal_seq: AtomicU64,
    /// Write conflicts surfaced to statements (`DbError::Txn`), for the
    /// serving layer's metrics and event log.
    txn_conflicts: AtomicU64,
    /// Observer for operational events (checkpoints, WAL rotations, txn
    /// conflicts). Installed by an embedding layer — reldb sits below the
    /// observability crates, so the event vocabulary lives here and the
    /// transport lives above.
    event_hook: RwLock<Option<DbEventHook>>,
    /// Data-change observers: each hook is told, inside the commit lock,
    /// which tables every published commit touched and at which epoch.
    /// Unlike the single `event_hook`, any number of change hooks may be
    /// registered (caches above the engine each add their own), and they
    /// are never replaced — holders capture weak state so a dropped
    /// consumer degenerates to a no-op.
    change_hooks: RwLock<Vec<ChangeHook>>,
}

/// Operational events a [`Database`] reports to an installed
/// [`DbEventHook`]. These are narrative ("a checkpoint just finished"),
/// not numeric — counters stay in [`crate::stats`] / durability counters.
#[derive(Debug, Clone)]
pub enum DbEvent {
    /// A checkpoint captured its `(epoch, WAL position)` pair and began
    /// serializing table data.
    CheckpointBegin { epoch: u64 },
    /// A checkpoint image was installed and its WAL prefix dropped.
    CheckpointEnd { epoch: u64, wall_nanos: u64 },
    /// The WAL was rewritten to start at `cut_seq` (prefix covered by the
    /// latest checkpoint dropped).
    WalRotation { cut_seq: u64 },
    /// A statement lost a write conflict to a concurrent transaction.
    TxnConflict { detail: String },
}

/// Callback for [`Database::set_event_hook`]. Runs synchronously on the
/// emitting thread; keep it cheap and never call back into the database.
pub type DbEventHook = Arc<dyn Fn(&DbEvent) + Send + Sync>;

/// Callback for [`Database::add_change_hook`]: `(epoch, touched_tables)`
/// for every published commit — both local commits and replicated WAL
/// applies. Table names are lowercased (catalog-key form). Runs
/// synchronously *inside the commit lock*, so invocations are totally
/// ordered by epoch; keep it cheap and never call back into the database.
pub type ChangeHook = Arc<dyn Fn(u64, &[String]) + Send + Sync>;

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.table_names())
            .field("views", &self.view_names())
            .finish()
    }
}

// ------------------------------------------------- session transactions
//
// A session transaction lives in `Database::session_txns` between network
// requests and is *adopted* by whichever worker thread executes the next
// request (`Database::with_session_txn`). Adoption parks the transaction's
// state in this thread-local so the ordinary owner-aware paths
// (`current_stamp`, `begin_stmt_write`, `record_write`) route reads and
// writes to it without consulting thread identity — the registry slot
// holds `None` while adopted, so commit/rollback/reap observe "busy"
// instead of racing an in-flight request.
thread_local! {
    static ADOPTED: RefCell<Option<Adopted>> = const { RefCell::new(None) };
}

struct Adopted {
    /// Identity of the adopting database (its address), so two databases
    /// used from one thread can never confuse each other's sessions.
    db: usize,
    token: u64,
    state: TxnState,
}

/// Returns an adopted session transaction to its registry slot when the
/// `with_session_txn` closure exits — by any path, including a panic, so
/// a crashed request leaves the session intact for an explicit rollback
/// or the reaper rather than stranding it checked-out forever.
struct AdoptionGuard<'a> {
    db: &'a Database,
}

impl Drop for AdoptionGuard<'_> {
    fn drop(&mut self) {
        let ident = self.db.ident();
        let adopted = ADOPTED.with(|a| {
            let mut slot = a.borrow_mut();
            if slot.as_ref().is_some_and(|ad| ad.db == ident) { slot.take() } else { None }
        });
        if let Some(ad) = adopted {
            if let Some(slot) = self.db.session_txns.lock().get_mut(&ad.token) {
                *slot = Some(ad.state);
            } else {
                // The registry entry vanished while adopted — impossible
                // through the public API (commit/rollback/reap refuse busy
                // sessions) — but settle the log anyway rather than strand
                // permanent uncommitted markers.
                let _ = self.db.rollback_ops(ad.state.log, ad.state.stamp);
            }
        }
    }
}

impl Database {
    pub fn new() -> Database {
        Database {
            tables: RwLock::new(BTreeMap::new()),
            views: RwLock::new(BTreeMap::new()),
            functions: RwLock::new(BTreeMap::new()),
            active_txn: Mutex::new(None),
            session_txns: Mutex::new(HashMap::new()),
            txn_gate: Mutex::new(()),
            commit_lock: Mutex::new(()),
            commit_epoch: AtomicU64::new(0),
            next_stamp: AtomicU64::new(0),
            schema_gen: AtomicU64::new(0),
            snapshots: Arc::new(SnapshotTracker::default()),
            garbage_hint: AtomicUsize::new(0),
            enforce_foreign_keys: AtomicBool::new(true),
            stats: ExecStats::default(),
            durability: None,
            applied_wal_seq: AtomicU64::new(0),
            txn_conflicts: AtomicU64::new(0),
            event_hook: RwLock::new(None),
            change_hooks: RwLock::new(Vec::new()),
        }
    }

    /// Install (or clear) the operational-event observer. At most one hook
    /// is active; installing replaces the previous one.
    pub fn set_event_hook(&self, hook: Option<DbEventHook>) {
        *self.event_hook.write() = hook;
    }

    /// Register a data-change observer (see [`ChangeHook`]). Hooks
    /// accumulate — every registered hook sees every published commit.
    pub fn add_change_hook(&self, hook: ChangeHook) {
        self.change_hooks.write().push(hook);
    }

    /// Notify every change hook of a published commit. Must be called with
    /// the commit lock held so notifications arrive in epoch order.
    fn notify_change(&self, epoch: u64, tables: &[String]) {
        let hooks = self.change_hooks.read();
        for h in hooks.iter() {
            h(epoch, tables);
        }
    }

    fn emit_event(&self, event: DbEvent) {
        let hook = self.event_hook.read().clone();
        if let Some(h) = hook {
            h(&event);
        }
    }

    /// Toggle foreign-key enforcement (disable for bulk loads).
    pub fn set_enforce_foreign_keys(&self, on: bool) {
        self.enforce_foreign_keys.store(on, Ordering::Relaxed);
    }

    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    // --------------------------------------------------- snapshots & epochs

    /// Pin the current committed state. Every query executed with this
    /// snapshot (via [`Database::execute_prepared_at`]) sees exactly this
    /// state; versions it can see are protected from vacuum until the
    /// snapshot (and all its clones) drop.
    pub fn snapshot(&self) -> Snapshot {
        let tracker = self.snapshots.clone();
        // Read the epoch *inside* the registry lock: vacuum computes its
        // horizon under the same lock, so a concurrent commit+vacuum can
        // never reclaim versions between our epoch read and registration.
        let mut active = tracker.active.lock();
        let epoch = self.commit_epoch.load(Ordering::Acquire);
        *active.entry(epoch).or_insert(0) += 1;
        drop(active);
        // A snapshot pinned while a transaction is open on this thread
        // (a session adoption, or a thread-owned txn) carries the txn's
        // stamp, so pinned reads — including fan-out clones — keep seeing
        // the transaction's own uncommitted writes.
        Snapshot::register_preincremented(epoch, self.current_stamp(), tracker)
    }

    /// The highest published commit epoch.
    pub fn commit_epoch(&self) -> u64 {
        self.commit_epoch.load(Ordering::Acquire)
    }

    /// The vacuum horizon: the oldest epoch a registered snapshot still
    /// pins, or the current commit epoch when nothing is pinned. Versions
    /// dead before this epoch are reclaimable. Exposed as a gauge so
    /// operators can spot a stuck snapshot holding garbage alive.
    pub fn snapshot_horizon(&self) -> u64 {
        let active = self.snapshots.active.lock();
        let current = self.commit_epoch.load(Ordering::Acquire);
        active.keys().next().map_or(current, |&m| m.min(current))
    }

    /// Number of currently registered (live) snapshots, counting clones
    /// once per [`Database::snapshot`] call.
    pub fn active_snapshots(&self) -> usize {
        self.snapshots.active.lock().values().sum()
    }

    /// Monotone counter bumped by every DDL statement (CREATE/DROP of
    /// tables, views, indexes, and function registration). Prepared
    /// statements are stamped with it; executing a stale one re-prepares.
    pub fn schema_generation(&self) -> u64 {
        self.schema_gen.load(Ordering::Acquire)
    }

    fn bump_schema_generation(&self) {
        self.schema_gen.fetch_add(1, Ordering::AcqRel);
    }

    fn alloc_stamp(&self) -> u64 {
        self.next_stamp.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The open transaction's stamp — but only for its owning thread.
    /// Any other thread gets 0 (matching no uncommitted marker), so a
    /// concurrent plain read never observes a foreign transaction's
    /// uncommitted writes. A thread that has adopted a session
    /// transaction (see [`Database::with_session_txn`]) gets that
    /// session's stamp.
    fn current_stamp(&self) -> u64 {
        if let Some(stamp) = self.adopted_stamp() {
            return stamp;
        }
        let me = std::thread::current().id();
        self.active_txn.lock().as_ref().filter(|t| t.owner == me).map_or(0, |t| t.stamp)
    }

    /// The view plain (unpinned) statements read under: the highest
    /// *published* commit epoch plus the open transaction's own writes, if
    /// any. Reading at the published epoch — not "anything committed" —
    /// matters because `commit_ops` finalizes a multi-row transaction's
    /// markers one row at a time: a half-finalized epoch is above the
    /// published one and stays invisible until the atomic
    /// `commit_epoch.store`, so even plain statements observe whole
    /// transactions or none of them.
    fn read_view(&self) -> ReadView {
        ReadView {
            snap: self.commit_epoch.load(Ordering::Acquire),
            stamp: self.current_stamp(),
        }
    }

    /// Reclaim committed-dead versions no registered snapshot can see.
    /// Runs automatically once enough garbage accumulates; callable
    /// directly for tests and maintenance. Returns versions reclaimed.
    pub fn vacuum(&self) -> usize {
        let mut horizon = {
            let active = self.snapshots.active.lock();
            let current = self.commit_epoch.load(Ordering::Acquire);
            active.keys().next().map_or(current, |&m| m.min(current))
        };
        if let Some(d) = &self.durability {
            // A running checkpoint serializes the version chains at its
            // capture epoch *outside* any lock; until its image is
            // installed, versions visible at that epoch must survive or a
            // crash right after would lose committed history on replay.
            horizon = horizon.min(d.checkpoint_floor.load(Ordering::Acquire));
        }
        let tables: Vec<Arc<Table>> = self.tables.read().values().cloned().collect();
        tables.iter().map(|t| t.vacuum(horizon)).sum()
    }

    // ---------------------------------------------------------- durability

    /// Open (or create) a durable database at `dir` with
    /// [`Durability::Always`]. See [`Database::open_with`].
    pub fn open(dir: impl AsRef<std::path::Path>) -> DbResult<Database> {
        Self::open_with(dir, Durability::Always)
    }

    /// Open (or create) a durable database at `dir`.
    ///
    /// Recovery: load the latest installed checkpoint (if any), scan the
    /// WAL — truncating a torn or corrupt tail in place, it is never
    /// replayed — and re-apply every record past the checkpoint's
    /// coverage. Each replayed commit record advances the published epoch,
    /// so the recovered database always lands exactly on a commit-epoch
    /// boundary: a transaction whose record made it to the log in full is
    /// replayed whole, one whose record was cut off never happened.
    pub fn open_with(dir: impl AsRef<std::path::Path>, mode: Durability) -> DbResult<Database> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| DbError::Io(format!("create data dir {}: {e}", dir.display())))?;
        let mut db = Database::new();

        let image = checkpoint::load(&dir)?;
        let (start_seq, ckpt_epoch) = match &image {
            Some(img) => (img.wal_seq, img.epoch),
            None => (0, 0),
        };
        if let Some(img) = image {
            db.restore_checkpoint(img)?;
        }
        let mut last_epoch = ckpt_epoch;

        // Scan (and scrub) the log even in `Off` mode — an operator can
        // downgrade durability without losing what an earlier run logged.
        let (wal, scan) = Wal::open(&dir.join("wal.log"), start_seq)?;

        // Replay with `db.durability` still `None`: nothing re-logs itself.
        let mut replayed = 0u64;
        for (seq, rec) in scan.records {
            if seq < start_seq {
                continue; // already folded into the checkpoint
            }
            match rec {
                WalRecord::Commit { epoch, changes } => {
                    for (table, rid, change) in changes {
                        let Some(t) = db.get_table(&table) else { continue };
                        match change {
                            NetChange::Put(row) => t.replay_put(rid, row, epoch),
                            NetChange::Del => t.replay_del(rid, epoch),
                        }
                    }
                    last_epoch = epoch;
                    replayed += 1;
                }
                WalRecord::Ddl { sql } => {
                    db.commit_epoch.store(last_epoch, Ordering::Release);
                    // A replayed statement that fails did so identically
                    // before the crash (the log reproduces the exact data
                    // state it ran against) and left no catalog change.
                    let _ = db.execute(&sql);
                }
            }
        }
        db.commit_epoch.store(last_epoch, Ordering::Release);

        // Replay applied raw version chains; build the derived structures
        // once at the end (this also absorbs CREATE INDEX statements that
        // were interleaved with the data records).
        for t in db.tables.read().values() {
            t.rebuild_indexes();
            t.recompute_bookkeeping();
        }

        // Keep the WAL handle in every mode. `Off` never appends, but a
        // checkpoint must still capture the file's real position and
        // rotate it — otherwise records already folded into a newer image
        // would sit on disk and be replayed on top of it next open,
        // silently reverting checkpointed data.
        let state = DurabilityState::new(dir, mode, Some(wal));
        state.last_checkpoint_epoch.store(ckpt_epoch, Ordering::Relaxed);
        state.counters.recovery_replayed_epochs.store(replayed, Ordering::Relaxed);
        state
            .counters
            .recovery_truncated_bytes
            .store(scan.truncated_bytes, Ordering::Relaxed);
        db.durability = Some(Arc::new(state));
        Ok(db)
    }

    /// Install a checkpoint image into a fresh database: raw version
    /// loads, no WAL, no index maintenance (rebuilt after WAL replay).
    fn restore_checkpoint(&self, img: checkpoint::CheckpointImage) -> DbResult<()> {
        {
            let mut tables = self.tables.write();
            for ti in img.tables {
                let table = Table::new(ti.schema)?;
                for def in ti.secondary {
                    table.create_index(def)?; // empty table: trivially valid
                }
                table.ensure_slots(ti.slots as usize);
                for (rid, begin, row) in ti.rows {
                    table.load_version(rid, begin, row);
                }
                tables.insert(Self::key(&table.schema.name), Arc::new(table));
            }
        }
        let mut views = self.views.write();
        for (name, sql) in img.views {
            match parse_statement(&sql) {
                Ok(Stmt::Select(q)) => {
                    views.insert(Self::key(&name), ViewDef { name, query: *q });
                }
                _ => {
                    return Err(DbError::Io(format!(
                        "checkpoint view '{name}' failed to re-parse"
                    )))
                }
            }
        }
        self.commit_epoch.store(img.epoch, Ordering::Release);
        Ok(())
    }

    /// Write a checkpoint: serialize every table at the current published
    /// epoch, install the image atomically, and drop the WAL prefix it
    /// covers. Returns the epoch the image captured.
    ///
    /// Only the `(epoch, wal position, catalog)` capture runs under the
    /// commit lock; serialization proceeds concurrently with readers and
    /// writers, protected from vacuum by the checkpoint floor.
    pub fn checkpoint(&self) -> DbResult<u64> {
        let Some(d) = self.durability.clone() else {
            return Err(DbError::Unsupported(
                "checkpoint requires a durable database (Database::open)".into(),
            ));
        };
        let _gate = d.checkpoint_gate.lock();
        let started = std::time::Instant::now();
        let (epoch, wal_seq, wal_off, tables, views) = {
            let _commit = self.commit_lock.lock();
            let epoch = self.commit_epoch.load(Ordering::Acquire);
            let (wal_seq, wal_off) = d.capture_position();
            d.checkpoint_floor.store(epoch, Ordering::Release);
            let tables: Vec<Arc<Table>> = self.tables.read().values().cloned().collect();
            let views: Vec<ViewDef> = self.views.read().values().cloned().collect();
            (epoch, wal_seq, wal_off, tables, views)
        };
        // Lift the floor however this function exits — holding it past an
        // error would pin garbage forever.
        struct FloorGuard<'a>(&'a DurabilityState);
        impl Drop for FloorGuard<'_> {
            fn drop(&mut self) {
                self.0.checkpoint_floor.store(NO_FLOOR, Ordering::Release);
            }
        }
        let _floor = FloorGuard(&d);
        self.emit_event(DbEvent::CheckpointBegin { epoch });
        d.crash_gate(CrashPoint::CheckpointBegin)?;
        let mut images = Vec::with_capacity(tables.len());
        for t in &tables {
            let (slots, rows) = t.checkpoint_rows(epoch);
            images.push(checkpoint::TableImage {
                schema: t.schema.clone(),
                secondary: t.secondary_index_defs(),
                slots,
                rows,
            });
        }
        let view_images = views
            .iter()
            .map(|v| (v.name.clone(), render::select_sql(&v.query)))
            .collect();
        let image =
            checkpoint::CheckpointImage { epoch, wal_seq, tables: images, views: view_images };
        checkpoint::write(&d, &image)?;
        d.last_checkpoint_epoch.store(epoch, Ordering::Release);
        d.rotate(wal_seq, wal_off)?;
        self.emit_event(DbEvent::WalRotation { cut_seq: wal_seq });
        d.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.emit_event(DbEvent::CheckpointEnd {
            epoch,
            wall_nanos: started.elapsed().as_nanos() as u64,
        });
        Ok(epoch)
    }

    /// `true` when this database persists to a data directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The configured durability mode, if durable.
    pub fn durability_mode(&self) -> Option<Durability> {
        self.durability.as_ref().map(|d| d.mode)
    }

    /// WAL records appended since open.
    pub fn wal_records(&self) -> u64 {
        self.durability
            .as_ref()
            .map_or(0, |d| d.counters.wal_records.load(Ordering::Relaxed))
    }

    /// WAL bytes appended since open.
    pub fn wal_bytes(&self) -> u64 {
        self.durability
            .as_ref()
            .map_or(0, |d| d.counters.wal_bytes.load(Ordering::Relaxed))
    }

    /// Checkpoints completed since open.
    pub fn checkpoints(&self) -> u64 {
        self.durability
            .as_ref()
            .map_or(0, |d| d.counters.checkpoints.load(Ordering::Relaxed))
    }

    /// Commit epochs replayed from the WAL by the last `open`.
    pub fn recovery_replayed_epochs(&self) -> u64 {
        self.durability
            .as_ref()
            .map_or(0, |d| d.counters.recovery_replayed_epochs.load(Ordering::Relaxed))
    }

    /// Torn/corrupt WAL tail bytes truncated by the last `open`.
    pub fn recovery_truncated_bytes(&self) -> u64 {
        self.durability
            .as_ref()
            .map_or(0, |d| d.counters.recovery_truncated_bytes.load(Ordering::Relaxed))
    }

    /// Epoch of the last installed checkpoint (0 if none).
    pub fn last_checkpoint_epoch(&self) -> u64 {
        self.durability
            .as_ref()
            .map_or(0, |d| d.last_checkpoint_epoch.load(Ordering::Relaxed))
    }

    /// Install (or clear) the crash-injection hook the recovery test
    /// harness uses to kill the durability layer at an exact I/O boundary.
    /// No-op for in-memory databases.
    pub fn set_crash_hook(&self, hook: Option<CrashHook>) {
        if let Some(d) = &self.durability {
            d.set_crash_hook(hook);
        }
    }

    /// Flush any buffered WAL bytes to disk (meaningful in `Batch` mode).
    pub fn sync_wal(&self) -> DbResult<()> {
        match &self.durability {
            Some(d) => d.sync(),
            None => Ok(()),
        }
    }

    /// Byte length of the WAL prefix known to be fsynced. In `Batch` mode
    /// this lags the appended length by up to `BATCH_SYNC_EVERY - 1`
    /// records; the durability-contract test truncates to it to simulate
    /// worst-case loss of the OS page cache.
    pub fn wal_synced_bytes(&self) -> u64 {
        self.durability.as_ref().map_or(0, |d| d.synced_len.load(Ordering::Acquire))
    }

    /// Write conflicts surfaced to statements since open.
    pub fn txn_conflicts(&self) -> u64 {
        self.txn_conflicts.load(Ordering::Relaxed)
    }

    /// WAL fsyncs performed since open (0 on non-durable databases).
    pub fn wal_fsync_count(&self) -> u64 {
        self.durability.as_ref().map_or(0, |d| d.fsync.count())
    }

    /// Total nanoseconds spent in WAL fsyncs since open.
    pub fn wal_fsync_sum_nanos(&self) -> u64 {
        self.durability.as_ref().map_or(0, |d| d.fsync.sum_nanos())
    }

    /// The `q`-quantile of WAL fsync latency in nanoseconds (0 when no
    /// fsync has run). The SLO monitor samples this to catch a stalling
    /// disk before commit latency degrades visibly.
    pub fn wal_fsync_percentile(&self, q: f64) -> u64 {
        self.durability.as_ref().map_or(0, |d| d.fsync.percentile(q))
    }

    /// Cumulative `(upper_bound_nanos, count)` fsync-latency buckets for
    /// Prometheus-style exposition (empty when no fsync has run).
    pub fn wal_fsync_buckets(&self) -> Vec<(u64, u64)> {
        self.durability.as_ref().map_or_else(Vec::new, |d| d.fsync.cumulative_buckets())
    }

    // ---------------------------------------------------------- replication

    /// Primary side of log shipping: read committed WAL frames for a
    /// follower positioned at `from_seq` (see
    /// [`crate::durability::WalTailResult`] for the gap/bootstrap
    /// contract). `max_bytes` caps the returned frame bytes, always
    /// shipping at least one whole frame when any is available.
    pub fn wal_tail(&self, from_seq: u64, max_bytes: usize) -> DbResult<WalTailResult> {
        let Some(d) = &self.durability else {
            return Err(DbError::Unsupported(
                "wal tailing requires a durable database (Database::open)".into(),
            ));
        };
        d.tail_since(from_seq, max_bytes)
    }

    /// The installed checkpoint file verbatim (magic + crc + body), integrity
    /// verified — what the primary serves to a bootstrapping follower.
    /// `Ok(None)` when no checkpoint has been written yet.
    pub fn checkpoint_bytes(&self) -> DbResult<Option<Vec<u8>>> {
        let Some(d) = &self.durability else {
            return Err(DbError::Unsupported(
                "checkpoint shipping requires a durable database (Database::open)".into(),
            ));
        };
        checkpoint::verified_bytes(&d.dir)
    }

    /// Follower bootstrap: replace this database's entire state with a
    /// primary's checkpoint image and position the apply stream at the
    /// image's WAL sequence, which is returned.
    ///
    /// This is wholesale replacement, not an MVCC transition — it is the
    /// replica-side equivalent of a process restart, used both for first
    /// contact and for re-bootstrapping after the primary rotated past the
    /// follower's position. Requests racing a re-bootstrap observe it as
    /// such (tables swap under them); the schema generation is bumped so
    /// every cached plan re-prepares.
    pub fn install_checkpoint_image(&self, bytes: &[u8]) -> DbResult<u64> {
        let img = checkpoint::decode_file(bytes)?;
        let (epoch, wal_seq) = (img.epoch, img.wal_seq);
        let _commit = self.commit_lock.lock();
        self.tables.write().clear();
        self.views.write().clear();
        self.restore_checkpoint(img)?;
        for t in self.tables.read().values() {
            t.rebuild_indexes();
            t.recompute_bookkeeping();
        }
        self.commit_epoch.store(epoch, Ordering::Release);
        self.applied_wal_seq.store(wal_seq, Ordering::Release);
        self.bump_schema_generation();
        Ok(wal_seq)
    }

    /// Follower apply: decode a shipped run of WAL frames starting at
    /// `from_seq` (which must equal [`Database::applied_wal_seq`]) and
    /// apply each record through the same idempotent net-change path
    /// recovery replays, publishing each commit's epoch as it lands.
    /// Indexes and bookkeeping are maintained incrementally so concurrent
    /// readers stay consistent at every published epoch. Returns the
    /// number of records applied.
    pub fn apply_wal_frames(&self, from_seq: u64, frames: &[u8]) -> DbResult<u64> {
        let expected = self.applied_wal_seq.load(Ordering::Acquire);
        if from_seq != expected {
            return Err(DbError::Recovery(format!(
                "apply stream out of order: got frames at sequence {from_seq}, expected {expected}"
            )));
        }
        let records = parse_frames(frames, from_seq)?;
        let applied = records.len() as u64;
        for (_, rec) in records {
            match rec {
                WalRecord::Commit { epoch, changes } => {
                    // Same publication discipline as `commit_ops`: mutate
                    // version chains first, then advance the published
                    // epoch atomically, so a reader either sees the whole
                    // commit or none of it.
                    let _commit = self.commit_lock.lock();
                    let mut touched: Vec<String> = Vec::new();
                    for (table, rid, change) in changes {
                        let Some(t) = self.get_table(&table) else { continue };
                        match change {
                            NetChange::Put(row) => t.apply_put(rid, row, epoch),
                            NetChange::Del => t.apply_del(rid, epoch),
                        }
                        let key = Self::key(&table);
                        if !touched.contains(&key) {
                            touched.push(key);
                        }
                    }
                    self.commit_epoch.store(epoch, Ordering::Release);
                    if !self.change_hooks.read().is_empty() {
                        self.notify_change(epoch, &touched);
                    }
                }
                WalRecord::Ddl { sql } => {
                    // A replayed DDL that fails did so identically on the
                    // primary against the same data state (see recovery).
                    let _ = self.execute(&sql);
                }
            }
        }
        self.applied_wal_seq.store(from_seq + applied, Ordering::Release);
        Ok(applied)
    }

    /// The next primary WAL sequence this follower expects (0 when this
    /// database has never bootstrapped as a replica).
    pub fn applied_wal_seq(&self) -> u64 {
        self.applied_wal_seq.load(Ordering::Acquire)
    }

    // ------------------------------------------------------------- catalog

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    pub fn get_table(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.read().get(&Self::key(name)).cloned()
    }

    pub fn get_view(&self, name: &str) -> Option<ViewDef> {
        self.views.read().get(&Self::key(name)).cloned()
    }

    pub fn get_function(&self, name: &str) -> Option<Arc<dyn TableFunction>> {
        self.functions.read().get(&Self::key(name)).cloned()
    }

    /// Register a polymorphic table function under a name.
    pub fn register_function(&self, name: &str, f: Arc<dyn TableFunction>) {
        self.functions.write().insert(Self::key(name), f);
        self.bump_schema_generation();
    }

    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().values().map(|t| t.schema.name.clone()).collect()
    }

    pub fn view_names(&self) -> Vec<String> {
        self.views.read().values().map(|v| v.name.clone()).collect()
    }

    /// Schemas of all base tables — the catalog metadata AutoOverlay reads.
    pub fn table_schemas(&self) -> Vec<TableSchema> {
        self.tables.read().values().map(|t| t.schema.clone()).collect()
    }

    /// Output column names of a view (executed against current data with
    /// LIMIT 0 semantics — we run the query and read the header).
    pub fn view_columns(&self, name: &str) -> DbResult<Vec<String>> {
        let view = self
            .get_view(name)
            .ok_or_else(|| DbError::Catalog(format!("view '{name}' not found")))?;
        let mut q = view.query.clone();
        q.limit = Some(0);
        Ok(execute_select(self, &q, &self.read_view())?.columns)
    }

    /// Create a table from a schema built in code.
    ///
    /// DDL is serialized with commit publication (the commit lock) so a
    /// checkpoint's `(catalog, epoch, wal position)` capture is atomic,
    /// and logged *before* it is applied — a logged statement that then
    /// fails does so identically on replay, where it is ignored.
    pub fn create_table(&self, schema: TableSchema) -> DbResult<()> {
        self.validate_foreign_keys(&schema)?;
        let table = Arc::new(Table::new(schema)?);
        let ddl = self.commit_lock.lock();
        let mut tables = self.tables.write();
        let key = Self::key(&table.schema.name);
        if tables.contains_key(&key) || self.views.read().contains_key(&key) {
            return Err(DbError::Catalog(format!("'{}' already exists", table.schema.name)));
        }
        self.log_ddl(render::create_table_sql(&table.schema))?;
        tables.insert(key, table);
        drop(tables);
        drop(ddl);
        self.bump_schema_generation();
        Ok(())
    }

    /// Append a DDL statement to the WAL (no-op for in-memory databases
    /// and during recovery replay, when `durability` is still unset).
    /// Callers hold the commit lock.
    fn log_ddl(&self, sql: String) -> DbResult<()> {
        match &self.durability {
            Some(d) => d.append(&WalRecord::Ddl { sql }),
            None => Ok(()),
        }
    }

    fn validate_foreign_keys(&self, schema: &TableSchema) -> DbResult<()> {
        for fk in &schema.foreign_keys {
            if fk.ref_table.eq_ignore_ascii_case(&schema.name) {
                continue; // self reference is checked against own columns
            }
            let target = self.get_table(&fk.ref_table).ok_or_else(|| {
                DbError::Catalog(format!(
                    "foreign key on '{}' references unknown table '{}'",
                    schema.name, fk.ref_table
                ))
            })?;
            for c in &fk.ref_columns {
                target.schema.require_column(c)?;
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------- execution

    /// Parse and execute one SQL statement.
    pub fn execute(&self, sql: &str) -> DbResult<RowSet> {
        let stmt = parse_statement(sql)?;
        self.execute_stmt(&stmt)
    }

    /// Parse and execute one SQL statement with `?` parameters.
    pub fn execute_params(&self, sql: &str, params: &[Value]) -> DbResult<RowSet> {
        let prepared = Prepared::new(sql)?;
        self.execute_prepared(&prepared, params)
    }

    /// Execute every statement in a `;`-separated script; returns the last
    /// statement's result.
    pub fn execute_script(&self, sql: &str) -> DbResult<RowSet> {
        let stmts = parse_script(sql)?;
        let mut last = RowSet::default();
        for stmt in &stmts {
            last = self.execute_stmt(stmt)?;
        }
        Ok(last)
    }

    /// Prepare a statement for repeated execution, stamped with the current
    /// catalog generation so DDL that runs later forces a transparent
    /// re-prepare instead of executing a stale plan.
    pub fn prepare(&self, sql: &str) -> DbResult<Prepared> {
        Ok(Prepared::new(sql)?.with_generation(self.schema_generation()))
    }

    /// Execute a previously prepared statement at latest-committed state.
    pub fn execute_prepared(&self, prepared: &Prepared, params: &[Value]) -> DbResult<RowSet> {
        self.execute_prepared_inner(prepared, params, None)
    }

    /// Execute a previously prepared statement pinned to a snapshot: every
    /// read sees exactly the committed state of `snap.epoch()`, no matter
    /// how many writers commit concurrently. DML statements still write at
    /// latest (a snapshot governs reads, not writes).
    pub fn execute_prepared_at(
        &self,
        prepared: &Prepared,
        params: &[Value],
        snap: &Snapshot,
    ) -> DbResult<RowSet> {
        self.execute_prepared_inner(prepared, params, Some(snap))
    }

    fn execute_prepared_inner(
        &self,
        prepared: &Prepared,
        params: &[Value],
        snap: Option<&Snapshot>,
    ) -> DbResult<RowSet> {
        let bound = if prepared.is_stale(self.schema_generation()) {
            Prepared::new(&prepared.sql)?.bind(params)?
        } else {
            prepared.bind(params)?
        };
        self.execute_stmt_at(&bound, snap)
    }

    /// Execute an already-parsed statement at latest-committed state.
    pub fn execute_stmt(&self, stmt: &Stmt) -> DbResult<RowSet> {
        self.execute_stmt_at(stmt, None)
    }

    /// Execute an already-parsed statement, recording result size and wall
    /// time into the engine stats. Reads run against `snap` when given.
    fn execute_stmt_at(&self, stmt: &Stmt, snap: Option<&Snapshot>) -> DbResult<RowSet> {
        self.stats.record_statement();
        let start = std::time::Instant::now();
        let result = self.execute_stmt_inner(stmt, snap);
        let rows = result.as_ref().map(|rs| rs.rows.len() as u64).unwrap_or(0);
        self.stats.record_execution(rows, start.elapsed().as_nanos() as u64);
        if let Err(DbError::Txn(detail)) = &result {
            // `DbError::Txn` also covers BEGIN/COMMIT misuse; only genuine
            // write-write conflicts (see `Table::write_locked`) are events.
            if detail.contains("write-locked") {
                self.txn_conflicts.fetch_add(1, Ordering::Relaxed);
                self.emit_event(DbEvent::TxnConflict { detail: detail.clone() });
            }
        }
        result
    }

    fn execute_stmt_inner(&self, stmt: &Stmt, snap: Option<&Snapshot>) -> DbResult<RowSet> {
        match stmt {
            Stmt::Select(q) => {
                let view = match snap {
                    // The snapshot's stamp (nonzero inside a session
                    // transaction) keeps the transaction's own writes
                    // visible to its pinned reads.
                    Some(s) => ReadView { snap: s.epoch(), stamp: s.stamp() },
                    None => self.read_view(),
                };
                execute_select(self, q, &view)
            }
            Stmt::Explain(q) => {
                let lines = explain_select(self, q)?;
                Ok(RowSet::with_rows(
                    vec!["plan".into()],
                    lines.into_iter().map(|l| vec![Value::Varchar(l)]).collect(),
                ))
            }
            Stmt::CreateTable { schema, if_not_exists } => {
                match self.create_table(schema.clone()) {
                    Err(DbError::Catalog(_)) if *if_not_exists => {}
                    other => other?,
                }
                Ok(count_result(0))
            }
            Stmt::CreateIndex { name, table, columns, unique } => {
                let t = self.require_table(table)?;
                for c in columns {
                    t.schema.require_column(c)?; // cheap pre-check before logging
                }
                let def =
                    IndexDef { name: name.clone(), columns: columns.clone(), unique: *unique };
                let ddl = self.commit_lock.lock();
                // Log-then-apply: a unique violation after logging fails
                // identically on replay (replay reproduces the same data
                // state) and replayed DDL errors are ignored.
                self.log_ddl(render::create_index_sql(&t.schema.name, &def))?;
                t.create_index(def)?;
                drop(ddl);
                self.bump_schema_generation();
                Ok(count_result(0))
            }
            Stmt::CreateView { name, query, or_replace } => {
                let key = Self::key(name);
                if self.tables.read().contains_key(&key) {
                    return Err(DbError::Catalog(format!("'{name}' is a table")));
                }
                let ddl = self.commit_lock.lock();
                let mut views = self.views.write();
                if views.contains_key(&key) && !*or_replace {
                    return Err(DbError::Catalog(format!("view '{name}' already exists")));
                }
                self.log_ddl(render::create_view_sql(name, query))?;
                views.insert(key, ViewDef { name: name.clone(), query: (**query).clone() });
                drop(views);
                drop(ddl);
                self.bump_schema_generation();
                Ok(count_result(0))
            }
            Stmt::DropTable { name, if_exists } => {
                let ddl = self.commit_lock.lock();
                let mut tables = self.tables.write();
                let key = Self::key(name);
                if !tables.contains_key(&key) {
                    if *if_exists {
                        return Ok(count_result(0));
                    }
                    return Err(DbError::Catalog(format!("table '{name}' not found")));
                }
                self.log_ddl(format!("DROP TABLE {name}"))?;
                tables.remove(&key);
                drop(tables);
                drop(ddl);
                self.bump_schema_generation();
                Ok(count_result(0))
            }
            Stmt::DropView { name } => {
                let ddl = self.commit_lock.lock();
                let mut views = self.views.write();
                let key = Self::key(name);
                if !views.contains_key(&key) {
                    return Err(DbError::Catalog(format!("view '{name}' not found")));
                }
                self.log_ddl(format!("DROP VIEW {name}"))?;
                views.remove(&key);
                drop(views);
                drop(ddl);
                self.bump_schema_generation();
                Ok(count_result(0))
            }
            Stmt::DropIndex { name } => {
                let tables: Vec<Arc<Table>> = self.tables.read().values().cloned().collect();
                for t in tables {
                    if t.read().indexes().iter().any(|ix| ix.def.name.eq_ignore_ascii_case(name)) {
                        let ddl = self.commit_lock.lock();
                        self.log_ddl(format!("DROP INDEX {name}"))?;
                        t.drop_index(name)?;
                        drop(ddl);
                        self.bump_schema_generation();
                        return Ok(count_result(0));
                    }
                }
                Err(DbError::Catalog(format!("index '{name}' not found")))
            }
            Stmt::Insert { table, columns, values } => self.run_insert(table, columns, values),
            Stmt::Update { table, sets, where_clause } => {
                self.run_update(table, sets, where_clause.as_ref())
            }
            Stmt::Delete { table, where_clause } => self.run_delete(table, where_clause.as_ref()),
            Stmt::Begin => {
                if self.adopted_stamp().is_some() {
                    return Err(DbError::Txn(
                        "BEGIN is not allowed inside a session transaction".into(),
                    ));
                }
                let mut txn = self.active_txn.lock();
                if txn.is_some() {
                    return Err(DbError::Txn("transaction already in progress".into()));
                }
                *txn = Some(TxnState::new(self.alloc_stamp()));
                Ok(count_result(0))
            }
            Stmt::Commit => {
                if self.adopted_stamp().is_some() {
                    return Err(DbError::Txn(
                        "COMMIT is not allowed inside a session transaction; \
                         end the session instead"
                            .into(),
                    ));
                }
                let st = self.take_owned_txn("COMMIT")?;
                match self.commit_ops(&st.log, st.stamp) {
                    Ok(()) => Ok(count_result(0)),
                    Err(e) => Err(self.rollback_preserving(st.log, st.stamp, e)),
                }
            }
            Stmt::Rollback => {
                if self.adopted_stamp().is_some() {
                    return Err(DbError::Txn(
                        "ROLLBACK is not allowed inside a session transaction; \
                         end the session instead"
                            .into(),
                    ));
                }
                let st = self.take_owned_txn("ROLLBACK")?;
                self.rollback_ops(st.log, st.stamp)?;
                Ok(count_result(0))
            }
        }
    }

    /// Render the execution plan of a SELECT.
    pub fn explain(&self, sql: &str) -> DbResult<String> {
        match parse_statement(sql)? {
            Stmt::Select(q) | Stmt::Explain(q) => Ok(explain_select(self, &q)?.join("\n")),
            _ => Err(DbError::Unsupported("EXPLAIN supports SELECT only".into())),
        }
    }

    /// Run `f` inside a transaction: committed on `Ok`, rolled back on `Err`.
    ///
    /// Concurrent callers from other threads *block* on an internal gate and
    /// run one after another instead of erroring, so multi-threaded writers
    /// can all use this safely. A re-entrant call from the thread that
    /// already holds a transaction (including an open SQL `BEGIN`) errors.
    pub fn transaction<T>(&self, f: impl FnOnce(&Database) -> DbResult<T>) -> DbResult<T> {
        let me = std::thread::current().id();
        if self.adopted_stamp().is_some()
            || self.active_txn.lock().as_ref().is_some_and(|t| t.owner == me)
        {
            return Err(DbError::Txn("transaction already in progress".into()));
        }
        let _gate = self.txn_gate.lock();
        {
            let mut txn = self.active_txn.lock();
            if txn.is_some() {
                // An open SQL-level BEGIN; the gate only serializes other
                // `transaction()` calls.
                return Err(DbError::Txn("transaction already in progress".into()));
            }
            *txn = Some(TxnState::new(self.alloc_stamp()));
        }
        match f(self) {
            Ok(v) => {
                if let Some(st) = self.active_txn.lock().take() {
                    if let Err(e) = self.commit_ops(&st.log, st.stamp) {
                        return Err(self.rollback_preserving(st.log, st.stamp, e));
                    }
                }
                Ok(v)
            }
            Err(e) => {
                let st = self.active_txn.lock().take();
                match st {
                    Some(st) => Err(self.rollback_preserving(st.log, st.stamp, e)),
                    None => Err(e),
                }
            }
        }
    }

    /// Take the open transaction for COMMIT/ROLLBACK — but only on the
    /// thread that opened it, consistent with the owner-aware stamp and
    /// write-context model. A stray COMMIT from another thread must not
    /// publish a transaction its owner is still mid-way through.
    fn take_owned_txn(&self, verb: &str) -> DbResult<TxnState> {
        let mut txn = self.active_txn.lock();
        match txn.as_ref() {
            None => Err(DbError::Txn("no transaction in progress".into())),
            Some(t) if t.owner != std::thread::current().id() => Err(DbError::Txn(format!(
                "{verb}: the open transaction belongs to another thread"
            ))),
            Some(_) => Ok(txn.take().expect("checked above")),
        }
    }

    // ------------------------------------------------ session transactions

    fn ident(&self) -> usize {
        self as *const Database as usize
    }

    /// The stamp of the session transaction this thread has adopted from
    /// *this* database, if any.
    fn adopted_stamp(&self) -> Option<u64> {
        let ident = self.ident();
        ADOPTED
            .with(|a| a.borrow().as_ref().filter(|ad| ad.db == ident).map(|ad| ad.state.stamp))
    }

    /// Begin a session transaction: one that lives *between* calls in a
    /// registry rather than on a thread, so a network session can stretch
    /// a single transaction across requests served by different worker
    /// threads. Returns the token (== the transaction's stamp) naming it
    /// for [`Database::with_session_txn`] /
    /// [`Database::commit_session_txn`] /
    /// [`Database::rollback_session_txn`]. Any number may be open
    /// concurrently; conflicting writers settle first-writer-wins exactly
    /// like thread-owned transactions.
    pub fn begin_session_txn(&self) -> u64 {
        let stamp = self.alloc_stamp();
        self.session_txns.lock().insert(stamp, Some(TxnState::new(stamp)));
        stamp
    }

    /// Run `f` with session transaction `token` adopted onto this thread:
    /// statements `f` executes join the session's transaction — its reads
    /// see the session's uncommitted writes, its writes land in the
    /// session's undo log. Errors if the token is unknown (already
    /// committed, rolled back, or reaped), if the session is busy on
    /// another thread, or if this thread already has any transaction open
    /// (no nesting).
    pub fn with_session_txn<R>(&self, token: u64, f: impl FnOnce(&Database) -> R) -> DbResult<R> {
        let me = std::thread::current().id();
        if self.adopted_stamp().is_some()
            || self.active_txn.lock().as_ref().is_some_and(|t| t.owner == me)
        {
            return Err(DbError::Txn(
                "cannot adopt a session transaction inside another transaction".into(),
            ));
        }
        let state = {
            let mut map = self.session_txns.lock();
            match map.get_mut(&token) {
                None => return Err(DbError::Txn(format!("no session transaction {token}"))),
                Some(slot) => match slot.take() {
                    None => {
                        return Err(DbError::Txn(format!(
                            "session transaction {token} is busy on another thread"
                        )))
                    }
                    Some(state) => state,
                },
            }
        };
        ADOPTED.with(|a| *a.borrow_mut() = Some(Adopted { db: self.ident(), token, state }));
        let _guard = AdoptionGuard { db: self };
        Ok(f(self))
    }

    /// Remove session transaction `token` from the registry for
    /// commit/rollback/reap. Errors if unknown or currently adopted by an
    /// in-flight request — ending a session never races its own work.
    fn take_session_txn(&self, token: u64, verb: &str) -> DbResult<TxnState> {
        let mut map = self.session_txns.lock();
        match map.get(&token) {
            None => Err(DbError::Txn(format!("no session transaction {token}"))),
            Some(None) => Err(DbError::Txn(format!(
                "{verb}: session transaction {token} is busy on another thread"
            ))),
            Some(Some(_)) => Ok(map.remove(&token).flatten().expect("checked above")),
        }
    }

    /// Commit session transaction `token`, publishing its writes as one
    /// atomic epoch. On a commit failure the writes are rolled back — the
    /// session is over either way.
    pub fn commit_session_txn(&self, token: u64) -> DbResult<()> {
        let st = self.take_session_txn(token, "commit")?;
        match self.commit_ops(&st.log, st.stamp) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.rollback_preserving(st.log, st.stamp, e)),
        }
    }

    /// Roll back session transaction `token`, undoing every write it made.
    pub fn rollback_session_txn(&self, token: u64) -> DbResult<()> {
        let st = self.take_session_txn(token, "rollback")?;
        self.rollback_ops(st.log, st.stamp)
    }

    /// Number of open session transactions (parked or adopted).
    pub fn session_txn_count(&self) -> usize {
        self.session_txns.lock().len()
    }

    /// Move `op` into the adopted session transaction's log if this thread
    /// has adopted one with `stamp`; hand the op back otherwise. (An
    /// explicit `Option` round-trip: a closure cannot both move the op and
    /// fall through with it.)
    fn try_record_adopted(&self, stamp: u64, op: UndoOp) -> Option<UndoOp> {
        let ident = self.ident();
        ADOPTED.with(|a| {
            let mut slot = a.borrow_mut();
            match slot.as_mut() {
                Some(ad) if ad.db == ident && ad.state.stamp == stamp => {
                    ad.state.log.record(op);
                    None
                }
                _ => Some(op),
            }
        })
    }

    /// Publish a transaction's writes: under the commit lock, seal the
    /// transaction's net changes into the WAL, finalize the stamp markers
    /// of every touched version to one freshly allocated epoch, then
    /// advance the published epoch. Readers observe either the whole
    /// transaction or none of it.
    ///
    /// The WAL append happens strictly *before* any finalization: if it
    /// fails (an I/O error, or a crash injected by the test harness),
    /// nothing has been published and the caller rolls the stamp markers
    /// back — the database and the log stay consistent.
    fn commit_ops(&self, log: &UndoLog, stamp: u64) -> DbResult<()> {
        if log.is_empty() {
            return Ok(());
        }
        {
            let _commit = self.commit_lock.lock();
            let epoch = self.commit_epoch.load(Ordering::Acquire) + 1;
            if let Some(d) = &self.durability {
                let mut seen: HashSet<(&str, RowId)> = HashSet::new();
                let mut changes = Vec::new();
                for op in log.ops() {
                    if !seen.insert((op.table(), op.rid())) {
                        continue;
                    }
                    if let Some(t) = self.get_table(op.table()) {
                        if let Some(change) = t.net_change(op.rid(), stamp) {
                            changes.push((op.table().to_string(), op.rid(), change));
                        }
                    }
                }
                d.append(&WalRecord::Commit { epoch, changes })?;
            }
            let mut seen: HashSet<(&str, RowId)> = HashSet::new();
            for op in log.ops() {
                if !seen.insert((op.table(), op.rid())) {
                    continue; // a multi-update chain finalizes in one pass
                }
                if let Some(t) = self.get_table(op.table()) {
                    t.finalize_stamp(op.rid(), stamp, epoch);
                }
            }
            self.commit_epoch.store(epoch, Ordering::Release);
            if !self.change_hooks.read().is_empty() {
                let mut touched: Vec<String> = Vec::new();
                for op in log.ops() {
                    let key = Self::key(op.table());
                    if !touched.contains(&key) {
                        touched.push(key);
                    }
                }
                self.notify_change(epoch, &touched);
            }
        }
        let garbage = log.ops().iter().filter(|op| op.creates_garbage()).count();
        if garbage > 0
            && self.garbage_hint.fetch_add(garbage, Ordering::Relaxed) + garbage
                >= VACUUM_THRESHOLD
        {
            self.garbage_hint.store(0, Ordering::Relaxed);
            self.vacuum();
        }
        Ok(())
    }

    /// Undo a transaction's writes, most recent first. A per-op failure
    /// does not stop the walk: every remaining record still settles its own
    /// independent marker (bailing early would strand them as permanent
    /// uncommitted markers — rows invisible forever). The first failure is
    /// reported after the whole log is drained.
    fn rollback_ops(&self, mut log: UndoLog, stamp: u64) -> DbResult<()> {
        let mut first_err: Option<DbError> = None;
        for op in log.drain_reverse() {
            let result = match self.get_table(op.table()) {
                None => Err(DbError::Txn(format!("rollback: table '{}' missing", op.table()))),
                Some(t) => match &op {
                    UndoOp::Insert { rid, .. } => t.rollback_insert(*rid, stamp),
                    UndoOp::Delete { rid, .. } => t.rollback_delete(*rid, stamp),
                    UndoOp::Update { rid, .. } => t.rollback_update(*rid, stamp),
                },
            };
            if let Err(e) = result {
                first_err.get_or_insert(e);
            }
        }
        first_err.map_or(Ok(()), Err)
    }

    /// Roll back a failed unit's log while preserving the unit's original
    /// error; a rollback failure is attached to its message rather than
    /// replacing it.
    fn rollback_preserving(&self, log: UndoLog, stamp: u64, err: DbError) -> DbError {
        match self.rollback_ops(log, stamp) {
            Ok(()) => err,
            Err(rb) => DbError::Txn(format!("{err}; rollback also failed: {rb}")),
        }
    }

    /// Open the write context for one DML statement: join the transaction
    /// this thread has open if any, otherwise start an auto-commit unit
    /// with a fresh stamp.
    fn begin_stmt_write(&self) -> WriteCtx {
        if let Some(stamp) = self.adopted_stamp() {
            // Joined to the adopted session transaction; `record_write`
            // routes the ops into its log.
            return WriteCtx { stamp, joined: true, local: UndoLog::default() };
        }
        let me = std::thread::current().id();
        let txn = self.active_txn.lock();
        match txn.as_ref().filter(|t| t.owner == me) {
            Some(st) => WriteCtx { stamp: st.stamp, joined: true, local: UndoLog::default() },
            None => {
                WriteCtx { stamp: self.alloc_stamp(), joined: false, local: UndoLog::default() }
            }
        }
    }

    /// Record an undo op into the statement's context: the shared
    /// transaction log when joined, the statement-private log otherwise.
    fn record_write(&self, ctx: &mut WriteCtx, op: UndoOp) {
        if ctx.joined {
            let op = match self.try_record_adopted(ctx.stamp, op) {
                None => return,
                Some(op) => op,
            };
            if let Some(st) = self.active_txn.lock().as_mut() {
                if st.stamp == ctx.stamp {
                    st.log.record(op);
                    return;
                }
            }
            ctx.local.record(op);
            return;
        }
        ctx.local.record(op);
    }

    /// Close the statement's write context. Auto-commit units commit on
    /// success and roll back on failure — so a multi-row INSERT that fails
    /// half-way leaves nothing behind (statement atomicity). Joined
    /// statements leave commit/rollback to the enclosing transaction.
    fn end_stmt_write<T>(&self, ctx: WriteCtx, result: DbResult<T>) -> DbResult<T> {
        if ctx.joined {
            // Normally empty — ops went to the shared log. If the
            // transaction vanished mid-statement, settle the leftovers so
            // they cannot linger as permanent uncommitted markers.
            if !ctx.local.is_empty() {
                return match result {
                    Ok(v) => match self.commit_ops(&ctx.local, ctx.stamp) {
                        Ok(()) => Ok(v),
                        Err(e) => Err(self.rollback_preserving(ctx.local, ctx.stamp, e)),
                    },
                    Err(e) => Err(self.rollback_preserving(ctx.local, ctx.stamp, e)),
                };
            }
            return result;
        }
        match result {
            Ok(v) => match self.commit_ops(&ctx.local, ctx.stamp) {
                Ok(()) => Ok(v),
                Err(e) => Err(self.rollback_preserving(ctx.local, ctx.stamp, e)),
            },
            Err(e) => Err(self.rollback_preserving(ctx.local, ctx.stamp, e)),
        }
    }

    fn require_table(&self, name: &str) -> DbResult<Arc<Table>> {
        self.get_table(name)
            .ok_or_else(|| DbError::Catalog(format!("table '{name}' not found")))
    }

    // ---------------------------------------------------------------- DML

    fn run_insert(
        &self,
        table: &str,
        columns: &Option<Vec<String>>,
        values: &[Vec<Expr>],
    ) -> DbResult<RowSet> {
        let t = self.require_table(table)?;
        let positions: Vec<usize> = match columns {
            Some(cols) => cols
                .iter()
                .map(|c| t.schema.require_column(c))
                .collect::<DbResult<_>>()?,
            None => (0..t.schema.columns.len()).collect(),
        };
        let empty_cols: Vec<ColRef> = Vec::new();
        let empty_row: Row = Vec::new();
        let env = RowEnv { cols: &empty_cols, row: &empty_row };
        let mut ctx = self.begin_stmt_write();
        let result = (|| {
            let mut n = 0i64;
            for exprs in values {
                if exprs.len() != positions.len() {
                    return Err(DbError::Type(format!(
                        "INSERT expects {} values per row, got {}",
                        positions.len(),
                        exprs.len()
                    )));
                }
                let mut row: Row = vec![Value::Null; t.schema.columns.len()];
                for (pos, e) in positions.iter().zip(exprs) {
                    row[*pos] = eval(e, &env)?;
                }
                self.insert_row_ctx(&t, row, &mut ctx)?;
                n += 1;
            }
            Ok(count_result(n))
        })();
        self.end_stmt_write(ctx, result)
    }

    /// Insert a positional row directly (programmatic API used by loaders).
    /// Auto-commits unless the calling thread has a transaction open.
    pub fn insert_row(&self, table: &Arc<Table>, row: Row) -> DbResult<usize> {
        let mut ctx = self.begin_stmt_write();
        let result = self.insert_row_ctx(table, row, &mut ctx);
        self.end_stmt_write(ctx, result)
    }

    fn insert_row_ctx(&self, table: &Arc<Table>, row: Row, ctx: &mut WriteCtx) -> DbResult<usize> {
        if self.enforce_foreign_keys.load(Ordering::Relaxed) {
            self.check_foreign_keys(table, &row, ReadView::latest(ctx.stamp))?;
        }
        let rid = table.insert(row, ctx.stamp)?;
        self.record_write(ctx, UndoOp::Insert { table: table.schema.name.clone(), rid });
        Ok(rid)
    }

    /// Convenience: insert by table name with values in schema order.
    pub fn insert(&self, table: &str, row: Row) -> DbResult<usize> {
        let t = self.require_table(table)?;
        self.insert_row(&t, row)
    }

    fn check_foreign_keys(&self, table: &Arc<Table>, row: &Row, view: ReadView) -> DbResult<()> {
        for fk in &table.schema.foreign_keys {
            let vals: Vec<Value> = fk
                .columns
                .iter()
                .map(|c| table.schema.require_column(c).map(|i| row[i].clone()))
                .collect::<DbResult<_>>()?;
            if vals.iter().any(Value::is_null) {
                continue;
            }
            let target = if fk.ref_table.eq_ignore_ascii_case(&table.schema.name) {
                table.clone()
            } else {
                self.require_table(&fk.ref_table)?
            };
            let guard = target.read();
            let positions: Vec<usize> = fk
                .ref_columns
                .iter()
                .map(|c| target.schema.require_column(c))
                .collect::<DbResult<_>>()?;
            let found = if let Some(ix) = guard.find_index(&fk.ref_columns) {
                // Index entries may be stale under versioned storage, so
                // verify each candidate against the row it resolves to.
                ix.lookup_eq(&vals).into_iter().any(|rid| {
                    guard.row_at(rid, &view).is_some_and(|r| {
                        positions.iter().zip(&vals).all(|(&p, v)| r[p].sql_eq(v) == Some(true))
                    })
                })
            } else {
                // No index on the referenced columns: scan.
                guard.iter_at(view).any(|(_, r)| {
                    positions.iter().zip(&vals).all(|(&p, v)| r[p].sql_eq(v) == Some(true))
                })
            };
            if !found {
                return Err(DbError::Constraint(format!(
                    "foreign key violation: {}({}) -> {}({})",
                    table.schema.name,
                    fk.columns.join(","),
                    fk.ref_table,
                    fk.ref_columns.join(",")
                )));
            }
        }
        Ok(())
    }

    /// Find `(row_id, row)` pairs matching a predicate, using an index
    /// access path when one applies.
    fn matching_rows(
        &self,
        t: &Arc<Table>,
        where_clause: Option<&Expr>,
        view: ReadView,
    ) -> DbResult<Vec<(usize, Row)>> {
        let binding = t.schema.name.clone();
        let cols: Vec<ColRef> = t
            .schema
            .columns
            .iter()
            .map(|c| ColRef::new(Some(&binding), &c.name))
            .collect();
        let mut preds = Vec::new();
        if let Some(w) = where_clause {
            let has_column = |c: &str| t.schema.column_index(c).is_some();
            for conj in split_conjuncts(w) {
                if let Some(p) = as_simple_pred(conj, &binding, &has_column) {
                    preds.push(p);
                }
            }
        }
        let guard = t.read();
        let path = choose_access_path(&guard, &preds);
        let candidates: Vec<(usize, Row)> = match &path {
            AccessPath::FullScan => guard.iter_at(view).map(|(rid, r)| (rid, r.clone())).collect(),
            AccessPath::IndexEq { index, key } => {
                let ix = guard
                    .indexes()
                    .iter()
                    .find(|i| i.def.name == *index)
                    .ok_or_else(|| DbError::Execution("index vanished".into()))?;
                ix.lookup_eq(key)
                    .into_iter()
                    .filter_map(|rid| guard.row_at(rid, &view).map(|r| (rid, r.clone())))
                    .collect()
            }
            AccessPath::IndexIn { index, keys } => {
                let ix = guard
                    .indexes()
                    .iter()
                    .find(|i| i.def.name == *index)
                    .ok_or_else(|| DbError::Execution("index vanished".into()))?;
                // A slot can be posted under several keys (one per version),
                // so dedup rids or a row could be visited twice.
                let mut seen: HashSet<RowId> = HashSet::new();
                ix.lookup_in(keys)
                    .into_iter()
                    .filter(|rid| seen.insert(*rid))
                    .filter_map(|rid| guard.row_at(rid, &view).map(|r| (rid, r.clone())))
                    .collect()
            }
            AccessPath::IndexRange { .. } => {
                guard.iter_at(view).map(|(rid, r)| (rid, r.clone())).collect()
            }
        };
        drop(guard);
        let mut out = Vec::new();
        for (rid, row) in candidates {
            let keep = match where_clause {
                None => true,
                Some(w) => {
                    let env = RowEnv { cols: &cols, row: &row };
                    truth(&eval(w, &env)?) == Some(true)
                }
            };
            if keep {
                out.push((rid, row));
            }
        }
        Ok(out)
    }

    fn run_update(
        &self,
        table: &str,
        sets: &[(String, Expr)],
        where_clause: Option<&Expr>,
    ) -> DbResult<RowSet> {
        let t = self.require_table(table)?;
        let binding = t.schema.name.clone();
        let cols: Vec<ColRef> = t
            .schema
            .columns
            .iter()
            .map(|c| ColRef::new(Some(&binding), &c.name))
            .collect();
        let set_positions: Vec<usize> = sets
            .iter()
            .map(|(c, _)| t.schema.require_column(c))
            .collect::<DbResult<_>>()?;
        let mut ctx = self.begin_stmt_write();
        let result = (|| {
            let matches = self.matching_rows(&t, where_clause, ReadView::latest(ctx.stamp))?;
            let mut n = 0i64;
            for (rid, row) in matches {
                let env = RowEnv { cols: &cols, row: &row };
                let mut new_row = row.clone();
                for (pos, (_, e)) in set_positions.iter().zip(sets) {
                    new_row[*pos] = eval(e, &env)?;
                }
                let old = t.update(rid, new_row, ctx.stamp)?;
                self.record_write(&mut ctx, UndoOp::Update { table: t.schema.name.clone(), rid, old });
                n += 1;
            }
            Ok(count_result(n))
        })();
        self.end_stmt_write(ctx, result)
    }

    fn run_delete(&self, table: &str, where_clause: Option<&Expr>) -> DbResult<RowSet> {
        let t = self.require_table(table)?;
        let mut ctx = self.begin_stmt_write();
        let result = (|| {
            let matches = self.matching_rows(&t, where_clause, ReadView::latest(ctx.stamp))?;
            let mut n = 0i64;
            for (rid, _) in matches {
                let row = t.delete(rid, ctx.stamp)?;
                self.record_write(&mut ctx, UndoOp::Delete { table: t.schema.name.clone(), rid, row });
                n += 1;
            }
            Ok(count_result(n))
        })();
        self.end_stmt_write(ctx, result)
    }
}

fn count_result(n: i64) -> RowSet {
    RowSet::with_rows(vec!["count".into()], vec![vec![Value::Bigint(n)]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn setup() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR, address VARCHAR, subscriptionID BIGINT);
             CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, conceptName VARCHAR);
             CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR,
                FOREIGN KEY (patientID) REFERENCES Patient(patientID),
                FOREIGN KEY (diseaseID) REFERENCES Disease(diseaseID));
             INSERT INTO Patient VALUES (1, 'Alice', '12 Oak St', 100), (2, 'Bob', '9 Elm St', 101), (3, 'Carol', NULL, NULL);
             INSERT INTO Disease VALUES (10, 'E11', 'type 2 diabetes'), (11, 'E10', 'type 1 diabetes'), (12, 'E08', 'diabetes');
             INSERT INTO HasDisease VALUES (1, 10, 'diagnosed 2019'), (2, 11, NULL), (1, 11, NULL);",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_with_filter_and_projection() {
        let db = setup();
        let rs = db.execute("SELECT name FROM Patient WHERE patientID = 1").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("Alice".into())));
        let rs = db
            .execute("SELECT patientID, name FROM Patient WHERE name LIKE '%o%' ORDER BY patientID")
            .unwrap();
        assert_eq!(rs.len(), 2); // Bob, Carol
    }

    #[test]
    fn join_and_aggregate() {
        let db = setup();
        let rs = db
            .execute(
                "SELECT p.name, COUNT(*) AS n FROM Patient p JOIN HasDisease h ON p.patientID = h.patientID GROUP BY p.name ORDER BY n DESC",
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.get(0, "name"), Some(&Value::Varchar("Alice".into())));
        assert_eq!(rs.get(0, "n"), Some(&Value::Bigint(2)));
    }

    #[test]
    fn aggregate_over_empty_input_yields_one_row() {
        let db = setup();
        let rs = db.execute("SELECT COUNT(*) FROM Patient WHERE patientID = 999").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(0)));
        let rs = db.execute("SELECT SUM(subscriptionID) FROM Patient WHERE patientID = 999").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Null));
    }

    #[test]
    fn foreign_keys_enforced_and_toggleable() {
        let db = setup();
        let err = db.execute("INSERT INTO HasDisease VALUES (99, 10, NULL)").unwrap_err();
        assert!(matches!(err, DbError::Constraint(_)), "{err}");
        db.set_enforce_foreign_keys(false);
        db.execute("INSERT INTO HasDisease VALUES (99, 10, NULL)").unwrap();
    }

    #[test]
    fn update_delete_and_counts() {
        let db = setup();
        let rs = db.execute("UPDATE Patient SET address = 'moved' WHERE patientID IN (1, 2)").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(2)));
        let rs = db.execute("SELECT COUNT(*) FROM Patient WHERE address = 'moved'").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(2)));
        let rs = db.execute("DELETE FROM HasDisease WHERE description IS NULL").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(2)));
    }

    #[test]
    fn explicit_transaction_rollback_restores_state() {
        let db = setup();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO Patient VALUES (4, 'Dan', NULL, NULL)").unwrap();
        db.execute("UPDATE Patient SET name = 'Alicia' WHERE patientID = 1").unwrap();
        db.execute("DELETE FROM HasDisease WHERE patientID = 2").unwrap();
        db.execute("ROLLBACK").unwrap();
        let rs = db.execute("SELECT COUNT(*) FROM Patient").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(3)));
        let rs = db.execute("SELECT name FROM Patient WHERE patientID = 1").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("Alice".into())));
        let rs = db.execute("SELECT COUNT(*) FROM HasDisease WHERE patientID = 2").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(1)));
    }

    #[test]
    fn transaction_closure_rolls_back_on_error() {
        let db = setup();
        let res: DbResult<()> = db.transaction(|db| {
            db.execute("INSERT INTO Patient VALUES (5, 'Eve', NULL, NULL)")?;
            Err(DbError::Execution("boom".into()))
        });
        assert!(res.is_err());
        let rs = db.execute("SELECT COUNT(*) FROM Patient WHERE patientID = 5").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(0)));
        // And commits on success.
        db.transaction(|db| db.execute("INSERT INTO Patient VALUES (5, 'Eve', NULL, NULL)"))
            .unwrap();
        let rs = db.execute("SELECT COUNT(*) FROM Patient WHERE patientID = 5").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(1)));
    }

    #[test]
    fn views_reflect_updates_immediately() {
        let db = setup();
        db.execute(
            "CREATE VIEW Diabetics AS SELECT p.patientID AS pid, p.name AS pname FROM Patient p JOIN HasDisease h ON p.patientID = h.patientID WHERE h.diseaseID = 10",
        )
        .unwrap();
        let rs = db.execute("SELECT pname FROM Diabetics").unwrap();
        assert_eq!(rs.len(), 1);
        db.execute("INSERT INTO HasDisease VALUES (2, 10, NULL)").unwrap();
        let rs = db.execute("SELECT pname FROM Diabetics ORDER BY pid").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.get(1, "pname"), Some(&Value::Varchar("Bob".into())));
    }

    #[test]
    fn prepared_statement_roundtrip() {
        let db = setup();
        let p = db.prepare("SELECT name FROM Patient WHERE patientID = ?").unwrap();
        let rs = db.execute_prepared(&p, &[Value::Bigint(2)]).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("Bob".into())));
        let rs = db.execute_prepared(&p, &[Value::Bigint(3)]).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("Carol".into())));
    }

    #[test]
    fn explain_shows_index_probe_vs_scan() {
        let db = setup();
        let plan = db.explain("SELECT * FROM Patient WHERE patientID = 1").unwrap();
        assert!(plan.contains("INDEX-EQ"), "{plan}");
        let plan = db.explain("SELECT * FROM Patient WHERE name = 'Alice'").unwrap();
        assert!(plan.contains("SCAN"), "{plan}");
        db.execute("CREATE INDEX ix_name ON Patient (name)").unwrap();
        let plan = db.explain("SELECT * FROM Patient WHERE name = 'Alice'").unwrap();
        assert!(plan.contains("INDEX-EQ"), "{plan}");
    }

    #[test]
    fn table_function_in_sql() {
        let db = setup();
        db.register_function(
            "pair_maker",
            Arc::new(|args: &[Value], _cols: &[(String, DataType)]| -> DbResult<RowSet> {
                let n = args[0].as_i64()?;
                Ok(RowSet::with_rows(
                    vec!["a".into(), "b".into()],
                    (0..n).map(|i| vec![Value::Bigint(i), Value::Bigint(i * i)]).collect(),
                ))
            }),
        );
        let rs = db
            .execute("SELECT b FROM TABLE(pair_maker(4)) AS t (a BIGINT, b BIGINT) WHERE a >= 2 ORDER BY a")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Bigint(4)], vec![Value::Bigint(9)]]);
    }

    #[test]
    fn comma_join_with_table_function_uses_hash_join() {
        // The Section 4 pattern: base table comma-joined to a table function
        // with the link predicate in WHERE.
        let db = setup();
        db.register_function(
            "subs",
            Arc::new(|_args: &[Value], _cols: &[(String, DataType)]| -> DbResult<RowSet> {
                Ok(RowSet::with_rows(
                    vec!["sid".into()],
                    vec![vec![Value::Bigint(100)], vec![Value::Bigint(101)]],
                ))
            }),
        );
        let rs = db
            .execute(
                "SELECT p.name FROM Patient AS p, TABLE(subs()) AS s (sid BIGINT) WHERE p.subscriptionID = s.sid ORDER BY p.name",
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.get(0, "name"), Some(&Value::Varchar("Alice".into())));
    }

    #[test]
    fn subquery_distinct_limit() {
        let db = setup();
        let rs = db
            .execute(
                "SELECT DISTINCT diseaseID FROM (SELECT diseaseID FROM HasDisease) AS s ORDER BY diseaseID LIMIT 1",
            )
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Bigint(10)]]);
    }

    #[test]
    fn duplicate_table_and_missing_objects_error() {
        let db = setup();
        assert!(db.execute("CREATE TABLE Patient (x BIGINT)").is_err());
        assert!(db.execute("SELECT * FROM NoSuch").is_err());
        assert!(db.execute("DROP VIEW nothere").is_err());
        assert!(db.execute("DROP TABLE nothere").is_err());
        db.execute("DROP TABLE IF EXISTS nothere").unwrap();
        db.execute("CREATE TABLE IF NOT EXISTS Patient (x BIGINT)").unwrap();
    }

    #[test]
    fn snapshot_pins_one_committed_state() {
        let db = setup();
        let snap = db.snapshot();
        let p = db.prepare("SELECT COUNT(*) FROM Patient").unwrap();
        // Writers commit after the snapshot was taken…
        db.execute("INSERT INTO Patient VALUES (7, 'Grace', NULL, NULL)").unwrap();
        db.execute("DELETE FROM Patient WHERE patientID = 3").unwrap();
        // …the pinned query still sees the old state; a fresh one does not.
        let rs = db.execute_prepared_at(&p, &[], &snap).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(3)));
        // The insert is invisible at the snapshot but visible at latest.
        let p7 = db.prepare("SELECT COUNT(*) FROM Patient WHERE patientID = 7").unwrap();
        assert_eq!(
            db.execute_prepared_at(&p7, &[], &snap).unwrap().scalar(),
            Some(&Value::Bigint(0))
        );
        assert_eq!(db.execute_prepared(&p7, &[]).unwrap().scalar(), Some(&Value::Bigint(1)));
        let p2 = db.prepare("SELECT name FROM Patient WHERE patientID = 3").unwrap();
        let rs = db.execute_prepared_at(&p2, &[], &snap).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("Carol".into())));
        assert_eq!(db.execute_prepared(&p2, &[]).unwrap().len(), 0);
    }

    #[test]
    fn snapshot_shields_updates_and_clones_share_epoch() {
        let db = setup();
        let snap = db.snapshot();
        db.execute("UPDATE Patient SET name = 'Alicia' WHERE patientID = 1").unwrap();
        let clone = snap.clone();
        assert_eq!(clone.epoch(), snap.epoch());
        let p = db.prepare("SELECT name FROM Patient WHERE patientID = 1").unwrap();
        let rs = db.execute_prepared_at(&p, &[], &clone).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("Alice".into())));
        drop(snap);
        // The clone still holds the epoch open.
        let rs = db.execute_prepared_at(&p, &[], &clone).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("Alice".into())));
    }

    #[test]
    fn stale_prepared_statement_reprepares_after_ddl() {
        let db = setup();
        let p = db.prepare("SELECT * FROM Disease WHERE conceptCode = 'E11'").unwrap();
        assert!(!p.is_stale(db.schema_generation()));
        // Drop and recreate the table with a *different column order*: a
        // stale plan compiled against the old layout would misread rows.
        db.execute("DROP TABLE Disease").unwrap();
        db.execute(
            "CREATE TABLE Disease (conceptName VARCHAR, conceptCode VARCHAR, diseaseID BIGINT PRIMARY KEY)",
        )
        .unwrap();
        db.execute("INSERT INTO Disease VALUES ('type 2 diabetes', 'E11', 10)").unwrap();
        assert!(p.is_stale(db.schema_generation()));
        let rs = db.execute_prepared(&p, &[]).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.get(0, "diseaseID"), Some(&Value::Bigint(10)));
    }

    #[test]
    fn failed_multi_row_insert_leaves_nothing_behind() {
        let db = setup();
        // Third row violates the Patient PK: the whole statement must undo.
        let err = db
            .execute("INSERT INTO Patient VALUES (8, 'Hana', NULL, NULL), (9, 'Ivan', NULL, NULL), (1, 'Dup', NULL, NULL)")
            .unwrap_err();
        assert!(matches!(err, DbError::Constraint(_)), "{err}");
        let rs = db.execute("SELECT COUNT(*) FROM Patient").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(3)));
        let rs = db.execute("SELECT COUNT(*) FROM Patient WHERE patientID IN (8, 9)").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(0)));
        // The aborted stamps left no index entries: the keys are reusable.
        db.execute("INSERT INTO Patient VALUES (8, 'Hana', NULL, NULL)").unwrap();
    }

    #[test]
    fn aborted_transaction_leaves_no_index_entries() {
        let db = setup();
        let res: DbResult<()> = db.transaction(|db| {
            db.execute("INSERT INTO Patient VALUES (20, 'Tess', NULL, NULL)")?;
            db.execute("UPDATE Patient SET subscriptionID = 999 WHERE patientID = 2")?;
            db.execute("DELETE FROM Patient WHERE patientID = 3")?;
            Err(DbError::Execution("abort".into()))
        });
        assert!(res.is_err());
        let t = db.get_table("Patient").unwrap();
        let guard = t.read();
        // PK index has exactly the three original keys, each mapping to a
        // row visible at latest.
        let ix = guard.find_index_on("patientID").unwrap();
        assert_eq!(ix.distinct_keys(), 3);
        drop(guard);
        let rs = db.execute("SELECT subscriptionID FROM Patient WHERE patientID = 2").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(101)));
        db.execute("INSERT INTO Patient VALUES (20, 'Tess', NULL, NULL)").unwrap();
    }

    #[test]
    fn vacuum_reclaims_only_unpinned_versions() {
        let db = setup();
        let snap = db.snapshot();
        db.execute("UPDATE Patient SET address = 'x' WHERE patientID = 1").unwrap();
        db.execute("DELETE FROM HasDisease WHERE patientID = 1").unwrap();
        // The snapshot pins the pre-update state: nothing can be reclaimed.
        assert_eq!(db.vacuum(), 0);
        let p = db.prepare("SELECT address FROM Patient WHERE patientID = 1").unwrap();
        let rs = db.execute_prepared_at(&p, &[], &snap).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("12 Oak St".into())));
        drop(snap);
        // 1 superseded Patient version + 2 deleted HasDisease versions.
        assert_eq!(db.vacuum(), 3);
        let rs = db.execute("SELECT address FROM Patient WHERE patientID = 1").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("x".into())));
    }

    #[test]
    fn concurrent_transactions_serialize_through_gate() {
        let db = Arc::new(Database::new());
        db.execute("CREATE TABLE counter (id BIGINT PRIMARY KEY, n BIGINT)").unwrap();
        db.execute("INSERT INTO counter VALUES (1, 0)").unwrap();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        db.transaction(|db| {
                            let n = db
                                .execute("SELECT n FROM counter WHERE id = 1")
                                .unwrap()
                                .scalar()
                                .unwrap()
                                .as_i64()
                                .unwrap();
                            db.execute(&format!("UPDATE counter SET n = {} WHERE id = 1", n + 1))
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let rs = db.execute("SELECT n FROM counter WHERE id = 1").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(100)));
    }

    #[test]
    fn foreign_transaction_writes_stay_invisible_to_other_threads() {
        // A plain read on thread B while thread A holds an open transaction
        // must not adopt A's stamp — that would be a dirty read of A's
        // uncommitted writes.
        let db = Arc::new(Database::new());
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let (inside_tx, inside_rx) = std::sync::mpsc::channel();
        let (checked_tx, checked_rx) = std::sync::mpsc::channel();
        let writer = {
            let db = db.clone();
            std::thread::spawn(move || {
                db.transaction(|db| {
                    db.execute("INSERT INTO t VALUES (2)")?;
                    inside_tx.send(()).unwrap();
                    // Hold the transaction open until the reader has looked.
                    checked_rx.recv().unwrap();
                    Ok(())
                })
                .unwrap();
            })
        };
        inside_rx.recv().unwrap();
        let n = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(n.scalar(), Some(&Value::Bigint(1)), "dirty read of an uncommitted insert");
        checked_tx.send(()).unwrap();
        writer.join().unwrap();
        let n = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(n.scalar(), Some(&Value::Bigint(2)));
    }

    #[test]
    fn delete_then_reinsert_same_key_inside_transaction() {
        // Pre-MVCC behavior that must keep working: a transaction deletes a
        // key and re-inserts it before committing. The uncommitted delete
        // belongs to the same stamp, so it must not count as "occupied".
        let db = setup();
        db.execute("BEGIN").unwrap();
        db.execute("DELETE FROM Disease WHERE diseaseID = 10").unwrap();
        db.execute("INSERT INTO Disease VALUES (10, 'E11.9', 'type 2 diabetes, new code')").unwrap();
        db.execute("COMMIT").unwrap();
        let rs = db.execute("SELECT conceptCode FROM Disease WHERE diseaseID = 10").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("E11.9".into())));
        // The rollback variant restores the original row.
        db.execute("BEGIN").unwrap();
        db.execute("DELETE FROM Disease WHERE diseaseID = 11").unwrap();
        db.execute("INSERT INTO Disease VALUES (11, 'X', 'replaced')").unwrap();
        db.execute("ROLLBACK").unwrap();
        let rs = db.execute("SELECT conceptCode FROM Disease WHERE diseaseID = 11").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("E10".into())));
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM Disease").unwrap().scalar(),
            Some(&Value::Bigint(3))
        );
    }

    #[test]
    fn autocommit_dml_conflicts_with_foreign_uncommitted_write() {
        // An auto-commit UPDATE/DELETE racing an open transaction's write
        // on the same row must error as a write conflict — not end-mark the
        // uncommitted version (which would break the owner's rollback and
        // silently drop its update).
        let db = Arc::new(Database::new());
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY, n BIGINT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 0)").unwrap();
        let (inside_tx, inside_rx) = std::sync::mpsc::channel();
        let (checked_tx, checked_rx) = std::sync::mpsc::channel();
        let writer = {
            let db = db.clone();
            std::thread::spawn(move || {
                let res: DbResult<()> = db.transaction(|db| {
                    db.execute("UPDATE t SET n = 10 WHERE id = 1")?;
                    inside_tx.send(()).unwrap();
                    checked_rx.recv().unwrap();
                    Err(DbError::Execution("abort".into()))
                });
                assert!(res.is_err());
            })
        };
        inside_rx.recv().unwrap();
        let err = db.execute("UPDATE t SET n = 99 WHERE id = 1").unwrap_err();
        assert!(matches!(err, DbError::Txn(_)), "{err}");
        let err = db.execute("DELETE FROM t WHERE id = 1").unwrap_err();
        assert!(matches!(err, DbError::Txn(_)), "{err}");
        checked_tx.send(()).unwrap();
        writer.join().unwrap();
        // The owner rolled back cleanly: the original row is intact and
        // writable again (no stranded uncommitted markers).
        let rs = db.execute("SELECT n FROM t WHERE id = 1").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(0)));
        db.execute("UPDATE t SET n = 99 WHERE id = 1").unwrap();
        let rs = db.execute("SELECT n FROM t WHERE id = 1").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(99)));
    }

    #[test]
    fn commit_and_rollback_rejected_from_non_owner_thread() {
        let db = Arc::new(setup());
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO Patient VALUES (30, 'Uma', NULL, NULL)").unwrap();
        {
            let db = db.clone();
            std::thread::spawn(move || {
                assert!(matches!(db.execute("COMMIT"), Err(DbError::Txn(_))));
                assert!(matches!(db.execute("ROLLBACK"), Err(DbError::Txn(_))));
            })
            .join()
            .unwrap();
        }
        // The owner's transaction is still open and still rolls back.
        db.execute("ROLLBACK").unwrap();
        let rs = db.execute("SELECT COUNT(*) FROM Patient WHERE patientID = 30").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(0)));
    }

    #[test]
    fn reentrant_transaction_errors_instead_of_deadlocking() {
        let db = setup();
        let res: DbResult<()> = db.transaction(|db| {
            let inner: DbResult<()> = db.transaction(|_| Ok(()));
            assert!(matches!(inner, Err(DbError::Txn(_))));
            Ok(())
        });
        res.unwrap();
        // SQL BEGIN also blocks transaction() on the same thread.
        db.execute("BEGIN").unwrap();
        assert!(db.transaction(|_| Ok(())).is_err());
        db.execute("ROLLBACK").unwrap();
    }

    #[test]
    fn session_txn_spans_threads_and_commits_atomically() {
        let db = setup();
        let token = db.begin_session_txn();
        assert_eq!(db.session_txn_count(), 1);
        // Two writes adopted on two different threads, one transaction.
        std::thread::scope(|s| {
            s.spawn(|| {
                db.with_session_txn(token, |db| {
                    db.execute("UPDATE Patient SET address = '1 Session Way' WHERE patientID = 1")
                        .unwrap();
                })
                .unwrap();
            });
        });
        db.with_session_txn(token, |db| {
            db.execute("INSERT INTO Patient VALUES (4, 'Dave', NULL, NULL)").unwrap();
            // Reads inside the session see both uncommitted writes.
            let rs = db
                .execute("SELECT address FROM Patient WHERE patientID = 1")
                .unwrap();
            assert_eq!(rs.scalar(), Some(&Value::Varchar("1 Session Way".into())));
            assert_eq!(db.execute("SELECT * FROM Patient").unwrap().len(), 4);
        })
        .unwrap();
        // Outside the session, nothing is visible yet.
        assert_eq!(db.execute("SELECT * FROM Patient").unwrap().len(), 3);
        db.commit_session_txn(token).unwrap();
        assert_eq!(db.session_txn_count(), 0);
        assert_eq!(db.execute("SELECT * FROM Patient").unwrap().len(), 4);
        let rs = db.execute("SELECT address FROM Patient WHERE patientID = 1").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("1 Session Way".into())));
        // The token died with the commit.
        assert!(db.with_session_txn(token, |_| ()).is_err());
    }

    #[test]
    fn session_txn_rollback_discards_and_refuses_nesting() {
        let db = setup();
        let token = db.begin_session_txn();
        db.with_session_txn(token, |db| {
            db.execute("DELETE FROM HasDisease WHERE patientID = 1").unwrap();
            // No transactional nesting inside a session: neither the
            // closure API nor SQL BEGIN/COMMIT/ROLLBACK.
            assert!(db.transaction(|_| Ok(())).is_err());
            assert!(db.execute("BEGIN").is_err());
            assert!(db.execute("COMMIT").is_err());
        })
        .unwrap();
        db.rollback_session_txn(token).unwrap();
        assert_eq!(db.execute("SELECT * FROM HasDisease").unwrap().len(), 3);
        // A dead token cannot be committed either.
        assert!(db.commit_session_txn(token).is_err());
    }

    #[test]
    fn concurrent_sessions_stay_isolated() {
        let db = setup();
        let a = db.begin_session_txn();
        let b = db.begin_session_txn();
        db.with_session_txn(a, |db| {
            db.execute("UPDATE Patient SET name = 'A' WHERE patientID = 1").unwrap();
        })
        .unwrap();
        db.with_session_txn(b, |db| {
            // Session b sees neither a's write nor its own absence of one.
            let rs = db.execute("SELECT name FROM Patient WHERE patientID = 1").unwrap();
            assert_eq!(rs.scalar(), Some(&Value::Varchar("Alice".into())));
            db.execute("UPDATE Patient SET name = 'B' WHERE patientID = 2").unwrap();
        })
        .unwrap();
        db.rollback_session_txn(b).unwrap();
        db.commit_session_txn(a).unwrap();
        let rs = db.execute("SELECT name FROM Patient ORDER BY patientID").unwrap();
        assert_eq!(rs.get(0, "name"), Some(&Value::Varchar("A".into())));
        assert_eq!(rs.get(1, "name"), Some(&Value::Varchar("Bob".into())));
    }

    #[test]
    fn left_outer_join() {
        let db = setup();
        let rs = db
            .execute(
                "SELECT p.name, h.diseaseID FROM Patient p LEFT JOIN HasDisease h ON p.patientID = h.patientID ORDER BY p.patientID, h.diseaseID",
            )
            .unwrap();
        // Alice x2, Bob x1, Carol with NULL.
        assert_eq!(rs.len(), 4);
        assert_eq!(rs.get(3, "name"), Some(&Value::Varchar("Carol".into())));
        assert_eq!(rs.get(3, "diseaseID"), Some(&Value::Null));
    }
}
