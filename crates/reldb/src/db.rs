//! The `Database` facade: catalog, statement execution, transactions.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::{DbError, DbResult};
use crate::func::TableFunction;
use crate::index::IndexDef;
use crate::prepared::Prepared;
use crate::row::{Row, RowSet};
use crate::schema::TableSchema;
use crate::sql::ast::*;
use crate::sql::eval::{eval, truth, ColRef, RowEnv};
use crate::sql::exec::{execute_select, explain_select};
use crate::sql::parser::{parse_script, parse_statement};
use crate::sql::planner::{as_simple_pred, choose_access_path, split_conjuncts, AccessPath};
use crate::stats::ExecStats;
use crate::storage::Table;
use crate::txn::{UndoLog, UndoOp};
use crate::value::Value;

/// A named view: a stored SELECT executed on reference.
///
/// Views are *non-materialized*: every reference re-runs the query against
/// current table contents. This is the mechanism behind the paper's
/// "surprising benefit" (Section 5) — derived edges defined as a view over
/// two edge tables stay automatically consistent with the base data.
#[derive(Debug, Clone)]
pub struct ViewDef {
    pub name: String,
    pub query: SelectStmt,
}

/// An embedded, thread-safe relational database.
///
/// Share it across threads with `Arc<Database>`; all methods take `&self`.
pub struct Database {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
    views: RwLock<BTreeMap<String, ViewDef>>,
    functions: RwLock<BTreeMap<String, Arc<dyn TableFunction>>>,
    active_txn: Mutex<Option<UndoLog>>,
    enforce_foreign_keys: AtomicBool,
    stats: ExecStats,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.table_names())
            .field("views", &self.view_names())
            .finish()
    }
}

impl Database {
    pub fn new() -> Database {
        Database {
            tables: RwLock::new(BTreeMap::new()),
            views: RwLock::new(BTreeMap::new()),
            functions: RwLock::new(BTreeMap::new()),
            active_txn: Mutex::new(None),
            enforce_foreign_keys: AtomicBool::new(true),
            stats: ExecStats::default(),
        }
    }

    /// Toggle foreign-key enforcement (disable for bulk loads).
    pub fn set_enforce_foreign_keys(&self, on: bool) {
        self.enforce_foreign_keys.store(on, Ordering::Relaxed);
    }

    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    // ------------------------------------------------------------- catalog

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    pub fn get_table(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.read().get(&Self::key(name)).cloned()
    }

    pub fn get_view(&self, name: &str) -> Option<ViewDef> {
        self.views.read().get(&Self::key(name)).cloned()
    }

    pub fn get_function(&self, name: &str) -> Option<Arc<dyn TableFunction>> {
        self.functions.read().get(&Self::key(name)).cloned()
    }

    /// Register a polymorphic table function under a name.
    pub fn register_function(&self, name: &str, f: Arc<dyn TableFunction>) {
        self.functions.write().insert(Self::key(name), f);
    }

    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().values().map(|t| t.schema.name.clone()).collect()
    }

    pub fn view_names(&self) -> Vec<String> {
        self.views.read().values().map(|v| v.name.clone()).collect()
    }

    /// Schemas of all base tables — the catalog metadata AutoOverlay reads.
    pub fn table_schemas(&self) -> Vec<TableSchema> {
        self.tables.read().values().map(|t| t.schema.clone()).collect()
    }

    /// Output column names of a view (executed against current data with
    /// LIMIT 0 semantics — we run the query and read the header).
    pub fn view_columns(&self, name: &str) -> DbResult<Vec<String>> {
        let view = self
            .get_view(name)
            .ok_or_else(|| DbError::Catalog(format!("view '{name}' not found")))?;
        let mut q = view.query.clone();
        q.limit = Some(0);
        Ok(execute_select(self, &q)?.columns)
    }

    /// Create a table from a schema built in code.
    pub fn create_table(&self, schema: TableSchema) -> DbResult<()> {
        self.validate_foreign_keys(&schema)?;
        let mut tables = self.tables.write();
        let key = Self::key(&schema.name);
        if tables.contains_key(&key) || self.views.read().contains_key(&key) {
            return Err(DbError::Catalog(format!("'{}' already exists", schema.name)));
        }
        tables.insert(key, Arc::new(Table::new(schema)?));
        Ok(())
    }

    fn validate_foreign_keys(&self, schema: &TableSchema) -> DbResult<()> {
        for fk in &schema.foreign_keys {
            if fk.ref_table.eq_ignore_ascii_case(&schema.name) {
                continue; // self reference is checked against own columns
            }
            let target = self.get_table(&fk.ref_table).ok_or_else(|| {
                DbError::Catalog(format!(
                    "foreign key on '{}' references unknown table '{}'",
                    schema.name, fk.ref_table
                ))
            })?;
            for c in &fk.ref_columns {
                target.schema.require_column(c)?;
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------- execution

    /// Parse and execute one SQL statement.
    pub fn execute(&self, sql: &str) -> DbResult<RowSet> {
        let stmt = parse_statement(sql)?;
        self.execute_stmt(&stmt)
    }

    /// Parse and execute one SQL statement with `?` parameters.
    pub fn execute_params(&self, sql: &str, params: &[Value]) -> DbResult<RowSet> {
        let prepared = Prepared::new(sql)?;
        self.execute_prepared(&prepared, params)
    }

    /// Execute every statement in a `;`-separated script; returns the last
    /// statement's result.
    pub fn execute_script(&self, sql: &str) -> DbResult<RowSet> {
        let stmts = parse_script(sql)?;
        let mut last = RowSet::default();
        for stmt in &stmts {
            last = self.execute_stmt(stmt)?;
        }
        Ok(last)
    }

    /// Prepare a statement for repeated execution.
    pub fn prepare(&self, sql: &str) -> DbResult<Prepared> {
        Prepared::new(sql)
    }

    /// Execute a previously prepared statement.
    pub fn execute_prepared(&self, prepared: &Prepared, params: &[Value]) -> DbResult<RowSet> {
        let bound = prepared.bind(params)?;
        self.execute_stmt(&bound)
    }

    /// Execute an already-parsed statement, recording result size and wall
    /// time into the engine stats.
    pub fn execute_stmt(&self, stmt: &Stmt) -> DbResult<RowSet> {
        self.stats.record_statement();
        let start = std::time::Instant::now();
        let result = self.execute_stmt_inner(stmt);
        let rows = result.as_ref().map(|rs| rs.rows.len() as u64).unwrap_or(0);
        self.stats.record_execution(rows, start.elapsed().as_nanos() as u64);
        result
    }

    fn execute_stmt_inner(&self, stmt: &Stmt) -> DbResult<RowSet> {
        match stmt {
            Stmt::Select(q) => execute_select(self, q),
            Stmt::Explain(q) => {
                let lines = explain_select(self, q)?;
                Ok(RowSet::with_rows(
                    vec!["plan".into()],
                    lines.into_iter().map(|l| vec![Value::Varchar(l)]).collect(),
                ))
            }
            Stmt::CreateTable { schema, if_not_exists } => {
                match self.create_table(schema.clone()) {
                    Err(DbError::Catalog(_)) if *if_not_exists => {}
                    other => other?,
                }
                Ok(count_result(0))
            }
            Stmt::CreateIndex { name, table, columns, unique } => {
                let t = self.require_table(table)?;
                t.create_index(IndexDef {
                    name: name.clone(),
                    columns: columns.clone(),
                    unique: *unique,
                })?;
                Ok(count_result(0))
            }
            Stmt::CreateView { name, query, or_replace } => {
                let key = Self::key(name);
                if self.tables.read().contains_key(&key) {
                    return Err(DbError::Catalog(format!("'{name}' is a table")));
                }
                let mut views = self.views.write();
                if views.contains_key(&key) && !*or_replace {
                    return Err(DbError::Catalog(format!("view '{name}' already exists")));
                }
                views.insert(key, ViewDef { name: name.clone(), query: (**query).clone() });
                Ok(count_result(0))
            }
            Stmt::DropTable { name, if_exists } => {
                let removed = self.tables.write().remove(&Self::key(name)).is_some();
                if !removed && !*if_exists {
                    return Err(DbError::Catalog(format!("table '{name}' not found")));
                }
                Ok(count_result(0))
            }
            Stmt::DropView { name } => {
                if self.views.write().remove(&Self::key(name)).is_none() {
                    return Err(DbError::Catalog(format!("view '{name}' not found")));
                }
                Ok(count_result(0))
            }
            Stmt::DropIndex { name } => {
                let tables: Vec<Arc<Table>> = self.tables.read().values().cloned().collect();
                for t in tables {
                    if t.read().indexes().iter().any(|ix| ix.def.name.eq_ignore_ascii_case(name)) {
                        t.drop_index(name)?;
                        return Ok(count_result(0));
                    }
                }
                Err(DbError::Catalog(format!("index '{name}' not found")))
            }
            Stmt::Insert { table, columns, values } => self.run_insert(table, columns, values),
            Stmt::Update { table, sets, where_clause } => {
                self.run_update(table, sets, where_clause.as_ref())
            }
            Stmt::Delete { table, where_clause } => self.run_delete(table, where_clause.as_ref()),
            Stmt::Begin => {
                let mut txn = self.active_txn.lock();
                if txn.is_some() {
                    return Err(DbError::Txn("transaction already in progress".into()));
                }
                *txn = Some(UndoLog::default());
                Ok(count_result(0))
            }
            Stmt::Commit => {
                let mut txn = self.active_txn.lock();
                if txn.take().is_none() {
                    return Err(DbError::Txn("no transaction in progress".into()));
                }
                Ok(count_result(0))
            }
            Stmt::Rollback => {
                let log = {
                    let mut txn = self.active_txn.lock();
                    txn.take().ok_or_else(|| DbError::Txn("no transaction in progress".into()))?
                };
                self.apply_rollback(log)?;
                Ok(count_result(0))
            }
        }
    }

    /// Render the execution plan of a SELECT.
    pub fn explain(&self, sql: &str) -> DbResult<String> {
        match parse_statement(sql)? {
            Stmt::Select(q) | Stmt::Explain(q) => Ok(explain_select(self, &q)?.join("\n")),
            _ => Err(DbError::Unsupported("EXPLAIN supports SELECT only".into())),
        }
    }

    /// Run `f` inside a transaction: committed on `Ok`, rolled back on `Err`.
    pub fn transaction<T>(&self, f: impl FnOnce(&Database) -> DbResult<T>) -> DbResult<T> {
        {
            let mut txn = self.active_txn.lock();
            if txn.is_some() {
                return Err(DbError::Txn("transaction already in progress".into()));
            }
            *txn = Some(UndoLog::default());
        }
        match f(self) {
            Ok(v) => {
                self.active_txn.lock().take();
                Ok(v)
            }
            Err(e) => {
                let log = self.active_txn.lock().take();
                if let Some(log) = log {
                    self.apply_rollback(log)?;
                }
                Err(e)
            }
        }
    }

    fn apply_rollback(&self, mut log: UndoLog) -> DbResult<()> {
        for op in log.drain_reverse() {
            match op {
                UndoOp::Insert { table, rid } => {
                    self.require_table(&table)?.delete(rid)?;
                }
                UndoOp::Delete { table, rid, row } => {
                    self.require_table(&table)?.restore(rid, row)?;
                }
                UndoOp::Update { table, rid, old } => {
                    self.require_table(&table)?.update(rid, old)?;
                }
            }
        }
        Ok(())
    }

    fn record_undo(&self, op: UndoOp) {
        if let Some(log) = self.active_txn.lock().as_mut() {
            log.record(op);
        }
    }

    fn require_table(&self, name: &str) -> DbResult<Arc<Table>> {
        self.get_table(name)
            .ok_or_else(|| DbError::Catalog(format!("table '{name}' not found")))
    }

    // ---------------------------------------------------------------- DML

    fn run_insert(
        &self,
        table: &str,
        columns: &Option<Vec<String>>,
        values: &[Vec<Expr>],
    ) -> DbResult<RowSet> {
        let t = self.require_table(table)?;
        let positions: Vec<usize> = match columns {
            Some(cols) => cols
                .iter()
                .map(|c| t.schema.require_column(c))
                .collect::<DbResult<_>>()?,
            None => (0..t.schema.columns.len()).collect(),
        };
        let empty_cols: Vec<ColRef> = Vec::new();
        let empty_row: Row = Vec::new();
        let env = RowEnv { cols: &empty_cols, row: &empty_row };
        let mut n = 0i64;
        for exprs in values {
            if exprs.len() != positions.len() {
                return Err(DbError::Type(format!(
                    "INSERT expects {} values per row, got {}",
                    positions.len(),
                    exprs.len()
                )));
            }
            let mut row: Row = vec![Value::Null; t.schema.columns.len()];
            for (pos, e) in positions.iter().zip(exprs) {
                row[*pos] = eval(e, &env)?;
            }
            self.insert_row(&t, row)?;
            n += 1;
        }
        Ok(count_result(n))
    }

    /// Insert a positional row directly (programmatic API used by loaders).
    pub fn insert_row(&self, table: &Arc<Table>, row: Row) -> DbResult<usize> {
        if self.enforce_foreign_keys.load(Ordering::Relaxed) {
            self.check_foreign_keys(table, &row)?;
        }
        let rid = table.insert(row)?;
        self.record_undo(UndoOp::Insert { table: table.schema.name.clone(), rid });
        Ok(rid)
    }

    /// Convenience: insert by table name with values in schema order.
    pub fn insert(&self, table: &str, row: Row) -> DbResult<usize> {
        let t = self.require_table(table)?;
        self.insert_row(&t, row)
    }

    fn check_foreign_keys(&self, table: &Arc<Table>, row: &Row) -> DbResult<()> {
        for fk in &table.schema.foreign_keys {
            let vals: Vec<Value> = fk
                .columns
                .iter()
                .map(|c| table.schema.require_column(c).map(|i| row[i].clone()))
                .collect::<DbResult<_>>()?;
            if vals.iter().any(Value::is_null) {
                continue;
            }
            let target = if fk.ref_table.eq_ignore_ascii_case(&table.schema.name) {
                table.clone()
            } else {
                self.require_table(&fk.ref_table)?
            };
            let guard = target.read();
            let found = if let Some(ix) = guard.find_index(&fk.ref_columns) {
                !ix.lookup_eq(&vals).is_empty()
            } else {
                // No index on the referenced columns: scan.
                let positions: Vec<usize> = fk
                    .ref_columns
                    .iter()
                    .map(|c| target.schema.require_column(c))
                    .collect::<DbResult<_>>()?;
                guard.iter().any(|(_, r)| {
                    positions.iter().zip(&vals).all(|(&p, v)| r[p].sql_eq(v) == Some(true))
                })
            };
            if !found {
                return Err(DbError::Constraint(format!(
                    "foreign key violation: {}({}) -> {}({})",
                    table.schema.name,
                    fk.columns.join(","),
                    fk.ref_table,
                    fk.ref_columns.join(",")
                )));
            }
        }
        Ok(())
    }

    /// Find `(row_id, row)` pairs matching a predicate, using an index
    /// access path when one applies.
    fn matching_rows(
        &self,
        t: &Arc<Table>,
        where_clause: Option<&Expr>,
    ) -> DbResult<Vec<(usize, Row)>> {
        let binding = t.schema.name.clone();
        let cols: Vec<ColRef> = t
            .schema
            .columns
            .iter()
            .map(|c| ColRef::new(Some(&binding), &c.name))
            .collect();
        let mut preds = Vec::new();
        if let Some(w) = where_clause {
            let has_column = |c: &str| t.schema.column_index(c).is_some();
            for conj in split_conjuncts(w) {
                if let Some(p) = as_simple_pred(conj, &binding, &has_column) {
                    preds.push(p);
                }
            }
        }
        let guard = t.read();
        let path = choose_access_path(&guard, &preds);
        let candidates: Vec<(usize, Row)> = match &path {
            AccessPath::FullScan => guard.iter().map(|(rid, r)| (rid, r.clone())).collect(),
            AccessPath::IndexEq { index, key } => {
                let ix = guard
                    .indexes()
                    .iter()
                    .find(|i| i.def.name == *index)
                    .ok_or_else(|| DbError::Execution("index vanished".into()))?;
                ix.lookup_eq(key)
                    .into_iter()
                    .filter_map(|rid| guard.row(rid).map(|r| (rid, r.clone())))
                    .collect()
            }
            AccessPath::IndexIn { index, keys } => {
                let ix = guard
                    .indexes()
                    .iter()
                    .find(|i| i.def.name == *index)
                    .ok_or_else(|| DbError::Execution("index vanished".into()))?;
                ix.lookup_in(keys)
                    .into_iter()
                    .filter_map(|rid| guard.row(rid).map(|r| (rid, r.clone())))
                    .collect()
            }
            AccessPath::IndexRange { .. } => {
                guard.iter().map(|(rid, r)| (rid, r.clone())).collect()
            }
        };
        drop(guard);
        let mut out = Vec::new();
        for (rid, row) in candidates {
            let keep = match where_clause {
                None => true,
                Some(w) => {
                    let env = RowEnv { cols: &cols, row: &row };
                    truth(&eval(w, &env)?) == Some(true)
                }
            };
            if keep {
                out.push((rid, row));
            }
        }
        Ok(out)
    }

    fn run_update(
        &self,
        table: &str,
        sets: &[(String, Expr)],
        where_clause: Option<&Expr>,
    ) -> DbResult<RowSet> {
        let t = self.require_table(table)?;
        let binding = t.schema.name.clone();
        let cols: Vec<ColRef> = t
            .schema
            .columns
            .iter()
            .map(|c| ColRef::new(Some(&binding), &c.name))
            .collect();
        let set_positions: Vec<usize> = sets
            .iter()
            .map(|(c, _)| t.schema.require_column(c))
            .collect::<DbResult<_>>()?;
        let matches = self.matching_rows(&t, where_clause)?;
        let mut n = 0i64;
        for (rid, row) in matches {
            let env = RowEnv { cols: &cols, row: &row };
            let mut new_row = row.clone();
            for (pos, (_, e)) in set_positions.iter().zip(sets) {
                new_row[*pos] = eval(e, &env)?;
            }
            let old = t.update(rid, new_row)?;
            self.record_undo(UndoOp::Update { table: t.schema.name.clone(), rid, old });
            n += 1;
        }
        Ok(count_result(n))
    }

    fn run_delete(&self, table: &str, where_clause: Option<&Expr>) -> DbResult<RowSet> {
        let t = self.require_table(table)?;
        let matches = self.matching_rows(&t, where_clause)?;
        let mut n = 0i64;
        for (rid, _) in matches {
            let row = t.delete(rid)?;
            self.record_undo(UndoOp::Delete { table: t.schema.name.clone(), rid, row });
            n += 1;
        }
        Ok(count_result(n))
    }
}

fn count_result(n: i64) -> RowSet {
    RowSet::with_rows(vec!["count".into()], vec![vec![Value::Bigint(n)]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn setup() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR, address VARCHAR, subscriptionID BIGINT);
             CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, conceptName VARCHAR);
             CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR,
                FOREIGN KEY (patientID) REFERENCES Patient(patientID),
                FOREIGN KEY (diseaseID) REFERENCES Disease(diseaseID));
             INSERT INTO Patient VALUES (1, 'Alice', '12 Oak St', 100), (2, 'Bob', '9 Elm St', 101), (3, 'Carol', NULL, NULL);
             INSERT INTO Disease VALUES (10, 'E11', 'type 2 diabetes'), (11, 'E10', 'type 1 diabetes'), (12, 'E08', 'diabetes');
             INSERT INTO HasDisease VALUES (1, 10, 'diagnosed 2019'), (2, 11, NULL), (1, 11, NULL);",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_with_filter_and_projection() {
        let db = setup();
        let rs = db.execute("SELECT name FROM Patient WHERE patientID = 1").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("Alice".into())));
        let rs = db
            .execute("SELECT patientID, name FROM Patient WHERE name LIKE '%o%' ORDER BY patientID")
            .unwrap();
        assert_eq!(rs.len(), 2); // Bob, Carol
    }

    #[test]
    fn join_and_aggregate() {
        let db = setup();
        let rs = db
            .execute(
                "SELECT p.name, COUNT(*) AS n FROM Patient p JOIN HasDisease h ON p.patientID = h.patientID GROUP BY p.name ORDER BY n DESC",
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.get(0, "name"), Some(&Value::Varchar("Alice".into())));
        assert_eq!(rs.get(0, "n"), Some(&Value::Bigint(2)));
    }

    #[test]
    fn aggregate_over_empty_input_yields_one_row() {
        let db = setup();
        let rs = db.execute("SELECT COUNT(*) FROM Patient WHERE patientID = 999").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(0)));
        let rs = db.execute("SELECT SUM(subscriptionID) FROM Patient WHERE patientID = 999").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Null));
    }

    #[test]
    fn foreign_keys_enforced_and_toggleable() {
        let db = setup();
        let err = db.execute("INSERT INTO HasDisease VALUES (99, 10, NULL)").unwrap_err();
        assert!(matches!(err, DbError::Constraint(_)), "{err}");
        db.set_enforce_foreign_keys(false);
        db.execute("INSERT INTO HasDisease VALUES (99, 10, NULL)").unwrap();
    }

    #[test]
    fn update_delete_and_counts() {
        let db = setup();
        let rs = db.execute("UPDATE Patient SET address = 'moved' WHERE patientID IN (1, 2)").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(2)));
        let rs = db.execute("SELECT COUNT(*) FROM Patient WHERE address = 'moved'").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(2)));
        let rs = db.execute("DELETE FROM HasDisease WHERE description IS NULL").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(2)));
    }

    #[test]
    fn explicit_transaction_rollback_restores_state() {
        let db = setup();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO Patient VALUES (4, 'Dan', NULL, NULL)").unwrap();
        db.execute("UPDATE Patient SET name = 'Alicia' WHERE patientID = 1").unwrap();
        db.execute("DELETE FROM HasDisease WHERE patientID = 2").unwrap();
        db.execute("ROLLBACK").unwrap();
        let rs = db.execute("SELECT COUNT(*) FROM Patient").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(3)));
        let rs = db.execute("SELECT name FROM Patient WHERE patientID = 1").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("Alice".into())));
        let rs = db.execute("SELECT COUNT(*) FROM HasDisease WHERE patientID = 2").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(1)));
    }

    #[test]
    fn transaction_closure_rolls_back_on_error() {
        let db = setup();
        let res: DbResult<()> = db.transaction(|db| {
            db.execute("INSERT INTO Patient VALUES (5, 'Eve', NULL, NULL)")?;
            Err(DbError::Execution("boom".into()))
        });
        assert!(res.is_err());
        let rs = db.execute("SELECT COUNT(*) FROM Patient WHERE patientID = 5").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(0)));
        // And commits on success.
        db.transaction(|db| db.execute("INSERT INTO Patient VALUES (5, 'Eve', NULL, NULL)"))
            .unwrap();
        let rs = db.execute("SELECT COUNT(*) FROM Patient WHERE patientID = 5").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(1)));
    }

    #[test]
    fn views_reflect_updates_immediately() {
        let db = setup();
        db.execute(
            "CREATE VIEW Diabetics AS SELECT p.patientID AS pid, p.name AS pname FROM Patient p JOIN HasDisease h ON p.patientID = h.patientID WHERE h.diseaseID = 10",
        )
        .unwrap();
        let rs = db.execute("SELECT pname FROM Diabetics").unwrap();
        assert_eq!(rs.len(), 1);
        db.execute("INSERT INTO HasDisease VALUES (2, 10, NULL)").unwrap();
        let rs = db.execute("SELECT pname FROM Diabetics ORDER BY pid").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.get(1, "pname"), Some(&Value::Varchar("Bob".into())));
    }

    #[test]
    fn prepared_statement_roundtrip() {
        let db = setup();
        let p = db.prepare("SELECT name FROM Patient WHERE patientID = ?").unwrap();
        let rs = db.execute_prepared(&p, &[Value::Bigint(2)]).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("Bob".into())));
        let rs = db.execute_prepared(&p, &[Value::Bigint(3)]).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Varchar("Carol".into())));
    }

    #[test]
    fn explain_shows_index_probe_vs_scan() {
        let db = setup();
        let plan = db.explain("SELECT * FROM Patient WHERE patientID = 1").unwrap();
        assert!(plan.contains("INDEX-EQ"), "{plan}");
        let plan = db.explain("SELECT * FROM Patient WHERE name = 'Alice'").unwrap();
        assert!(plan.contains("SCAN"), "{plan}");
        db.execute("CREATE INDEX ix_name ON Patient (name)").unwrap();
        let plan = db.explain("SELECT * FROM Patient WHERE name = 'Alice'").unwrap();
        assert!(plan.contains("INDEX-EQ"), "{plan}");
    }

    #[test]
    fn table_function_in_sql() {
        let db = setup();
        db.register_function(
            "pair_maker",
            Arc::new(|args: &[Value], _cols: &[(String, DataType)]| -> DbResult<RowSet> {
                let n = args[0].as_i64()?;
                Ok(RowSet::with_rows(
                    vec!["a".into(), "b".into()],
                    (0..n).map(|i| vec![Value::Bigint(i), Value::Bigint(i * i)]).collect(),
                ))
            }),
        );
        let rs = db
            .execute("SELECT b FROM TABLE(pair_maker(4)) AS t (a BIGINT, b BIGINT) WHERE a >= 2 ORDER BY a")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Bigint(4)], vec![Value::Bigint(9)]]);
    }

    #[test]
    fn comma_join_with_table_function_uses_hash_join() {
        // The Section 4 pattern: base table comma-joined to a table function
        // with the link predicate in WHERE.
        let db = setup();
        db.register_function(
            "subs",
            Arc::new(|_args: &[Value], _cols: &[(String, DataType)]| -> DbResult<RowSet> {
                Ok(RowSet::with_rows(
                    vec!["sid".into()],
                    vec![vec![Value::Bigint(100)], vec![Value::Bigint(101)]],
                ))
            }),
        );
        let rs = db
            .execute(
                "SELECT p.name FROM Patient AS p, TABLE(subs()) AS s (sid BIGINT) WHERE p.subscriptionID = s.sid ORDER BY p.name",
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.get(0, "name"), Some(&Value::Varchar("Alice".into())));
    }

    #[test]
    fn subquery_distinct_limit() {
        let db = setup();
        let rs = db
            .execute(
                "SELECT DISTINCT diseaseID FROM (SELECT diseaseID FROM HasDisease) AS s ORDER BY diseaseID LIMIT 1",
            )
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Bigint(10)]]);
    }

    #[test]
    fn duplicate_table_and_missing_objects_error() {
        let db = setup();
        assert!(db.execute("CREATE TABLE Patient (x BIGINT)").is_err());
        assert!(db.execute("SELECT * FROM NoSuch").is_err());
        assert!(db.execute("DROP VIEW nothere").is_err());
        assert!(db.execute("DROP TABLE nothere").is_err());
        db.execute("DROP TABLE IF EXISTS nothere").unwrap();
        db.execute("CREATE TABLE IF NOT EXISTS Patient (x BIGINT)").unwrap();
    }

    #[test]
    fn left_outer_join() {
        let db = setup();
        let rs = db
            .execute(
                "SELECT p.name, h.diseaseID FROM Patient p LEFT JOIN HasDisease h ON p.patientID = h.patientID ORDER BY p.patientID, h.diseaseID",
            )
            .unwrap();
        // Alice x2, Bob x1, Carol with NULL.
        assert_eq!(rs.len(), 4);
        assert_eq!(rs.get(3, "name"), Some(&Value::Varchar("Carol".into())));
        assert_eq!(rs.get(3, "diseaseID"), Some(&Value::Null));
    }
}
