//! Abstract syntax tree for the SQL dialect.

use crate::schema::TableSchema;
use crate::value::{DataType, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    CreateTable {
        schema: TableSchema,
        if_not_exists: bool,
    },
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
        unique: bool,
    },
    CreateView {
        name: String,
        query: Box<SelectStmt>,
        or_replace: bool,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    DropView {
        name: String,
    },
    DropIndex {
        name: String,
    },
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        values: Vec<Vec<Expr>>,
    },
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        where_clause: Option<Expr>,
    },
    Delete {
        table: String,
        where_clause: Option<Expr>,
    },
    Select(Box<SelectStmt>),
    Begin,
    Commit,
    Rollback,
    /// `EXPLAIN <select>` — returns the plan as a one-column row set.
    Explain(Box<SelectStmt>),
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    /// Comma-separated FROM items; each may carry its own JOIN chain.
    pub from: Vec<FromItem>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with optional `AS alias`.
    Expr { expr: Expr, alias: Option<String> },
}

/// One FROM item: a source plus zero or more JOINs hanging off it.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    pub source: TableSource,
    pub joins: Vec<Join>,
}

/// An explicit `[INNER|LEFT] JOIN <source> ON <expr>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub source: TableSource,
    pub on: Expr,
    pub left_outer: bool,
}

/// A relation appearing in FROM.
#[derive(Debug, Clone, PartialEq)]
pub enum TableSource {
    /// A base table or view, with optional alias.
    Named { name: String, alias: Option<String> },
    /// A polymorphic table function: `TABLE(f(args)) AS alias (col type, ...)`.
    /// This is the hook the paper's `graphQuery` function uses (Section 4).
    Function {
        name: String,
        args: Vec<Expr>,
        alias: String,
        columns: Vec<(String, DataType)>,
    },
    /// A derived table: `(SELECT ...) AS alias`.
    Subquery { query: Box<SelectStmt>, alias: String },
}

impl TableSource {
    /// The name this source binds in the query's scope.
    pub fn binding_name(&self) -> &str {
        match self {
            TableSource::Named { name, alias } => alias.as_deref().unwrap_or(name),
            TableSource::Function { alias, .. } => alias,
            TableSource::Subquery { alias, .. } => alias,
        }
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// Binary operators, in SQL semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified (`t.col`).
    Column { qualifier: Option<String>, name: String },
    Literal(Value),
    /// `?` positional parameter (0-based ordinal in statement order).
    Param(usize),
    Unary { op: UnaryOp, expr: Box<Expr> },
    Binary { op: BinOp, left: Box<Expr>, right: Box<Expr> },
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    IsNull { expr: Box<Expr>, negated: bool },
    Like { expr: Box<Expr>, pattern: Box<Expr>, negated: bool },
    /// Function call — aggregates (`COUNT`, `SUM`, `AVG`, `MIN`, `MAX`,
    /// with optional DISTINCT or `*`) and scalar functions (`ABS`, `LOWER`,
    /// `UPPER`, `LENGTH`, `CONCAT`).
    Function { name: String, args: Vec<Expr>, distinct: bool, star: bool },
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column { qualifier: None, name: name.to_string() }
    }

    pub fn qcol(qualifier: &str, name: &str) -> Expr {
        Expr::Column { qualifier: Some(qualifier.to_string()), name: name.to_string() }
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary { op: BinOp::And, left: Box::new(self), right: Box::new(other) }
    }

    pub fn eq(self, other: Expr) -> Expr {
        Expr::Binary { op: BinOp::Eq, left: Box::new(self), right: Box::new(other) }
    }

    /// True if the expression contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, args, .. } => {
                is_aggregate_name(name) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            _ => false,
        }
    }

    /// Walk the expression tree, visiting every node.
    pub fn walk(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Count `?` parameters in the expression.
    pub fn param_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |e| {
            if matches!(e, Expr::Param(_)) {
                n += 1;
            }
        });
        n
    }
}

/// Whether a function name denotes an aggregate.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection_recurses() {
        let e = Expr::col("a").and(Expr::Function {
            name: "count".into(),
            args: vec![],
            distinct: false,
            star: true,
        });
        assert!(e.contains_aggregate());
        assert!(!Expr::col("a").eq(Expr::lit(1i64)).contains_aggregate());
    }

    #[test]
    fn binding_names() {
        let t = TableSource::Named { name: "Patient".into(), alias: Some("p".into()) };
        assert_eq!(t.binding_name(), "p");
        let t = TableSource::Named { name: "Patient".into(), alias: None };
        assert_eq!(t.binding_name(), "Patient");
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::InList {
            expr: Box::new(Expr::col("x")),
            list: vec![Expr::lit(1i64), Expr::Param(0)],
            negated: false,
        };
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 4);
        assert_eq!(e.param_count(), 1);
    }
}
