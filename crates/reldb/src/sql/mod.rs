//! SQL front end: lexer, AST, parser, evaluation, planning, and execution.

pub mod ast;
pub mod eval;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod planner;
pub mod render;
