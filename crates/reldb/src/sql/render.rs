//! Render catalog objects and query ASTs back to parseable SQL.
//!
//! The durability layer persists DDL as SQL text: a `CREATE TABLE` or
//! `CREATE VIEW` in the WAL (or a view in a checkpoint) is replayed by
//! handing the rendered statement straight back to the parser. The
//! renderer therefore only has to be *round-trip faithful* for what our
//! own dialect can parse — which it is by construction, since it renders
//! the very AST the parser produced.

use crate::index::IndexDef;
use crate::schema::TableSchema;
use crate::value::Value;

use super::ast::{
    BinOp, Expr, FromItem, Join, OrderItem, SelectItem, SelectStmt, TableSource, UnaryOp,
};

/// `CREATE TABLE` for a schema, with all constraints spelled table-level.
pub fn create_table_sql(schema: &TableSchema) -> String {
    let mut parts: Vec<String> = schema
        .columns
        .iter()
        .map(|c| {
            let mut s = format!("{} {}", c.name, c.data_type.sql_name());
            if !c.nullable {
                s.push_str(" NOT NULL");
            }
            s
        })
        .collect();
    if let Some(pk) = &schema.primary_key {
        parts.push(format!("PRIMARY KEY ({})", pk.join(", ")));
    }
    for uq in &schema.uniques {
        parts.push(format!("UNIQUE ({})", uq.join(", ")));
    }
    for fk in &schema.foreign_keys {
        parts.push(format!(
            "FOREIGN KEY ({}) REFERENCES {} ({})",
            fk.columns.join(", "),
            fk.ref_table,
            fk.ref_columns.join(", ")
        ));
    }
    format!("CREATE TABLE {} ({})", schema.name, parts.join(", "))
}

/// `CREATE [UNIQUE] INDEX` for an index definition.
pub fn create_index_sql(table: &str, def: &IndexDef) -> String {
    format!(
        "CREATE {}INDEX {} ON {} ({})",
        if def.unique { "UNIQUE " } else { "" },
        def.name,
        table,
        def.columns.join(", ")
    )
}

/// `CREATE VIEW name AS <select>`.
pub fn create_view_sql(name: &str, query: &SelectStmt) -> String {
    format!("CREATE VIEW {} AS {}", name, select_sql(query))
}

/// Render a SELECT back to SQL.
pub fn select_sql(q: &SelectStmt) -> String {
    let mut out = String::from("SELECT ");
    if q.distinct {
        out.push_str("DISTINCT ");
    }
    let items: Vec<String> = q.items.iter().map(select_item_sql).collect();
    out.push_str(&items.join(", "));
    if !q.from.is_empty() {
        out.push_str(" FROM ");
        let from: Vec<String> = q.from.iter().map(from_item_sql).collect();
        out.push_str(&from.join(", "));
    }
    if let Some(w) = &q.where_clause {
        out.push_str(" WHERE ");
        out.push_str(&expr_sql(w));
    }
    if !q.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        let keys: Vec<String> = q.group_by.iter().map(expr_sql).collect();
        out.push_str(&keys.join(", "));
    }
    if let Some(h) = &q.having {
        out.push_str(" HAVING ");
        out.push_str(&expr_sql(h));
    }
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        let keys: Vec<String> = q.order_by.iter().map(order_item_sql).collect();
        out.push_str(&keys.join(", "));
    }
    if let Some(n) = q.limit {
        out.push_str(&format!(" LIMIT {n}"));
    }
    out
}

fn select_item_sql(item: &SelectItem) -> String {
    match item {
        SelectItem::Wildcard => "*".into(),
        SelectItem::QualifiedWildcard(q) => format!("{q}.*"),
        SelectItem::Expr { expr, alias: Some(a) } => format!("{} AS {a}", expr_sql(expr)),
        SelectItem::Expr { expr, alias: None } => expr_sql(expr),
    }
}

fn from_item_sql(item: &FromItem) -> String {
    let mut out = table_source_sql(&item.source);
    for j in &item.joins {
        out.push_str(&join_sql(j));
    }
    out
}

fn join_sql(j: &Join) -> String {
    format!(
        " {} JOIN {} ON {}",
        if j.left_outer { "LEFT" } else { "INNER" },
        table_source_sql(&j.source),
        expr_sql(&j.on)
    )
}

fn table_source_sql(src: &TableSource) -> String {
    match src {
        TableSource::Named { name, alias: Some(a) } => format!("{name} AS {a}"),
        TableSource::Named { name, alias: None } => name.clone(),
        TableSource::Function { name, args, alias, columns } => {
            let args: Vec<String> = args.iter().map(expr_sql).collect();
            let cols: Vec<String> =
                columns.iter().map(|(c, t)| format!("{c} {}", t.sql_name())).collect();
            format!("TABLE({name}({})) AS {alias} ({})", args.join(", "), cols.join(", "))
        }
        TableSource::Subquery { query, alias } => {
            format!("({}) AS {alias}", select_sql(query))
        }
    }
}

fn order_item_sql(item: &OrderItem) -> String {
    format!("{}{}", expr_sql(&item.expr), if item.desc { " DESC" } else { "" })
}

fn bin_op_sql(op: BinOp) -> &'static str {
    match op {
        BinOp::Eq => "=",
        BinOp::NotEq => "<>",
        BinOp::Lt => "<",
        BinOp::LtEq => "<=",
        BinOp::Gt => ">",
        BinOp::GtEq => ">=",
        BinOp::And => "AND",
        BinOp::Or => "OR",
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
    }
}

/// SQL literal for a value (`'` doubled inside strings, the one escape
/// the lexer understands).
pub fn value_sql(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Bigint(i) => i.to_string(),
        Value::Double(d) => {
            // Non-finite doubles have no literal of their own but must
            // still re-parse (a checkpointed view containing one would
            // otherwise make the data directory unopenable): `1e999`
            // overflows to infinity in the lexer, and inf - inf gives NaN
            // back at evaluation.
            if d.is_nan() {
                "(1e999 - 1e999)".into()
            } else if d.is_infinite() {
                if *d > 0.0 { "1e999" } else { "-1e999" }.into()
            } else {
                // Keep a decimal point so the literal re-parses as a double.
                let s = d.to_string();
                if s.contains('.') || s.contains('e') {
                    s
                } else {
                    format!("{s}.0")
                }
            }
        }
        Value::Varchar(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Boolean(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
    }
}

/// Render an expression, fully parenthesized where nesting matters so the
/// round trip never re-associates.
pub fn expr_sql(e: &Expr) -> String {
    match e {
        Expr::Column { qualifier: Some(q), name } => format!("{q}.{name}"),
        Expr::Column { qualifier: None, name } => name.clone(),
        Expr::Literal(v) => value_sql(v),
        Expr::Param(_) => "?".into(),
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => format!("(NOT {})", expr_sql(expr)),
            UnaryOp::Neg => format!("(-{})", expr_sql(expr)),
        },
        Expr::Binary { op, left, right } => {
            format!("({} {} {})", expr_sql(left), bin_op_sql(*op), expr_sql(right))
        }
        Expr::InList { expr, list, negated } => {
            let items: Vec<String> = list.iter().map(expr_sql).collect();
            format!(
                "({} {}IN ({}))",
                expr_sql(expr),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        Expr::IsNull { expr, negated } => {
            format!("({} IS {}NULL)", expr_sql(expr), if *negated { "NOT " } else { "" })
        }
        Expr::Like { expr, pattern, negated } => {
            format!(
                "({} {}LIKE {})",
                expr_sql(expr),
                if *negated { "NOT " } else { "" },
                expr_sql(pattern)
            )
        }
        Expr::Function { name, args, distinct, star } => {
            if *star {
                return format!("{name}(*)");
            }
            let args: Vec<String> = args.iter().map(expr_sql).collect();
            format!("{name}({}{})", if *distinct { "DISTINCT " } else { "" }, args.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_statement;
    use crate::sql::ast::Stmt;

    fn round_trip_select(sql: &str) {
        let Stmt::Select(q1) = parse_statement(sql).unwrap() else {
            panic!("not a select: {sql}");
        };
        let rendered = select_sql(&q1);
        let Stmt::Select(q2) = parse_statement(&rendered).unwrap() else {
            panic!("render did not re-parse as select: {rendered}");
        };
        assert_eq!(q1, q2, "round trip changed the AST for {sql} → {rendered}");
    }

    #[test]
    fn selects_round_trip_through_render() {
        round_trip_select("SELECT * FROM T");
        round_trip_select("SELECT DISTINCT a.x AS y, COUNT(*) FROM T AS a WHERE a.x > 1 AND a.y IS NOT NULL GROUP BY a.x HAVING COUNT(*) > 2 ORDER BY y DESC LIMIT 7");
        round_trip_select(
            "SELECT p.name FROM Patient AS p LEFT JOIN Visit AS v ON p.id = v.pid WHERE v.kind IN ('er', 'checkup') OR p.name LIKE 'Jo%'",
        );
        round_trip_select("SELECT x FROM (SELECT a + 1 AS x FROM T) AS s WHERE NOT x = 3");
        round_trip_select("SELECT SUM(DISTINCT b) FROM T WHERE c = 'it''s'");
    }

    /// A view whose AST holds a non-finite literal must still render to
    /// SQL the parser accepts — a checkpoint that stored `inf`/`NaN` text
    /// would make the whole data directory unopenable on restore.
    #[test]
    fn non_finite_doubles_render_parseably() {
        // `1e999` overflows to infinity in the lexer, so the round trip
        // lands on the identical literal.
        round_trip_select("SELECT x FROM T WHERE x < 1e999");
        let item_expr = |sql: String| -> Expr {
            let Ok(Stmt::Select(q)) = parse_statement(&sql) else {
                panic!("rendered non-finite double did not re-parse: {sql}");
            };
            let SelectItem::Expr { expr, .. } = q.items.into_iter().next().unwrap() else {
                panic!("not an expression item: {sql}");
            };
            expr
        };
        let select = |v: f64| format!("SELECT {} FROM T", value_sql(&Value::Double(v)));
        assert!(matches!(
            item_expr(select(f64::INFINITY)),
            Expr::Literal(Value::Double(d)) if d == f64::INFINITY
        ));
        // The parser folds the sign into the literal.
        assert!(matches!(
            item_expr(select(f64::NEG_INFINITY)),
            Expr::Literal(Value::Double(d)) if d == f64::NEG_INFINITY
        ));
        // NaN has no literal; its rendering is inf - inf, which evaluates
        // back to NaN.
        assert!(matches!(
            item_expr(select(f64::NAN)),
            Expr::Binary { op: BinOp::Sub, .. }
        ));
    }

    #[test]
    fn create_table_round_trips_schema() {
        let sql = "CREATE TABLE Edge (src BIGINT NOT NULL, dst BIGINT, note VARCHAR, \
                   PRIMARY KEY (src, dst), UNIQUE (note), \
                   FOREIGN KEY (src) REFERENCES Node (nid))";
        let Stmt::CreateTable { schema, .. } = parse_statement(sql).unwrap() else {
            panic!("not create table");
        };
        let rendered = create_table_sql(&schema);
        let Stmt::CreateTable { schema: schema2, .. } = parse_statement(&rendered).unwrap() else {
            panic!("render did not re-parse: {rendered}");
        };
        assert_eq!(schema, schema2);
    }

    #[test]
    fn create_index_renders_parseably() {
        let def = IndexDef {
            name: "ix_edge_src".into(),
            columns: vec!["src".into(), "dst".into()],
            unique: true,
        };
        let sql = create_index_sql("Edge", &def);
        let Stmt::CreateIndex { name, table, columns, unique } =
            parse_statement(&sql).unwrap()
        else {
            panic!("not create index: {sql}");
        };
        assert_eq!(name, "ix_edge_src");
        assert_eq!(table, "Edge");
        assert_eq!(columns, vec!["src".to_string(), "dst".to_string()]);
        assert!(unique);
    }
}
