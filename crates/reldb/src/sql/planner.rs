//! Access path selection.
//!
//! Given a base-table scan plus the WHERE conjuncts that reference it, pick
//! an index probe when one applies. The SQL that Db2 Graph generates is
//! dominated by `id = ?` point probes and `src_v IN (...)` list probes, so
//! these two access paths are what make graph traversal fast; the paper's
//! SQL Dialect module suggests exactly these indexes (Section 6.1).

use std::ops::Bound;

use crate::sql::ast::{BinOp, Expr};
use crate::storage::TableData;
use crate::value::Value;

/// A chosen way to produce candidate rows from a table.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Scan every live row.
    FullScan,
    /// Probe an index for one exact key.
    IndexEq { index: String, key: Vec<Value> },
    /// Probe an index for each key in a list (IN-list).
    IndexIn { index: String, keys: Vec<Vec<Value>> },
    /// Range scan on the leading column of an index.
    IndexRange {
        index: String,
        low: Bound<Value>,
        high: Bound<Value>,
    },
}

impl AccessPath {
    /// Human-readable form for EXPLAIN output.
    pub fn describe(&self, table: &str) -> String {
        match self {
            AccessPath::FullScan => format!("SCAN {table}"),
            AccessPath::IndexEq { index, key } => {
                let keys: Vec<String> = key.iter().map(Value::to_sql_literal).collect();
                format!("INDEX-EQ {table} via {index} key=({})", keys.join(", "))
            }
            AccessPath::IndexIn { index, keys } => {
                format!("INDEX-IN {table} via {index} ({} keys)", keys.len())
            }
            AccessPath::IndexRange { index, .. } => format!("INDEX-RANGE {table} via {index}"),
        }
    }
}

/// Split an expression into its top-level AND conjuncts.
pub fn split_conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary { op: BinOp::And, left, right } = e {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(expr, &mut out);
    out
}

/// A simple predicate on one column of the scanned binding:
/// `col <op> literal`, `col IN (literals)`.
#[derive(Debug, Clone)]
pub enum SimplePred {
    Eq(String, Value),
    In(String, Vec<Value>),
    Cmp(String, BinOp, Value),
}

impl SimplePred {
    pub fn column(&self) -> &str {
        match self {
            SimplePred::Eq(c, _) | SimplePred::In(c, _) | SimplePred::Cmp(c, _, _) => c,
        }
    }
}

/// Try to view a conjunct as a simple single-column predicate over the
/// given binding (alias) of a table with the given columns.
pub fn as_simple_pred(
    expr: &Expr,
    binding: &str,
    has_column: &dyn Fn(&str) -> bool,
) -> Option<SimplePred> {
    let col_of = |e: &Expr| -> Option<String> {
        if let Expr::Column { qualifier, name } = e {
            let qual_ok = qualifier
                .as_ref()
                .map(|q| q.eq_ignore_ascii_case(binding))
                .unwrap_or(true);
            if qual_ok && has_column(name) {
                return Some(name.clone());
            }
        }
        None
    };
    let lit_of = |e: &Expr| -> Option<Value> {
        if let Expr::Literal(v) = e {
            Some(v.clone())
        } else {
            None
        }
    };
    match expr {
        Expr::Binary { op, left, right }
            if matches!(op, BinOp::Eq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq) =>
        {
            if let (Some(c), Some(v)) = (col_of(left), lit_of(right)) {
                return Some(match op {
                    BinOp::Eq => SimplePred::Eq(c, v),
                    other => SimplePred::Cmp(c, *other, v),
                });
            }
            // Flipped: literal <op> column.
            if let (Some(v), Some(c)) = (lit_of(left), col_of(right)) {
                let flipped = match op {
                    BinOp::Eq => return Some(SimplePred::Eq(c, v)),
                    BinOp::Lt => BinOp::Gt,
                    BinOp::LtEq => BinOp::GtEq,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::GtEq => BinOp::LtEq,
                    _ => return None,
                };
                return Some(SimplePred::Cmp(c, flipped, v));
            }
            None
        }
        Expr::InList { expr, list, negated: false } => {
            let c = col_of(expr)?;
            let vals: Option<Vec<Value>> = list.iter().map(lit_of).collect();
            Some(SimplePred::In(c, vals?))
        }
        _ => None,
    }
}

/// Choose the best access path for a table given the simple predicates that
/// apply to it. Preference order: unique point probe, point probe, IN-list
/// probe, range scan, full scan.
pub fn choose_access_path(data: &TableData, preds: &[SimplePred]) -> AccessPath {
    // 1. Exact multi/single-column equality matching a whole index.
    let eq_preds: Vec<&SimplePred> =
        preds.iter().filter(|p| matches!(p, SimplePred::Eq(_, _))).collect();
    let mut best_eq: Option<(bool, AccessPath)> = None;
    for ix in data.indexes() {
        let mut key = Vec::with_capacity(ix.def.columns.len());
        let mut ok = true;
        for col in &ix.def.columns {
            match eq_preds.iter().find_map(|p| match p {
                SimplePred::Eq(c, v) if c.eq_ignore_ascii_case(col) => Some(v.clone()),
                _ => None,
            }) {
                Some(v) => key.push(v),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            let path = AccessPath::IndexEq { index: ix.def.name.clone(), key };
            match &best_eq {
                Some((best_unique, _)) if *best_unique => {}
                _ => best_eq = Some((ix.def.unique, path)),
            }
            if ix.def.unique {
                // Can't beat a unique point probe.
                return best_eq.unwrap().1;
            }
        }
    }
    if let Some((_, path)) = best_eq {
        return path;
    }
    // 2. IN-list probe on a single-column index.
    for p in preds {
        if let SimplePred::In(col, vals) = p {
            if let Some(ix) = data.find_index(std::slice::from_ref(col)) {
                return AccessPath::IndexIn {
                    index: ix.def.name.clone(),
                    keys: vals.iter().map(|v| vec![v.clone()]).collect(),
                };
            }
        }
    }
    // 3. Range scan on the leading column of an index; merge all range
    //    predicates on the same column.
    for p in preds {
        if let SimplePred::Cmp(col, _, _) = p {
            if let Some(ix) = data.find_index_on(col) {
                let mut low: Bound<Value> = Bound::Unbounded;
                let mut high: Bound<Value> = Bound::Unbounded;
                for q in preds {
                    if let SimplePred::Cmp(c, op, v) = q {
                        if c.eq_ignore_ascii_case(col) {
                            match op {
                                BinOp::Gt => low = tighten_low(low, Bound::Excluded(v.clone())),
                                BinOp::GtEq => low = tighten_low(low, Bound::Included(v.clone())),
                                BinOp::Lt => high = tighten_high(high, Bound::Excluded(v.clone())),
                                BinOp::LtEq => high = tighten_high(high, Bound::Included(v.clone())),
                                _ => {}
                            }
                        }
                    }
                }
                return AccessPath::IndexRange { index: ix.def.name.clone(), low, high };
            }
        }
    }
    AccessPath::FullScan
}

fn bound_value(b: &Bound<Value>) -> Option<&Value> {
    match b {
        Bound::Included(v) | Bound::Excluded(v) => Some(v),
        Bound::Unbounded => None,
    }
}

fn tighten_low(cur: Bound<Value>, new: Bound<Value>) -> Bound<Value> {
    match (bound_value(&cur), bound_value(&new)) {
        (None, _) => new,
        (_, None) => cur,
        (Some(a), Some(b)) => {
            if b.total_cmp(a).is_gt() {
                new
            } else {
                cur
            }
        }
    }
}

fn tighten_high(cur: Bound<Value>, new: Bound<Value>) -> Bound<Value> {
    match (bound_value(&cur), bound_value(&new)) {
        (None, _) => new,
        (_, None) => cur,
        (Some(a), Some(b)) => {
            if b.total_cmp(a).is_lt() {
                new
            } else {
                cur
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::storage::Table;
    use crate::value::DataType;

    fn table_with_index() -> Table {
        let t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", DataType::Bigint).not_null(),
                    ColumnDef::new("src", DataType::Bigint),
                    ColumnDef::new("name", DataType::Varchar),
                ],
            )
            .with_primary_key(vec!["id"]),
        )
        .unwrap();
        t.create_index(crate::index::IndexDef {
            name: "ix_src".into(),
            columns: vec!["src".into()],
            unique: false,
        })
        .unwrap();
        t
    }

    #[test]
    fn split_conjuncts_flattens_ands() {
        let e = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::col("b").eq(Expr::lit(2i64)).and(Expr::col("c").eq(Expr::lit(3i64))));
        assert_eq!(split_conjuncts(&e).len(), 3);
    }

    #[test]
    fn simple_pred_extraction() {
        let has = |c: &str| matches!(c.to_ascii_lowercase().as_str(), "id" | "src" | "name");
        let e = Expr::qcol("t", "id").eq(Expr::lit(5i64));
        assert!(matches!(as_simple_pred(&e, "t", &has), Some(SimplePred::Eq(c, _)) if c == "id"));
        // Wrong binding is rejected.
        assert!(as_simple_pred(&e, "other", &has).is_none());
        // Flipped comparison normalizes direction.
        let e = Expr::Binary {
            op: BinOp::Lt,
            left: Box::new(Expr::lit(3i64)),
            right: Box::new(Expr::col("id")),
        };
        match as_simple_pred(&e, "t", &has) {
            Some(SimplePred::Cmp(c, BinOp::Gt, Value::Bigint(3))) => assert_eq!(c, "id"),
            other => panic!("{other:?}"),
        }
        // IN list of literals.
        let e = Expr::InList {
            expr: Box::new(Expr::col("src")),
            list: vec![Expr::lit(1i64), Expr::lit(2i64)],
            negated: false,
        };
        assert!(matches!(as_simple_pred(&e, "t", &has), Some(SimplePred::In(_, v)) if v.len() == 2));
        // Non-literal member defeats extraction.
        let e = Expr::InList {
            expr: Box::new(Expr::col("src")),
            list: vec![Expr::col("id")],
            negated: false,
        };
        assert!(as_simple_pred(&e, "t", &has).is_none());
    }

    #[test]
    fn chooses_unique_point_probe_first() {
        let t = table_with_index();
        let d = t.read();
        let preds = vec![
            SimplePred::In("src".into(), vec![Value::Bigint(1)]),
            SimplePred::Eq("id".into(), Value::Bigint(9)),
        ];
        match choose_access_path(&d, &preds) {
            AccessPath::IndexEq { index, key } => {
                assert_eq!(index, "pk_t");
                assert_eq!(key, vec![Value::Bigint(9)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chooses_in_list_then_range_then_scan() {
        let t = table_with_index();
        let d = t.read();
        let preds = vec![SimplePred::In("src".into(), vec![Value::Bigint(1), Value::Bigint(2)])];
        assert!(matches!(choose_access_path(&d, &preds), AccessPath::IndexIn { keys, .. } if keys.len() == 2));
        let preds = vec![
            SimplePred::Cmp("src".into(), BinOp::Gt, Value::Bigint(5)),
            SimplePred::Cmp("src".into(), BinOp::LtEq, Value::Bigint(10)),
        ];
        match choose_access_path(&d, &preds) {
            AccessPath::IndexRange { low, high, .. } => {
                assert_eq!(low, Bound::Excluded(Value::Bigint(5)));
                assert_eq!(high, Bound::Included(Value::Bigint(10)));
            }
            other => panic!("{other:?}"),
        }
        let preds = vec![SimplePred::Eq("name".into(), Value::Varchar("x".into()))];
        assert_eq!(choose_access_path(&d, &preds), AccessPath::FullScan);
    }
}
