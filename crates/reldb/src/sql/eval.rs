//! Scalar expression evaluation.

use crate::error::{DbError, DbResult};
use crate::row::Row;
use crate::sql::ast::{BinOp, Expr, UnaryOp};
use crate::value::Value;

/// A reference to a column within an intermediate relation: the binding
/// qualifier (table alias) plus the column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    pub qualifier: Option<String>,
    pub name: String,
}

impl ColRef {
    pub fn new(qualifier: Option<&str>, name: &str) -> Self {
        ColRef { qualifier: qualifier.map(str::to_string), name: name.to_string() }
    }
}

/// Resolve a column reference against a column list; returns its position.
pub fn resolve_column(
    cols: &[ColRef],
    qualifier: &Option<String>,
    name: &str,
) -> DbResult<usize> {
    let mut found: Option<usize> = None;
    for (i, c) in cols.iter().enumerate() {
        let name_matches = c.name.eq_ignore_ascii_case(name);
        let qual_matches = match (qualifier, &c.qualifier) {
            (Some(q), Some(cq)) => q.eq_ignore_ascii_case(cq),
            (Some(_), None) => false,
            (None, _) => true,
        };
        if name_matches && qual_matches {
            if found.is_some() && qualifier.is_none() {
                return Err(DbError::Execution(format!("ambiguous column reference '{name}'")));
            }
            if found.is_none() {
                found = Some(i);
            }
        }
    }
    found.ok_or_else(|| {
        let q = qualifier.as_deref().map(|q| format!("{q}.")).unwrap_or_default();
        DbError::Execution(format!("column '{q}{name}' not found"))
    })
}

/// Evaluation environment: a row laid out against a column list.
pub struct RowEnv<'a> {
    pub cols: &'a [ColRef],
    pub row: &'a Row,
}

impl RowEnv<'_> {
    fn get(&self, qualifier: &Option<String>, name: &str) -> DbResult<Value> {
        let i = resolve_column(self.cols, qualifier, name)?;
        Ok(self.row[i].clone())
    }
}

/// Evaluate a scalar expression against a row. Aggregate function calls are
/// rejected here — the executor resolves them before projection.
pub fn eval(expr: &Expr, env: &RowEnv<'_>) -> DbResult<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { qualifier, name } => env.get(qualifier, name),
        Expr::Param(i) => Err(DbError::Execution(format!("unbound parameter ?{i}"))),
        Expr::Unary { op, expr } => {
            let v = eval(expr, env)?;
            match op {
                UnaryOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Boolean(b) => Ok(Value::Boolean(!b)),
                    other => Err(DbError::Type(format!("NOT applied to non-boolean {other}"))),
                },
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Bigint(x) => Ok(Value::Bigint(-x)),
                    Value::Double(x) => Ok(Value::Double(-x)),
                    other => Err(DbError::Type(format!("negation of non-numeric {other}"))),
                },
            }
        }
        Expr::Binary { op, left, right } => eval_binary(*op, left, right, env),
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, env)?;
                match v.sql_eq(&iv) {
                    Some(true) => return Ok(Value::Boolean(!negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Boolean(*negated))
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, env)?;
            Ok(Value::Boolean(v.is_null() != *negated))
        }
        Expr::Like { expr, pattern, negated } => {
            let v = eval(expr, env)?;
            let p = eval(pattern, env)?;
            match (&v, &p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Varchar(s), Value::Varchar(pat)) => {
                    Ok(Value::Boolean(like_match(s, pat) != *negated))
                }
                _ => Err(DbError::Type("LIKE requires string operands".into())),
            }
        }
        Expr::Function { name, args, .. } => eval_scalar_function(name, args, env),
    }
}

fn eval_binary(op: BinOp, left: &Expr, right: &Expr, env: &RowEnv<'_>) -> DbResult<Value> {
    match op {
        BinOp::And => {
            // SQL three-valued AND with short circuit on FALSE.
            let l = eval(left, env)?;
            if l == Value::Boolean(false) {
                return Ok(Value::Boolean(false));
            }
            let r = eval(right, env)?;
            match (truth(&l), truth(&r)) {
                (Some(false), _) | (_, Some(false)) => Ok(Value::Boolean(false)),
                (Some(true), Some(true)) => Ok(Value::Boolean(true)),
                _ => Ok(Value::Null),
            }
        }
        BinOp::Or => {
            let l = eval(left, env)?;
            if l == Value::Boolean(true) {
                return Ok(Value::Boolean(true));
            }
            let r = eval(right, env)?;
            match (truth(&l), truth(&r)) {
                (Some(true), _) | (_, Some(true)) => Ok(Value::Boolean(true)),
                (Some(false), Some(false)) => Ok(Value::Boolean(false)),
                _ => Ok(Value::Null),
            }
        }
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            let l = eval(left, env)?;
            let r = eval(right, env)?;
            let ord = match l.sql_cmp(&r) {
                Some(o) => o,
                None => return Ok(Value::Null),
            };
            let b = match op {
                BinOp::Eq => ord.is_eq(),
                BinOp::NotEq => ord.is_ne(),
                BinOp::Lt => ord.is_lt(),
                BinOp::LtEq => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::GtEq => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Boolean(b))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            let l = eval(left, env)?;
            let r = eval(right, env)?;
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic when both sides are BIGINT (except division
            // by zero errors; integer division truncates like SQL).
            if let (Value::Bigint(a), Value::Bigint(b)) = (&l, &r) {
                return match op {
                    BinOp::Add => Ok(Value::Bigint(a.wrapping_add(*b))),
                    BinOp::Sub => Ok(Value::Bigint(a.wrapping_sub(*b))),
                    BinOp::Mul => Ok(Value::Bigint(a.wrapping_mul(*b))),
                    BinOp::Div => {
                        if *b == 0 {
                            Err(DbError::Execution("division by zero".into()))
                        } else {
                            Ok(Value::Bigint(a / b))
                        }
                    }
                    _ => unreachable!(),
                };
            }
            let a = l.as_f64()?;
            let b = r.as_f64()?;
            match op {
                BinOp::Add => Ok(Value::Double(a + b)),
                BinOp::Sub => Ok(Value::Double(a - b)),
                BinOp::Mul => Ok(Value::Double(a * b)),
                BinOp::Div => {
                    if b == 0.0 {
                        Err(DbError::Execution("division by zero".into()))
                    } else {
                        Ok(Value::Double(a / b))
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

fn eval_scalar_function(name: &str, args: &[Expr], env: &RowEnv<'_>) -> DbResult<Value> {
    let upper = name.to_ascii_uppercase();
    let vals: Vec<Value> = args.iter().map(|a| eval(a, env)).collect::<DbResult<_>>()?;
    match upper.as_str() {
        "ABS" => match vals.first() {
            Some(Value::Bigint(v)) => Ok(Value::Bigint(v.abs())),
            Some(Value::Double(v)) => Ok(Value::Double(v.abs())),
            Some(Value::Null) => Ok(Value::Null),
            _ => Err(DbError::Type("ABS requires one numeric argument".into())),
        },
        "LOWER" => match vals.first() {
            Some(Value::Varchar(s)) => Ok(Value::Varchar(s.to_lowercase())),
            Some(Value::Null) => Ok(Value::Null),
            _ => Err(DbError::Type("LOWER requires one string argument".into())),
        },
        "UPPER" => match vals.first() {
            Some(Value::Varchar(s)) => Ok(Value::Varchar(s.to_uppercase())),
            Some(Value::Null) => Ok(Value::Null),
            _ => Err(DbError::Type("UPPER requires one string argument".into())),
        },
        "LENGTH" => match vals.first() {
            Some(Value::Varchar(s)) => Ok(Value::Bigint(s.chars().count() as i64)),
            Some(Value::Null) => Ok(Value::Null),
            _ => Err(DbError::Type("LENGTH requires one string argument".into())),
        },
        "CONCAT" => {
            let mut out = String::new();
            for v in &vals {
                if v.is_null() {
                    return Ok(Value::Null);
                }
                out.push_str(&v.to_string());
            }
            Ok(Value::Varchar(out))
        }
        "COALESCE" => {
            for v in vals {
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        other => Err(DbError::Unsupported(format!("scalar function '{other}'"))),
    }
}

/// SQL truth value of a value: `Some(bool)` or `None` for NULL/unknown.
pub fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Boolean(b) => Some(*b),
        Value::Null => None,
        // Any other type in a boolean position is an error surfaced earlier;
        // treat as unknown to be safe.
        _ => None,
    }
}

/// SQL LIKE matching: `%` matches any run, `_` matches one character.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Greedy expansion of % over every split point.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_cols() -> Vec<ColRef> {
        vec![ColRef::new(Some("t"), "a"), ColRef::new(Some("t"), "b"), ColRef::new(Some("u"), "a")]
    }

    fn row() -> Row {
        vec![Value::Bigint(5), Value::Varchar("hello".into()), Value::Bigint(7)]
    }

    #[test]
    fn column_resolution_and_ambiguity() {
        let cols = env_cols();
        assert_eq!(resolve_column(&cols, &Some("t".into()), "a").unwrap(), 0);
        assert_eq!(resolve_column(&cols, &Some("U".into()), "A").unwrap(), 2);
        assert_eq!(resolve_column(&cols, &None, "b").unwrap(), 1);
        assert!(resolve_column(&cols, &None, "a").is_err()); // ambiguous
        assert!(resolve_column(&cols, &Some("x".into()), "a").is_err());
    }

    #[test]
    fn arithmetic_and_types() {
        let cols = env_cols();
        let r = row();
        let env = RowEnv { cols: &cols, row: &r };
        let e = Expr::qcol("t", "a").eq(Expr::lit(5i64));
        assert_eq!(eval(&e, &env).unwrap(), Value::Boolean(true));
        let e = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::qcol("t", "a")),
            right: Box::new(Expr::lit(2.5)),
        };
        assert_eq!(eval(&e, &env).unwrap(), Value::Double(7.5));
        let div0 = Expr::Binary {
            op: BinOp::Div,
            left: Box::new(Expr::lit(1i64)),
            right: Box::new(Expr::lit(0i64)),
        };
        assert!(eval(&div0, &env).is_err());
    }

    #[test]
    fn three_valued_logic() {
        let cols = env_cols();
        let r = row();
        let env = RowEnv { cols: &cols, row: &r };
        // NULL AND FALSE = FALSE; NULL AND TRUE = NULL
        let null = Expr::Literal(Value::Null);
        let null_cmp = null.clone().eq(Expr::lit(1i64));
        let f = Expr::lit(1i64).eq(Expr::lit(2i64));
        let t = Expr::lit(1i64).eq(Expr::lit(1i64));
        let and_f = Expr::Binary {
            op: BinOp::And,
            left: Box::new(null_cmp.clone()),
            right: Box::new(f),
        };
        assert_eq!(eval(&and_f, &env).unwrap(), Value::Boolean(false));
        let and_t =
            Expr::Binary { op: BinOp::And, left: Box::new(null_cmp.clone()), right: Box::new(t.clone()) };
        assert_eq!(eval(&and_t, &env).unwrap(), Value::Null);
        let or_t = Expr::Binary { op: BinOp::Or, left: Box::new(null_cmp), right: Box::new(t) };
        assert_eq!(eval(&or_t, &env).unwrap(), Value::Boolean(true));
    }

    #[test]
    fn in_list_with_nulls() {
        let cols = env_cols();
        let r = row();
        let env = RowEnv { cols: &cols, row: &r };
        let e = Expr::InList {
            expr: Box::new(Expr::qcol("t", "a")),
            list: vec![Expr::lit(1i64), Expr::lit(5i64)],
            negated: false,
        };
        assert_eq!(eval(&e, &env).unwrap(), Value::Boolean(true));
        // 5 NOT IN (1, NULL) -> NULL (unknown)
        let e = Expr::InList {
            expr: Box::new(Expr::qcol("t", "a")),
            list: vec![Expr::lit(1i64), Expr::Literal(Value::Null)],
            negated: true,
        };
        assert_eq!(eval(&e, &env).unwrap(), Value::Null);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "h_llx"));
        assert!(!like_match("", "_"));
        assert!(like_match("", "%"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn scalar_functions() {
        let cols = env_cols();
        let r = row();
        let env = RowEnv { cols: &cols, row: &r };
        let f = |name: &str, args: Vec<Expr>| Expr::Function {
            name: name.into(),
            args,
            distinct: false,
            star: false,
        };
        assert_eq!(eval(&f("ABS", vec![Expr::lit(-3i64)]), &env).unwrap(), Value::Bigint(3));
        assert_eq!(
            eval(&f("UPPER", vec![Expr::qcol("t", "b")]), &env).unwrap(),
            Value::Varchar("HELLO".into())
        );
        assert_eq!(eval(&f("LENGTH", vec![Expr::qcol("t", "b")]), &env).unwrap(), Value::Bigint(5));
        assert_eq!(
            eval(&f("COALESCE", vec![Expr::Literal(Value::Null), Expr::lit(9i64)]), &env).unwrap(),
            Value::Bigint(9)
        );
        assert!(eval(&f("NOSUCH", vec![]), &env).is_err());
    }
}
