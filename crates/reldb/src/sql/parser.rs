//! Recursive-descent parser for the SQL dialect.

use crate::error::{DbError, DbResult};
use crate::schema::{ColumnDef, ForeignKey, TableSchema};
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Token};
use crate::value::{DataType, Value};

/// Parse a single SQL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> DbResult<Stmt> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0, params: 0 };
    let stmt = p.statement()?;
    p.eat(&Token::Semicolon);
    if !p.at_end() {
        return Err(DbError::Parse(format!("trailing tokens after statement: {:?}", p.peek())));
    }
    Ok(stmt)
}

/// Parse a script of `;`-separated statements.
pub fn parse_script(sql: &str) -> DbResult<Vec<Stmt>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0, params: 0 };
    let mut out = Vec::new();
    while !p.at_end() {
        if p.eat(&Token::Semicolon) {
            continue;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> DbResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(DbError::Parse(format!("expected {:?}, found {:?}", t, self.peek())))
        }
    }

    /// True if the next token is the given keyword (case-insensitive).
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn peek_kw_at(&self, offset: usize, kw: &str) -> bool {
        matches!(self.tokens.get(self.pos + offset), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::Parse(format!("expected keyword {kw}, found {:?}", self.peek())))
        }
    }

    fn identifier(&mut self) -> DbResult<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(Token::QuotedIdent(s)) => Ok(s),
            other => Err(DbError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    // ---------------------------------------------------------------- stmts

    fn statement(&mut self) -> DbResult<Stmt> {
        if self.eat_kw("SELECT") {
            self.pos -= 1;
            return Ok(Stmt::Select(Box::new(self.select()?)));
        }
        if self.eat_kw("EXPLAIN") {
            let q = self.select()?;
            return Ok(Stmt::Explain(Box::new(q)));
        }
        if self.eat_kw("CREATE") {
            return self.create();
        }
        if self.eat_kw("DROP") {
            return self.drop();
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("BEGIN") {
            return Ok(Stmt::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Stmt::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            return Ok(Stmt::Rollback);
        }
        Err(DbError::Parse(format!("unexpected start of statement: {:?}", self.peek())))
    }

    fn create(&mut self) -> DbResult<Stmt> {
        let or_replace = if self.eat_kw("OR") {
            self.expect_kw("REPLACE")?;
            true
        } else {
            false
        };
        if self.eat_kw("TABLE") {
            let if_not_exists = if self.eat_kw("IF") {
                self.expect_kw("NOT")?;
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.identifier()?;
            let schema = self.table_body(name)?;
            return Ok(Stmt::CreateTable { schema, if_not_exists });
        }
        if self.eat_kw("VIEW") {
            let name = self.identifier()?;
            self.expect_kw("AS")?;
            self.expect_kw("SELECT")?;
            self.pos -= 1;
            let query = self.select()?;
            return Ok(Stmt::CreateView { name, query: Box::new(query), or_replace });
        }
        let unique = self.eat_kw("UNIQUE");
        if self.eat_kw("INDEX") {
            let name = self.identifier()?;
            self.expect_kw("ON")?;
            let table = self.identifier()?;
            self.expect(&Token::LParen)?;
            let mut columns = vec![self.identifier()?];
            while self.eat(&Token::Comma) {
                columns.push(self.identifier()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(Stmt::CreateIndex { name, table, columns, unique });
        }
        Err(DbError::Parse("expected TABLE, VIEW, or INDEX after CREATE".into()))
    }

    fn table_body(&mut self, name: String) -> DbResult<TableSchema> {
        self.expect(&Token::LParen)?;
        let mut schema = TableSchema::new(name, Vec::new());
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                self.expect(&Token::LParen)?;
                let mut cols = vec![self.identifier()?];
                while self.eat(&Token::Comma) {
                    cols.push(self.identifier()?);
                }
                self.expect(&Token::RParen)?;
                schema.primary_key = Some(cols);
            } else if self.eat_kw("FOREIGN") {
                self.expect_kw("KEY")?;
                self.expect(&Token::LParen)?;
                let mut cols = vec![self.identifier()?];
                while self.eat(&Token::Comma) {
                    cols.push(self.identifier()?);
                }
                self.expect(&Token::RParen)?;
                self.expect_kw("REFERENCES")?;
                let ref_table = self.identifier()?;
                self.expect(&Token::LParen)?;
                let mut ref_cols = vec![self.identifier()?];
                while self.eat(&Token::Comma) {
                    ref_cols.push(self.identifier()?);
                }
                self.expect(&Token::RParen)?;
                schema.foreign_keys.push(ForeignKey { columns: cols, ref_table, ref_columns: ref_cols });
            } else if self.eat_kw("UNIQUE") {
                self.expect(&Token::LParen)?;
                let mut cols = vec![self.identifier()?];
                while self.eat(&Token::Comma) {
                    cols.push(self.identifier()?);
                }
                self.expect(&Token::RParen)?;
                schema.uniques.push(cols);
            } else {
                // Column definition.
                let col_name = self.identifier()?;
                let ty_name = self.identifier()?;
                // Swallow optional length like VARCHAR(100).
                if self.eat(&Token::LParen) {
                    while !self.eat(&Token::RParen) {
                        self.next();
                    }
                }
                let data_type = DataType::parse(&ty_name)?;
                let mut col = ColumnDef::new(col_name.clone(), data_type);
                loop {
                    if self.eat_kw("NOT") {
                        self.expect_kw("NULL")?;
                        col = col.not_null();
                    } else if self.eat_kw("PRIMARY") {
                        self.expect_kw("KEY")?;
                        schema.primary_key = Some(vec![col_name.clone()]);
                        col = col.not_null();
                    } else if self.eat_kw("REFERENCES") {
                        let ref_table = self.identifier()?;
                        self.expect(&Token::LParen)?;
                        let ref_col = self.identifier()?;
                        self.expect(&Token::RParen)?;
                        schema.foreign_keys.push(ForeignKey {
                            columns: vec![col_name.clone()],
                            ref_table,
                            ref_columns: vec![ref_col],
                        });
                    } else if self.eat_kw("UNIQUE") {
                        schema.uniques.push(vec![col_name.clone()]);
                    } else {
                        break;
                    }
                }
                schema.columns.push(col);
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(schema)
    }

    fn drop(&mut self) -> DbResult<Stmt> {
        if self.eat_kw("TABLE") {
            let if_exists = if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.identifier()?;
            return Ok(Stmt::DropTable { name, if_exists });
        }
        if self.eat_kw("VIEW") {
            let name = self.identifier()?;
            return Ok(Stmt::DropView { name });
        }
        if self.eat_kw("INDEX") {
            let name = self.identifier()?;
            return Ok(Stmt::DropIndex { name });
        }
        Err(DbError::Parse("expected TABLE, VIEW, or INDEX after DROP".into()))
    }

    fn insert(&mut self) -> DbResult<Stmt> {
        self.expect_kw("INTO")?;
        let table = self.identifier()?;
        let columns = if self.eat(&Token::LParen) {
            let mut cols = vec![self.identifier()?];
            while self.eat(&Token::Comma) {
                cols.push(self.identifier()?);
            }
            self.expect(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut values = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = vec![self.expr()?];
            while self.eat(&Token::Comma) {
                row.push(self.expr()?);
            }
            self.expect(&Token::RParen)?;
            values.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Stmt::Insert { table, columns, values })
    }

    fn update(&mut self) -> DbResult<Stmt> {
        let table = self.identifier()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect(&Token::Eq)?;
            let e = self.expr()?;
            sets.push((col, e));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Stmt::Update { table, sets, where_clause })
    }

    fn delete(&mut self) -> DbResult<Stmt> {
        self.expect_kw("FROM")?;
        let table = self.identifier()?;
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Stmt::Delete { table, where_clause })
    }

    // --------------------------------------------------------------- select

    fn select(&mut self) -> DbResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let mut stmt = SelectStmt { distinct: self.eat_kw("DISTINCT"), ..Default::default() };
        loop {
            stmt.items.push(self.select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        if self.eat_kw("FROM") {
            loop {
                stmt.from.push(self.parse_from_item()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("WHERE") {
            stmt.where_clause = Some(self.expr()?);
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            stmt.having = Some(self.expr()?);
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                stmt.order_by.push(OrderItem { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") || self.eat_kw("FETCH") {
            // Accept both `LIMIT n` and Db2's `FETCH FIRST n ROWS ONLY`.
            self.eat_kw("FIRST");
            match self.next() {
                Some(Token::IntLit(n)) => stmt.limit = Some(n),
                other => return Err(DbError::Parse(format!("expected LIMIT count, got {other:?}"))),
            }
            self.eat_kw("ROWS");
            self.eat_kw("ROW");
            self.eat_kw("ONLY");
        }
        Ok(stmt)
    }

    fn select_item(&mut self) -> DbResult<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.*
        if let (Some(Token::Ident(q)), Some(Token::Dot), Some(Token::Star)) = (
            self.tokens.get(self.pos),
            self.tokens.get(self.pos + 1),
            self.tokens.get(self.pos + 2),
        ) {
            let q = q.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS")
            || matches!(self.peek(), Some(Token::Ident(s)) if !is_clause_keyword(s))
        {
            Some(self.identifier()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from_item(&mut self) -> DbResult<FromItem> {
        let source = self.table_source()?;
        let mut joins = Vec::new();
        loop {
            let left_outer = if self.peek_kw("LEFT") {
                self.eat_kw("LEFT");
                self.eat_kw("OUTER");
                true
            } else if self.peek_kw("INNER") && self.peek_kw_at(1, "JOIN") {
                self.eat_kw("INNER");
                false
            } else if self.peek_kw("JOIN") {
                false
            } else {
                break;
            };
            self.expect_kw("JOIN")?;
            let src = self.table_source()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            joins.push(Join { source: src, on, left_outer });
        }
        Ok(FromItem { source, joins })
    }

    fn table_source(&mut self) -> DbResult<TableSource> {
        // TABLE(fn(args)) AS alias (col type, ...)
        if self.peek_kw("TABLE") && self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
            self.eat_kw("TABLE");
            self.expect(&Token::LParen)?;
            let fname = self.identifier()?;
            self.expect(&Token::LParen)?;
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                args.push(self.expr()?);
                while self.eat(&Token::Comma) {
                    args.push(self.expr()?);
                }
            }
            self.expect(&Token::RParen)?;
            self.expect(&Token::RParen)?;
            self.eat_kw("AS");
            let alias = self.identifier()?;
            self.expect(&Token::LParen)?;
            let mut columns = Vec::new();
            loop {
                let cname = self.identifier()?;
                let tname = self.identifier()?;
                columns.push((cname, DataType::parse(&tname)?));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(TableSource::Function { name: fname, args, alias, columns });
        }
        // (SELECT ...) AS alias
        if self.peek() == Some(&Token::LParen) {
            self.expect(&Token::LParen)?;
            let query = self.select()?;
            self.expect(&Token::RParen)?;
            self.eat_kw("AS");
            let alias = self.identifier()?;
            return Ok(TableSource::Subquery { query: Box::new(query), alias });
        }
        let name = self.identifier()?;
        let alias = if self.eat_kw("AS")
            || matches!(self.peek(), Some(Token::Ident(s)) if !is_clause_keyword(s))
        {
            Some(self.identifier()?)
        } else {
            None
        };
        Ok(TableSource::Named { name, alias })
    }

    // ---------------------------------------------------------------- exprs

    fn expr(&mut self) -> DbResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary { op: BinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary { op: BinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> DbResult<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> DbResult<Expr> {
        let left = self.additive()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let right = self.additive()?;
            return Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        // IN / NOT IN / LIKE / NOT LIKE / IS [NOT] NULL / BETWEEN
        let negated = self.peek_kw("NOT")
            && (self.peek_kw_at(1, "IN") || self.peek_kw_at(1, "LIKE") || self.peek_kw_at(1, "BETWEEN"));
        if negated {
            self.eat_kw("NOT");
        }
        if self.eat_kw("IN") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                list.push(self.expr()?);
                while self.eat(&Token::Comma) {
                    list.push(self.expr()?);
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            let ge = Expr::Binary {
                op: BinOp::GtEq,
                left: Box::new(left.clone()),
                right: Box::new(low),
            };
            let le = Expr::Binary { op: BinOp::LtEq, left: Box::new(left), right: Box::new(high) };
            let both = ge.and(le);
            return Ok(if negated {
                Expr::Unary { op: UnaryOp::Not, expr: Box::new(both) }
            } else {
                both
            });
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        Ok(left)
    }

    fn additive(&mut self) -> DbResult<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let right = self.multiplicative()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> DbResult<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.next();
            let right = self.unary()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> DbResult<Expr> {
        if self.eat(&Token::Minus) {
            // i64::MIN's magnitude does not fit in a bare integer literal
            // (the lexer emits unsigned magnitudes), so fold the sign here
            // before `primary` range-checks the literal.
            if let Some(Token::IntLit(m)) = self.peek() {
                let m = *m;
                if m <= i64::MAX as u64 + 1 {
                    self.next();
                    return Ok(Expr::Literal(Value::Bigint((m as i64).wrapping_neg())));
                }
            }
            let inner = self.unary()?;
            // Fold negative literals directly.
            return Ok(match inner {
                Expr::Literal(Value::Bigint(v)) => Expr::Literal(Value::Bigint(-v)),
                Expr::Literal(Value::Double(v)) => Expr::Literal(Value::Double(-v)),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> DbResult<Expr> {
        match self.next() {
            Some(Token::IntLit(v)) => {
                let v = i64::try_from(v).map_err(|_| {
                    DbError::Parse(format!("integer literal {v} out of BIGINT range"))
                })?;
                Ok(Expr::Literal(Value::Bigint(v)))
            }
            Some(Token::FloatLit(v)) => Ok(Expr::Literal(Value::Double(v))),
            Some(Token::StringLit(s)) => Ok(Expr::Literal(Value::Varchar(s))),
            Some(Token::Param) => {
                let id = self.params;
                self.params += 1;
                Ok(Expr::Param(id))
            }
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::QuotedIdent(name)) => self.column_or_call(name, true),
            Some(Token::Ident(name)) => {
                let upper = name.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => Ok(Expr::Literal(Value::Null)),
                    "TRUE" => Ok(Expr::Literal(Value::Boolean(true))),
                    "FALSE" => Ok(Expr::Literal(Value::Boolean(false))),
                    _ => self.column_or_call(name, false),
                }
            }
            other => Err(DbError::Parse(format!("unexpected token in expression: {other:?}"))),
        }
    }

    fn column_or_call(&mut self, name: String, quoted: bool) -> DbResult<Expr> {
        if !quoted && self.peek() == Some(&Token::LParen) {
            self.next();
            // Function call.
            let distinct = self.eat_kw("DISTINCT");
            if self.eat(&Token::Star) {
                self.expect(&Token::RParen)?;
                return Ok(Expr::Function { name, args: vec![], distinct, star: true });
            }
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                args.push(self.expr()?);
                while self.eat(&Token::Comma) {
                    args.push(self.expr()?);
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::Function { name, args, distinct, star: false });
        }
        if self.eat(&Token::Dot) {
            let col = self.identifier()?;
            return Ok(Expr::Column { qualifier: Some(name), name: col });
        }
        Ok(Expr::Column { qualifier: None, name })
    }
}

/// Keywords that end an implicit alias position.
fn is_clause_keyword(s: &str) -> bool {
    matches!(
        s.to_ascii_uppercase().as_str(),
        "FROM"
            | "WHERE"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "LIMIT"
            | "FETCH"
            | "JOIN"
            | "INNER"
            | "LEFT"
            | "ON"
            | "AS"
            | "UNION"
            | "AND"
            | "OR"
            | "SET"
            | "VALUES"
            | "DESC"
            | "ASC"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table_with_constraints() {
        let stmt = parse_statement(
            "CREATE TABLE HasDisease (
                patientID BIGINT NOT NULL,
                diseaseID BIGINT NOT NULL,
                description VARCHAR(200),
                FOREIGN KEY (patientID) REFERENCES Patient(patientID),
                FOREIGN KEY (diseaseID) REFERENCES Disease(diseaseID)
            )",
        )
        .unwrap();
        match stmt {
            Stmt::CreateTable { schema, .. } => {
                assert_eq!(schema.name, "HasDisease");
                assert_eq!(schema.columns.len(), 3);
                assert_eq!(schema.foreign_keys.len(), 2);
                assert!(!schema.has_primary_key());
                assert!(!schema.columns[0].nullable);
            }
            _ => panic!("wrong stmt"),
        }
    }

    #[test]
    fn parse_inline_pk_and_references() {
        let stmt = parse_statement(
            "CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, parent BIGINT REFERENCES Disease(diseaseID))",
        )
        .unwrap();
        match stmt {
            Stmt::CreateTable { schema, .. } => {
                assert_eq!(schema.primary_key, Some(vec!["diseaseID".to_string()]));
                assert_eq!(schema.foreign_keys.len(), 1);
                assert_eq!(schema.foreign_keys[0].ref_table, "Disease");
            }
            _ => panic!("wrong stmt"),
        }
    }

    #[test]
    fn parse_select_with_everything() {
        let stmt = parse_statement(
            "SELECT p.patientID, COUNT(*) AS n FROM Patient AS p \
             JOIN HasDisease h ON p.patientID = h.patientID \
             WHERE p.name = 'Alice' AND h.diseaseID IN (1, 2, 3) \
             GROUP BY p.patientID HAVING COUNT(*) > 1 \
             ORDER BY n DESC LIMIT 10",
        )
        .unwrap();
        let q = match stmt {
            Stmt::Select(q) => q,
            _ => panic!("wrong stmt"),
        };
        assert_eq!(q.items.len(), 2);
        assert_eq!(q.from.len(), 1);
        assert_eq!(q.from[0].joins.len(), 1);
        assert!(q.where_clause.is_some());
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parse_table_function_in_from() {
        let stmt = parse_statement(
            "SELECT patientID FROM TABLE(graphQuery('gremlin', 'g.V()')) AS P (patientID BIGINT, subscriptionID BIGINT)",
        )
        .unwrap();
        let q = match stmt {
            Stmt::Select(q) => q,
            _ => panic!("wrong stmt"),
        };
        match &q.from[0].source {
            TableSource::Function { name, args, alias, columns } => {
                assert_eq!(name, "graphQuery");
                assert_eq!(args.len(), 2);
                assert_eq!(alias, "P");
                assert_eq!(columns.len(), 2);
                assert_eq!(columns[0].1, DataType::Bigint);
            }
            other => panic!("expected function source, got {other:?}"),
        }
    }

    #[test]
    fn parse_insert_update_delete() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").unwrap();
        match s {
            Stmt::Insert { table, columns, values } => {
                assert_eq!(table, "t");
                assert_eq!(columns.unwrap().len(), 2);
                assert_eq!(values.len(), 2);
            }
            _ => panic!(),
        }
        let s = parse_statement("UPDATE t SET a = a + 1, b = 'y' WHERE a < 5").unwrap();
        match s {
            Stmt::Update { sets, where_clause, .. } => {
                assert_eq!(sets.len(), 2);
                assert!(where_clause.is_some());
            }
            _ => panic!(),
        }
        let s = parse_statement("DELETE FROM t WHERE b IS NOT NULL").unwrap();
        match s {
            Stmt::Delete { where_clause: Some(Expr::IsNull { negated: true, .. }), .. } => {}
            other => panic!("bad delete: {other:?}"),
        }
    }

    #[test]
    fn parse_params_numbered_in_order() {
        let s = parse_statement("SELECT * FROM t WHERE a = ? AND b IN (?, ?)").unwrap();
        let q = match s {
            Stmt::Select(q) => q,
            _ => panic!(),
        };
        let mut params = Vec::new();
        q.where_clause.as_ref().unwrap().walk(&mut |e| {
            if let Expr::Param(i) = e {
                params.push(*i);
            }
        });
        assert_eq!(params, vec![0, 1, 2]);
    }

    #[test]
    fn parse_between_and_not_in() {
        let s = parse_statement("SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b NOT IN (1)").unwrap();
        assert!(matches!(s, Stmt::Select(_)));
        let s = parse_statement("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 5").unwrap();
        assert!(matches!(s, Stmt::Select(_)));
    }

    #[test]
    fn parse_operator_precedence() {
        let s = parse_statement("SELECT 1 + 2 * 3").unwrap();
        let q = match s {
            Stmt::Select(q) => q,
            _ => panic!(),
        };
        match &q.items[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("bad precedence: {other:?}"),
        }
    }

    #[test]
    fn parse_fetch_first_syntax() {
        let s = parse_statement("SELECT * FROM t FETCH FIRST 5 ROWS ONLY").unwrap();
        match s {
            Stmt::Select(q) => assert_eq!(q.limit, Some(5)),
            _ => panic!(),
        }
    }

    #[test]
    fn parse_script_multiple_statements() {
        let stmts = parse_script("CREATE TABLE t (a BIGINT); INSERT INTO t VALUES (1); SELECT * FROM t;").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn parse_subquery_in_from() {
        let s = parse_statement("SELECT x FROM (SELECT a AS x FROM t) AS sub WHERE x > 1").unwrap();
        let q = match s {
            Stmt::Select(q) => q,
            _ => panic!(),
        };
        assert!(matches!(&q.from[0].source, TableSource::Subquery { alias, .. } if alias == "sub"));
    }

    #[test]
    fn parse_explain_and_txn() {
        assert!(matches!(parse_statement("EXPLAIN SELECT * FROM t").unwrap(), Stmt::Explain(_)));
        assert!(matches!(parse_statement("BEGIN").unwrap(), Stmt::Begin));
        assert!(matches!(parse_statement("COMMIT").unwrap(), Stmt::Commit));
        assert!(matches!(parse_statement("ROLLBACK").unwrap(), Stmt::Rollback));
    }

    #[test]
    fn trailing_tokens_rejected() {
        // `SELECT 1 garbage` parses `garbage` as an implicit alias; truly
        // malformed trailing tokens must error.
        assert!(parse_statement("SELECT 1 FROM t extra, ,").is_err());
        assert!(parse_statement("SELECT 1 FROM t )").is_err());
    }
}
