//! Query execution.
//!
//! A straightforward materializing executor: FROM sources are resolved into
//! in-memory relations (using index access paths where the planner finds
//! one), joins are hash joins on equi-keys (falling back to nested loops),
//! then filtering, grouping/aggregation, projection, DISTINCT, ORDER BY and
//! LIMIT are applied in SQL order.

use std::collections::HashMap;

use crate::db::Database;
use crate::error::{DbError, DbResult};
use crate::row::{Row, RowSet};
use crate::sql::ast::*;
use crate::sql::eval::{eval, resolve_column, truth, ColRef, RowEnv};
use crate::sql::planner::{
    as_simple_pred, choose_access_path, split_conjuncts, AccessPath, SimplePred,
};
use crate::storage::{ReadView, Table};
use crate::value::Value;

/// An intermediate relation: qualified columns plus materialized rows.
#[derive(Debug, Clone)]
pub struct Relation {
    pub cols: Vec<ColRef>,
    pub rows: Vec<Row>,
}

impl Relation {
    fn empty() -> Relation {
        Relation { cols: Vec::new(), rows: Vec::new() }
    }
}

/// Execute a SELECT statement to completion. All table reads — including
/// those inside views, subqueries, and joins — go through `view`, so a
/// snapshot-pinned query can never mix two committed states.
pub fn execute_select(db: &Database, stmt: &SelectStmt, view: &ReadView) -> DbResult<RowSet> {
    // FROM-less SELECT: evaluate items once against an empty row.
    if stmt.from.is_empty() {
        let cols: Vec<ColRef> = Vec::new();
        let row: Row = Vec::new();
        let env = RowEnv { cols: &cols, row: &row };
        let mut names = Vec::new();
        let mut out = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            match item {
                SelectItem::Expr { expr, alias } => {
                    names.push(output_name(expr, alias, i));
                    out.push(eval(expr, &env)?);
                }
                _ => return Err(DbError::Execution("SELECT * requires FROM".into())),
            }
        }
        return Ok(RowSet::with_rows(names, vec![out]));
    }

    if let Some(n) = try_fast_count(db, stmt, view)? {
        let name = match &stmt.items[0] {
            SelectItem::Expr { expr, alias } => output_name(expr, alias, 0),
            _ => unreachable!("shape checked by try_fast_count"),
        };
        return Ok(RowSet::with_rows(vec![name], vec![vec![Value::Bigint(n)]]));
    }

    let rel = build_from(db, stmt, view)?;
    let rel = apply_where(rel, stmt.where_clause.as_ref())?;

    if is_aggregate_query(stmt) {
        project_aggregate(rel, stmt)
    } else {
        project_plain(rel, stmt)
    }
}

/// Fast path for `SELECT COUNT(*) FROM t WHERE <simple conjuncts>`: probe
/// the index and evaluate the remaining simple predicates against borrowed
/// rows — no row materialization at all. This is what keeps degree-count
/// queries (the overlay's `countLinks` SQL) cheap on high-degree vertices.
fn try_fast_count(db: &Database, stmt: &SelectStmt, view: &ReadView) -> DbResult<Option<i64>> {
    // Shape: COUNT(*) only, one base table, no other clauses.
    if stmt.items.len() != 1
        || stmt.distinct
        || !stmt.group_by.is_empty()
        || stmt.having.is_some()
        || !stmt.order_by.is_empty()
        || stmt.from.len() != 1
        || !stmt.from[0].joins.is_empty()
        || stmt.limit == Some(0)
    {
        return Ok(None);
    }
    match &stmt.items[0] {
        SelectItem::Expr { expr: Expr::Function { name, star: true, .. }, .. }
            if name.eq_ignore_ascii_case("COUNT") => {}
        _ => return Ok(None),
    }
    let TableSource::Named { name, .. } = &stmt.from[0].source else { return Ok(None) };
    let Some(table) = db.get_table(name) else { return Ok(None) };
    let binding = stmt.from[0].source.binding_name().to_string();

    // Every WHERE conjunct must be a simple single-column predicate.
    let mut preds: Vec<SimplePred> = Vec::new();
    if let Some(w) = &stmt.where_clause {
        let has_column = |c: &str| table.schema.column_index(c).is_some();
        for conj in split_conjuncts(w) {
            match as_simple_pred(conj, &binding, &has_column) {
                Some(p) => preds.push(p),
                None => return Ok(None),
            }
        }
    }
    let guard = table.read();
    let path = choose_access_path(&guard, &preds);
    let rids: Vec<crate::index::RowId> = match &path {
        AccessPath::FullScan => {
            db.stats().record_full_scan(guard.len() as u64);
            guard.iter_at(*view).map(|(rid, _)| rid).collect()
        }
        AccessPath::IndexEq { index, key } => {
            db.stats().record_index_probe(1);
            find_index(&guard, index)?.lookup_eq(key)
        }
        AccessPath::IndexIn { index, keys } => {
            db.stats().record_index_probe(keys.len() as u64);
            dedup_rids(find_index(&guard, index)?.lookup_in(keys))
        }
        AccessPath::IndexRange { index, low, high } => {
            db.stats().record_index_probe(1);
            let low = match low {
                std::ops::Bound::Included(v) => std::ops::Bound::Included(v),
                std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v),
                std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
            };
            let high = match high {
                std::ops::Bound::Included(v) => std::ops::Bound::Included(v),
                std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v),
                std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
            };
            dedup_rids(find_index(&guard, index)?.lookup_range(low, high))
        }
    };
    db.stats().record_rows_read(rids.len() as u64);
    // Re-check every predicate against borrowed rows (the probe may cover
    // only some conjuncts); no clones.
    let positions: Vec<(usize, &SimplePred)> = preds
        .iter()
        .map(|p| (table.schema.require_column(p.column()).expect("checked above"), p))
        .collect();
    let mut n = 0i64;
    for rid in rids {
        let Some(row) = guard.row_at(rid, view) else { continue };
        let ok = positions.iter().all(|(i, p)| {
            let v = &row[*i];
            match p {
                SimplePred::Eq(_, x) => v.sql_eq(x) == Some(true),
                SimplePred::In(_, xs) => xs.iter().any(|x| v.sql_eq(x) == Some(true)),
                SimplePred::Cmp(_, op, x) => {
                    let Some(ord) = v.sql_cmp(x) else { return false };
                    match op {
                        BinOp::Lt => ord.is_lt(),
                        BinOp::LtEq => ord.is_le(),
                        BinOp::Gt => ord.is_gt(),
                        BinOp::GtEq => ord.is_ge(),
                        _ => false,
                    }
                }
            }
        });
        if ok {
            n += 1;
        }
    }
    Ok(Some(n))
}

/// Render the plan that `execute_select` would use, for EXPLAIN.
pub fn explain_select(db: &Database, stmt: &SelectStmt) -> DbResult<Vec<String>> {
    let mut lines = Vec::new();
    for (i, fi) in stmt.from.iter().enumerate() {
        let pushdown = if i == 0 { stmt.where_clause.as_ref() } else { None };
        lines.push(describe_source(db, &fi.source, pushdown)?);
        for j in &fi.joins {
            let kind = if equi_pairs_possible(&j.on) { "HASH-JOIN" } else { "NESTED-LOOP-JOIN" };
            lines.push(format!("{kind} {}", describe_source(db, &j.source, None)?));
        }
        if i + 1 < stmt.from.len() {
            lines.push("CROSS/HASH COMBINE".to_string());
        }
    }
    if stmt.where_clause.is_some() {
        lines.push("FILTER".to_string());
    }
    if is_aggregate_query(stmt) {
        lines.push(format!("AGGREGATE ({} group keys)", stmt.group_by.len()));
    }
    if stmt.distinct {
        lines.push("DISTINCT".to_string());
    }
    if !stmt.order_by.is_empty() {
        lines.push(format!("SORT ({} keys)", stmt.order_by.len()));
    }
    if let Some(n) = stmt.limit {
        lines.push(format!("LIMIT {n}"));
    }
    Ok(lines)
}

fn equi_pairs_possible(on: &Expr) -> bool {
    split_conjuncts(on).iter().any(|c| {
        matches!(
            c,
            Expr::Binary { op: BinOp::Eq, left, right }
                if matches!(**left, Expr::Column { .. }) && matches!(**right, Expr::Column { .. })
        )
    })
}

fn describe_source(db: &Database, source: &TableSource, pushdown: Option<&Expr>) -> DbResult<String> {
    match source {
        TableSource::Named { name, .. } => {
            if let Some(table) = db.get_table(name) {
                let binding = source.binding_name().to_string();
                let preds = collect_simple_preds(&table, &binding, pushdown);
                let guard = table.read();
                let path = choose_access_path(&guard, &preds);
                Ok(path.describe(&table.schema.name))
            } else if db.get_view(name).is_some() {
                Ok(format!("VIEW {name}"))
            } else {
                Err(DbError::Catalog(format!("table or view '{name}' not found")))
            }
        }
        TableSource::Function { name, .. } => Ok(format!("TABLE-FUNCTION {name}")),
        TableSource::Subquery { alias, .. } => Ok(format!("SUBQUERY {alias}")),
    }
}

// ------------------------------------------------------------------- FROM

fn build_from(db: &Database, stmt: &SelectStmt, view: &ReadView) -> DbResult<Relation> {
    let mut rel: Option<Relation> = None;
    for (idx, fi) in stmt.from.iter().enumerate() {
        // WHERE conjuncts that reference only the first source's binding
        // can be evaluated during its scan (index probes); the full WHERE
        // is re-applied afterwards, so this is purely an access-path
        // optimization. Safe under INNER and LEFT joins alike because the
        // first source is never null-extended.
        let pushdown = if idx == 0 { stmt.where_clause.as_ref() } else { None };
        let mut r = resolve_source(db, &fi.source, pushdown, view)?;
        for join in &fi.joins {
            r = apply_join(db, r, join, view)?;
        }
        rel = Some(match rel {
            None => r,
            Some(prev) => combine(prev, r, stmt.where_clause.as_ref())?,
        });
    }
    Ok(rel.unwrap_or_else(Relation::empty))
}

fn resolve_source(
    db: &Database,
    source: &TableSource,
    pushdown: Option<&Expr>,
    view: &ReadView,
) -> DbResult<Relation> {
    match source {
        TableSource::Named { name, .. } => {
            let binding = source.binding_name().to_string();
            if let Some(table) = db.get_table(name) {
                return scan_table(db, &table, &binding, pushdown, view);
            }
            if let Some(vdef) = db.get_view(name) {
                let query = push_into_view(db, &vdef.query, &binding, pushdown);
                let rs = execute_select(db, &query, view)?;
                return Ok(relabel(rs, &binding));
            }
            Err(DbError::Catalog(format!("table or view '{name}' not found")))
        }
        TableSource::Function { name, args, alias, columns } => {
            let func = db
                .get_function(name)
                .ok_or_else(|| DbError::Catalog(format!("table function '{name}' not found")))?;
            let empty_cols: Vec<ColRef> = Vec::new();
            let empty_row: Row = Vec::new();
            let env = RowEnv { cols: &empty_cols, row: &empty_row };
            let arg_vals: Vec<Value> = args.iter().map(|a| eval(a, &env)).collect::<DbResult<_>>()?;
            let rs = func.eval(&arg_vals, columns)?;
            if rs.columns.len() != columns.len() {
                return Err(DbError::Type(format!(
                    "table function '{name}' returned {} columns, declaration has {}",
                    rs.columns.len(),
                    columns.len()
                )));
            }
            let mut rows = Vec::with_capacity(rs.rows.len());
            for row in rs.rows {
                let mut out = Vec::with_capacity(row.len());
                for (v, (cname, ty)) in row.into_iter().zip(columns) {
                    out.push(v.coerce_to(*ty).map_err(|e| {
                        DbError::Type(format!("table function '{name}' column '{cname}': {e}"))
                    })?);
                }
                rows.push(out);
            }
            Ok(Relation {
                cols: columns.iter().map(|(n, _)| ColRef::new(Some(alias), n)).collect(),
                rows,
            })
        }
        TableSource::Subquery { query, alias } => {
            let rs = execute_select(db, query, view)?;
            Ok(relabel(rs, alias))
        }
    }
}

fn relabel(rs: RowSet, binding: &str) -> Relation {
    Relation {
        cols: rs.columns.iter().map(|c| ColRef::new(Some(binding), c)).collect(),
        rows: rs.rows,
    }
}

fn collect_simple_preds(table: &Table, binding: &str, pushdown: Option<&Expr>) -> Vec<SimplePred> {
    let mut preds = Vec::new();
    if let Some(w) = pushdown {
        let has_column = |c: &str| table.schema.column_index(c).is_some();
        for conj in split_conjuncts(w) {
            if let Some(p) = as_simple_pred(conj, binding, &has_column) {
                preds.push(p);
            }
        }
    }
    preds
}

fn scan_table(
    db: &Database,
    table: &Table,
    binding: &str,
    pushdown: Option<&Expr>,
    view: &ReadView,
) -> DbResult<Relation> {
    let preds = collect_simple_preds(table, binding, pushdown);
    let guard = table.read();
    let path = choose_access_path(&guard, &preds);
    let rows: Vec<Row> = match &path {
        AccessPath::FullScan => {
            db.stats().record_full_scan(guard.len() as u64);
            guard.iter_at(*view).map(|(_, r)| r.clone()).collect()
        }
        AccessPath::IndexEq { index, key } => {
            db.stats().record_index_probe(1);
            let ix = find_index(&guard, index)?;
            ix.lookup_eq(key)
                .into_iter()
                .filter_map(|rid| guard.row_at(rid, view).cloned())
                .collect()
        }
        AccessPath::IndexIn { index, keys } => {
            db.stats().record_index_probe(keys.len() as u64);
            let ix = find_index(&guard, index)?;
            dedup_rids(ix.lookup_in(keys))
                .into_iter()
                .filter_map(|rid| guard.row_at(rid, view).cloned())
                .collect()
        }
        AccessPath::IndexRange { index, low, high } => {
            db.stats().record_index_probe(1);
            let ix = find_index(&guard, index)?;
            let low = match low {
                std::ops::Bound::Included(v) => std::ops::Bound::Included(v),
                std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v),
                std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
            };
            let high = match high {
                std::ops::Bound::Included(v) => std::ops::Bound::Included(v),
                std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v),
                std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
            };
            dedup_rids(ix.lookup_range(low, high))
                .into_iter()
                .filter_map(|rid| guard.row_at(rid, view).cloned())
                .collect()
        }
    };
    db.stats().record_rows_read(rows.len() as u64);
    Ok(Relation {
        cols: table
            .schema
            .columns
            .iter()
            .map(|c| ColRef::new(Some(binding), &c.name))
            .collect(),
        rows,
    })
}

fn find_index<'a>(
    data: &'a crate::storage::TableData,
    name: &str,
) -> DbResult<&'a crate::index::Index> {
    data.indexes()
        .iter()
        .find(|ix| ix.def.name == name)
        .ok_or_else(|| DbError::Execution(format!("index '{name}' vanished during execution")))
}

/// Under versioned storage one row slot can be posted under several keys
/// (one per version), so multi-key probes must dedup rids before visibility
/// filtering or a row would be returned once per matching key.
fn dedup_rids(rids: Vec<crate::index::RowId>) -> Vec<crate::index::RowId> {
    let mut seen: std::collections::HashSet<crate::index::RowId> =
        std::collections::HashSet::with_capacity(rids.len());
    rids.into_iter().filter(|r| seen.insert(*r)).collect()
}

/// Push applicable outer conjuncts into a view's query so its own planning
/// can use indexes. Only conjuncts over simple passthrough columns of a
/// plain (non-aggregating, non-distinct, non-limited) view are pushed.
fn push_into_view(
    _db: &Database,
    view_query: &SelectStmt,
    binding: &str,
    pushdown: Option<&Expr>,
) -> SelectStmt {
    let mut query = view_query.clone();
    let Some(outer) = pushdown else { return query };
    if !query.group_by.is_empty()
        || query.distinct
        || query.limit.is_some()
        || query.items.iter().any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
    {
        return query;
    }
    // Map of output column name -> inner column expression.
    let mut mapping: HashMap<String, Expr> = HashMap::new();
    for (i, item) in query.items.iter().enumerate() {
        if let SelectItem::Expr { expr: inner @ Expr::Column { name, .. }, alias } = item {
            let out_name = alias.clone().unwrap_or_else(|| name.clone());
            mapping.insert(out_name.to_ascii_lowercase(), inner.clone());
        }
        let _ = i;
    }
    if mapping.is_empty() {
        return query;
    }
    let mut pushed: Option<Expr> = None;
    for conj in split_conjuncts(outer) {
        if let Some(rewritten) = rewrite_for_view(conj, binding, &mapping) {
            pushed = Some(match pushed {
                None => rewritten,
                Some(p) => p.and(rewritten),
            });
        }
    }
    if let Some(p) = pushed {
        query.where_clause = Some(match query.where_clause.take() {
            None => p,
            Some(w) => w.and(p),
        });
    }
    query
}

/// Rewrite a conjunct replacing outer column references (which must all
/// refer to `binding`) with the view's inner expressions. Returns None when
/// any part cannot be rewritten.
fn rewrite_for_view(expr: &Expr, binding: &str, mapping: &HashMap<String, Expr>) -> Option<Expr> {
    match expr {
        Expr::Column { qualifier, name } => {
            let qual_ok =
                qualifier.as_ref().map(|q| q.eq_ignore_ascii_case(binding)).unwrap_or(true);
            if !qual_ok {
                return None;
            }
            mapping.get(&name.to_ascii_lowercase()).cloned()
        }
        Expr::Literal(_) => Some(expr.clone()),
        Expr::Binary { op, left, right }
            if matches!(op, BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq) =>
        {
            Some(Expr::Binary {
                op: *op,
                left: Box::new(rewrite_for_view(left, binding, mapping)?),
                right: Box::new(rewrite_for_view(right, binding, mapping)?),
            })
        }
        Expr::InList { expr, list, negated: false } => {
            let inner = rewrite_for_view(expr, binding, mapping)?;
            let list: Option<Vec<Expr>> = list
                .iter()
                .map(|e| if matches!(e, Expr::Literal(_)) { Some(e.clone()) } else { None })
                .collect();
            Some(Expr::InList { expr: Box::new(inner), list: list?, negated: false })
        }
        _ => None,
    }
}

// ------------------------------------------------------------------- joins

fn apply_join(db: &Database, left: Relation, join: &Join, view: &ReadView) -> DbResult<Relation> {
    let right = resolve_source(db, &join.source, None, view)?;
    join_relations(left, right, &join.on, join.left_outer)
}

fn join_relations(left: Relation, right: Relation, on: &Expr, left_outer: bool) -> DbResult<Relation> {
    let combined_cols: Vec<ColRef> =
        left.cols.iter().chain(right.cols.iter()).cloned().collect();

    // Find equi-join key pairs resolvable on opposite sides.
    let mut left_keys: Vec<usize> = Vec::new();
    let mut right_keys: Vec<usize> = Vec::new();
    for conj in split_conjuncts(on) {
        if let Expr::Binary { op: BinOp::Eq, left: a, right: b } = conj {
            if let (Expr::Column { qualifier: qa, name: na }, Expr::Column { qualifier: qb, name: nb }) =
                (a.as_ref(), b.as_ref())
            {
                let la = resolve_column(&left.cols, qa, na);
                let rb = resolve_column(&right.cols, qb, nb);
                if let (Ok(li), Ok(ri)) = (la, rb) {
                    left_keys.push(li);
                    right_keys.push(ri);
                    continue;
                }
                let lb = resolve_column(&left.cols, qb, nb);
                let ra = resolve_column(&right.cols, qa, na);
                if let (Ok(li), Ok(ri)) = (lb, ra) {
                    left_keys.push(li);
                    right_keys.push(ri);
                }
            }
        }
    }

    let mut out_rows: Vec<Row> = Vec::new();
    let null_right: Row = vec![Value::Null; right.cols.len()];

    if !left_keys.is_empty() {
        // Hash join.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(right.rows.len());
        for (i, row) in right.rows.iter().enumerate() {
            let key: Vec<Value> = right_keys.iter().map(|&k| row[k].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(i);
        }
        for lrow in &left.rows {
            let key: Vec<Value> = left_keys.iter().map(|&k| lrow[k].clone()).collect();
            let mut matched = false;
            if !key.iter().any(Value::is_null) {
                if let Some(cands) = table.get(&key) {
                    for &ri in cands {
                        let mut combined = lrow.clone();
                        combined.extend_from_slice(&right.rows[ri]);
                        let env = RowEnv { cols: &combined_cols, row: &combined };
                        if truth(&eval(on, &env)?) == Some(true) {
                            out_rows.push(combined);
                            matched = true;
                        }
                    }
                }
            }
            if left_outer && !matched {
                let mut combined = lrow.clone();
                combined.extend_from_slice(&null_right);
                out_rows.push(combined);
            }
        }
    } else {
        // Nested loop.
        for lrow in &left.rows {
            let mut matched = false;
            for rrow in &right.rows {
                let mut combined = lrow.clone();
                combined.extend_from_slice(rrow);
                let env = RowEnv { cols: &combined_cols, row: &combined };
                if truth(&eval(on, &env)?) == Some(true) {
                    out_rows.push(combined);
                    matched = true;
                }
            }
            if left_outer && !matched {
                let mut combined = lrow.clone();
                combined.extend_from_slice(&null_right);
                out_rows.push(combined);
            }
        }
    }

    Ok(Relation { cols: combined_cols, rows: out_rows })
}

/// Combine two comma-separated FROM items. When WHERE contains an equi
/// condition linking them, perform a hash join on it instead of a cross
/// product (this is what makes the paper's Section 4 query — DeviceData
/// joined to a graphQuery table function — efficient).
fn combine(left: Relation, right: Relation, where_clause: Option<&Expr>) -> DbResult<Relation> {
    if let Some(w) = where_clause {
        // Build a synthetic ON from linking equi-conjuncts.
        let mut on: Option<Expr> = None;
        for conj in split_conjuncts(w) {
            if let Expr::Binary { op: BinOp::Eq, left: a, right: b } = conj {
                if let (Expr::Column { qualifier: qa, name: na }, Expr::Column { qualifier: qb, name: nb }) =
                    (a.as_ref(), b.as_ref())
                {
                    let crosses = (resolve_column(&left.cols, qa, na).is_ok()
                        && resolve_column(&right.cols, qb, nb).is_ok())
                        || (resolve_column(&left.cols, qb, nb).is_ok()
                            && resolve_column(&right.cols, qa, na).is_ok());
                    if crosses {
                        on = Some(match on {
                            None => (*conj).clone(),
                            Some(p) => p.and((*conj).clone()),
                        });
                    }
                }
            }
        }
        if let Some(on) = on {
            return join_relations(left, right, &on, false);
        }
    }
    // Plain cross product.
    let combined_cols: Vec<ColRef> =
        left.cols.iter().chain(right.cols.iter()).cloned().collect();
    let mut rows = Vec::with_capacity(left.rows.len().saturating_mul(right.rows.len()));
    for l in &left.rows {
        for r in &right.rows {
            let mut combined = l.clone();
            combined.extend_from_slice(r);
            rows.push(combined);
        }
    }
    Ok(Relation { cols: combined_cols, rows })
}

// ------------------------------------------------------------------ filter

fn apply_where(rel: Relation, where_clause: Option<&Expr>) -> DbResult<Relation> {
    let Some(w) = where_clause else { return Ok(rel) };
    let mut rows = Vec::with_capacity(rel.rows.len());
    for row in rel.rows {
        let env = RowEnv { cols: &rel.cols, row: &row };
        if truth(&eval(w, &env)?) == Some(true) {
            rows.push(row);
        }
    }
    Ok(Relation { cols: rel.cols, rows })
}

// --------------------------------------------------------------- aggregate

fn is_aggregate_query(stmt: &SelectStmt) -> bool {
    !stmt.group_by.is_empty()
        || stmt
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || stmt.having.as_ref().map(Expr::contains_aggregate).unwrap_or(false)
}

/// One aggregate accumulator.
#[derive(Debug, Clone)]
enum AggAcc {
    Count(i64),
    CountDistinct(std::collections::HashSet<Value>),
    Sum { int: i64, float: f64, any_float: bool, count: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, count: u64 },
}

fn new_acc(name: &str, distinct: bool) -> DbResult<AggAcc> {
    Ok(match name.to_ascii_uppercase().as_str() {
        "COUNT" if distinct => AggAcc::CountDistinct(Default::default()),
        "COUNT" => AggAcc::Count(0),
        "SUM" => AggAcc::Sum { int: 0, float: 0.0, any_float: false, count: 0 },
        "MIN" => AggAcc::Min(None),
        "MAX" => AggAcc::Max(None),
        "AVG" => AggAcc::Avg { sum: 0.0, count: 0 },
        other => return Err(DbError::Unsupported(format!("aggregate '{other}'"))),
    })
}

fn acc_update(acc: &mut AggAcc, v: Option<Value>) -> DbResult<()> {
    match acc {
        AggAcc::Count(n) => {
            // COUNT(*) gets None for "the row itself"; COUNT(expr) skips NULLs.
            if v.as_ref().map(|x| !x.is_null()).unwrap_or(true) {
                *n += 1;
            }
        }
        AggAcc::CountDistinct(set) => {
            if let Some(v) = v {
                if !v.is_null() {
                    set.insert(v);
                }
            }
        }
        AggAcc::Sum { int, float, any_float, count } => {
            if let Some(v) = v {
                match v {
                    Value::Null => {}
                    Value::Bigint(x) => {
                        *int += x;
                        *float += x as f64;
                        *count += 1;
                    }
                    Value::Double(x) => {
                        *float += x;
                        *any_float = true;
                        *count += 1;
                    }
                    other => return Err(DbError::Type(format!("SUM over non-numeric {other}"))),
                }
            }
        }
        AggAcc::Min(cur) => {
            if let Some(v) = v {
                if !v.is_null() {
                    match cur {
                        None => *cur = Some(v),
                        Some(c) => {
                            if v.sql_cmp(c) == Some(std::cmp::Ordering::Less) {
                                *cur = Some(v);
                            }
                        }
                    }
                }
            }
        }
        AggAcc::Max(cur) => {
            if let Some(v) = v {
                if !v.is_null() {
                    match cur {
                        None => *cur = Some(v),
                        Some(c) => {
                            if v.sql_cmp(c) == Some(std::cmp::Ordering::Greater) {
                                *cur = Some(v);
                            }
                        }
                    }
                }
            }
        }
        AggAcc::Avg { sum, count } => {
            if let Some(v) = v {
                if !v.is_null() {
                    *sum += v.as_f64()?;
                    *count += 1;
                }
            }
        }
    }
    Ok(())
}

fn acc_finish(acc: &AggAcc) -> Value {
    match acc {
        AggAcc::Count(n) => Value::Bigint(*n),
        AggAcc::CountDistinct(set) => Value::Bigint(set.len() as i64),
        AggAcc::Sum { int, float, any_float, count } => {
            if *count == 0 {
                Value::Null
            } else if *any_float {
                Value::Double(*float)
            } else {
                Value::Bigint(*int)
            }
        }
        AggAcc::Min(v) | AggAcc::Max(v) => v.clone().unwrap_or(Value::Null),
        AggAcc::Avg { sum, count } => {
            if *count == 0 {
                Value::Null
            } else {
                Value::Double(sum / *count as f64)
            }
        }
    }
}

/// Collect the distinct aggregate function expressions used by the query.
fn collect_agg_specs(stmt: &SelectStmt) -> Vec<Expr> {
    let mut specs: Vec<Expr> = Vec::new();
    let mut push = |e: &Expr| {
        e.walk(&mut |node| {
            if let Expr::Function { name, .. } = node {
                if is_aggregate_name(name) && !specs.contains(node) {
                    specs.push(node.clone());
                }
            }
        });
    };
    for item in &stmt.items {
        if let SelectItem::Expr { expr, .. } = item {
            push(expr);
        }
    }
    if let Some(h) = &stmt.having {
        push(h);
    }
    for o in &stmt.order_by {
        push(&o.expr);
    }
    specs
}

struct GroupEnv<'a> {
    cols: &'a [ColRef],
    representative: &'a Row,
    group_exprs: &'a [Expr],
    group_vals: &'a [Value],
    agg_specs: &'a [Expr],
    agg_vals: &'a [Value],
}

fn eval_agg_expr(expr: &Expr, genv: &GroupEnv<'_>) -> DbResult<Value> {
    if let Some(i) = genv.agg_specs.iter().position(|s| s == expr) {
        return Ok(genv.agg_vals[i].clone());
    }
    if let Some(i) = genv.group_exprs.iter().position(|s| s == expr) {
        return Ok(genv.group_vals[i].clone());
    }
    match expr {
        Expr::Binary { op, left, right } => {
            // Evaluate children through the aggregate-aware path by
            // substituting resolved values as literals.
            let l = eval_agg_expr(left, genv)?;
            let r = eval_agg_expr(right, genv)?;
            let cols: Vec<ColRef> = Vec::new();
            let row: Row = Vec::new();
            let env = RowEnv { cols: &cols, row: &row };
            eval(
                &Expr::Binary {
                    op: *op,
                    left: Box::new(Expr::Literal(l)),
                    right: Box::new(Expr::Literal(r)),
                },
                &env,
            )
        }
        Expr::Unary { op, expr } => {
            let v = eval_agg_expr(expr, genv)?;
            let cols: Vec<ColRef> = Vec::new();
            let row: Row = Vec::new();
            let env = RowEnv { cols: &cols, row: &row };
            eval(&Expr::Unary { op: *op, expr: Box::new(Expr::Literal(v)) }, &env)
        }
        // Lenient fallback: resolve against the group's representative row
        // (first row), MySQL-style, so `SELECT name ... GROUP BY id` works.
        _ => {
            let env = RowEnv { cols: genv.cols, row: genv.representative };
            eval(expr, &env)
        }
    }
}

fn project_aggregate(rel: Relation, stmt: &SelectStmt) -> DbResult<RowSet> {
    let specs = collect_agg_specs(stmt);
    // Grouping.
    struct Group {
        key: Vec<Value>,
        representative: Row,
        accs: Vec<AggAcc>,
    }
    let mut order: Vec<Group> = Vec::new();
    let mut lookup: HashMap<Vec<Value>, usize> = HashMap::new();

    let make_accs = |row: Row, key: Vec<Value>| -> DbResult<Group> {
        let mut accs = Vec::with_capacity(specs.len());
        for s in &specs {
            if let Expr::Function { name, distinct, .. } = s {
                accs.push(new_acc(name, *distinct)?);
            }
        }
        Ok(Group { key, representative: row, accs })
    };

    for row in &rel.rows {
        let env = RowEnv { cols: &rel.cols, row };
        let key: Vec<Value> =
            stmt.group_by.iter().map(|e| eval(e, &env)).collect::<DbResult<_>>()?;
        let gi = match lookup.get(&key) {
            Some(&i) => i,
            None => {
                let g = make_accs(row.clone(), key.clone())?;
                order.push(g);
                lookup.insert(key, order.len() - 1);
                order.len() - 1
            }
        };
        let group = &mut order[gi];
        for (si, spec) in specs.iter().enumerate() {
            if let Expr::Function { args, star, .. } = spec {
                let v = if *star {
                    None
                } else {
                    Some(eval(&args[0], &env)?)
                };
                acc_update(&mut group.accs[si], v)?;
            }
        }
    }
    // Global aggregate over an empty input still produces one group.
    if order.is_empty() && stmt.group_by.is_empty() {
        let empty_row: Row = vec![Value::Null; rel.cols.len()];
        order.push(make_accs(empty_row, Vec::new())?);
    }

    let mut names: Vec<String> = Vec::new();
    for (i, item) in stmt.items.iter().enumerate() {
        match item {
            SelectItem::Expr { expr, alias } => names.push(output_name(expr, alias, i)),
            _ => {
                return Err(DbError::Unsupported(
                    "SELECT * together with aggregation".into(),
                ))
            }
        }
    }

    let mut out_rows: Vec<Row> = Vec::new();
    let mut sort_keys: Vec<Vec<Value>> = Vec::new();
    for group in &order {
        let agg_vals: Vec<Value> = group.accs.iter().map(acc_finish).collect();
        let genv = GroupEnv {
            cols: &rel.cols,
            representative: &group.representative,
            group_exprs: &stmt.group_by,
            group_vals: &group.key,
            agg_specs: &specs,
            agg_vals: &agg_vals,
        };
        if let Some(h) = &stmt.having {
            if truth(&eval_agg_expr(h, &genv)?) != Some(true) {
                continue;
            }
        }
        let mut row = Vec::with_capacity(stmt.items.len());
        for item in &stmt.items {
            if let SelectItem::Expr { expr, .. } = item {
                row.push(eval_agg_expr(expr, &genv)?);
            }
        }
        // ORDER BY keys: alias references resolve against output first.
        let mut keys = Vec::with_capacity(stmt.order_by.len());
        for o in &stmt.order_by {
            keys.push(order_key(&o.expr, &names, &row, |e| eval_agg_expr(e, &genv))?);
        }
        out_rows.push(row);
        sort_keys.push(keys);
    }

    finish(names, out_rows, sort_keys, stmt)
}

// -------------------------------------------------------------- projection

fn output_name(expr: &Expr, alias: &Option<String>, idx: usize) -> String {
    if let Some(a) = alias {
        return a.clone();
    }
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.to_ascii_lowercase(),
        _ => format!("col{idx}"),
    }
}

fn order_key(
    expr: &Expr,
    out_names: &[String],
    out_row: &Row,
    eval_in: impl Fn(&Expr) -> DbResult<Value>,
) -> DbResult<Value> {
    if let Expr::Column { qualifier: None, name } = expr {
        if let Some(i) = out_names.iter().position(|n| n.eq_ignore_ascii_case(name)) {
            return Ok(out_row[i].clone());
        }
    }
    eval_in(expr)
}

fn project_plain(rel: Relation, stmt: &SelectStmt) -> DbResult<RowSet> {
    // Output column list.
    let mut names: Vec<String> = Vec::new();
    enum Proj {
        All,
        Qualified(String),
        One(Expr),
    }
    let mut projs: Vec<Proj> = Vec::new();
    for (i, item) in stmt.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for c in &rel.cols {
                    names.push(c.name.clone());
                }
                projs.push(Proj::All);
            }
            SelectItem::QualifiedWildcard(q) => {
                for c in &rel.cols {
                    if c.qualifier.as_ref().map(|x| x.eq_ignore_ascii_case(q)).unwrap_or(false) {
                        names.push(c.name.clone());
                    }
                }
                projs.push(Proj::Qualified(q.clone()));
            }
            SelectItem::Expr { expr, alias } => {
                names.push(output_name(expr, alias, i));
                projs.push(Proj::One(expr.clone()));
            }
        }
    }

    let mut out_rows: Vec<Row> = Vec::with_capacity(rel.rows.len());
    let mut sort_keys: Vec<Vec<Value>> = Vec::with_capacity(rel.rows.len());
    for row in &rel.rows {
        let env = RowEnv { cols: &rel.cols, row };
        let mut out = Vec::with_capacity(names.len());
        for p in &projs {
            match p {
                Proj::All => out.extend(row.iter().cloned()),
                Proj::Qualified(q) => {
                    for (c, v) in rel.cols.iter().zip(row.iter()) {
                        if c.qualifier.as_ref().map(|x| x.eq_ignore_ascii_case(q)).unwrap_or(false)
                        {
                            out.push(v.clone());
                        }
                    }
                }
                Proj::One(e) => out.push(eval(e, &env)?),
            }
        }
        let mut keys = Vec::with_capacity(stmt.order_by.len());
        for o in &stmt.order_by {
            keys.push(order_key(&o.expr, &names, &out, |e| eval(e, &env))?);
        }
        out_rows.push(out);
        sort_keys.push(keys);
    }

    finish(names, out_rows, sort_keys, stmt)
}

fn finish(
    names: Vec<String>,
    mut rows: Vec<Row>,
    mut sort_keys: Vec<Vec<Value>>,
    stmt: &SelectStmt,
) -> DbResult<RowSet> {
    if stmt.distinct {
        let mut seen: std::collections::HashSet<Vec<Value>> = Default::default();
        let mut new_rows = Vec::with_capacity(rows.len());
        let mut new_keys = Vec::with_capacity(sort_keys.len());
        for (row, key) in rows.into_iter().zip(sort_keys) {
            if seen.insert(row.clone()) {
                new_rows.push(row);
                new_keys.push(key);
            }
        }
        rows = new_rows;
        sort_keys = new_keys;
    }
    if !stmt.order_by.is_empty() {
        let mut idx: Vec<usize> = (0..rows.len()).collect();
        idx.sort_by(|&a, &b| {
            for (k, o) in stmt.order_by.iter().enumerate() {
                let ord = sort_keys[a][k].total_cmp(&sort_keys[b][k]);
                let ord = if o.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let mut sorted = Vec::with_capacity(rows.len());
        for i in idx {
            sorted.push(std::mem::take(&mut rows[i]));
        }
        rows = sorted;
    }
    if let Some(n) = stmt.limit {
        rows.truncate(n as usize);
    }
    Ok(RowSet::with_rows(names, rows))
}
