//! SQL tokenizer.

use crate::error::{DbError, DbResult};

/// A lexical token of the SQL dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier or keyword (kept verbatim; keyword matching is
    /// case-insensitive at the parser).
    Ident(String),
    /// Double-quoted identifier (case preserved, never a keyword).
    QuotedIdent(String),
    /// Single-quoted string literal, with `''` unescaped.
    StringLit(String),
    /// Integer literal.
    /// Unsigned magnitude; a preceding `-` is a separate token folded by
    /// the parser, which lets `-9223372036854775808` (i64::MIN) lex.
    IntLit(u64),
    /// Floating point literal.
    FloatLit(f64),
    /// `?` positional parameter.
    Param,
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Semicolon,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Slash,
}

/// Tokenize SQL text. Supports `--` line comments.
pub fn tokenize(input: &str) -> DbResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' if !bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '?' => {
                tokens.push(Token::Param);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(Token::StringLit(s));
                i = next;
            }
            '"' => {
                let end = input[i + 1..]
                    .find('"')
                    .ok_or_else(|| DbError::Parse("unterminated quoted identifier".into()))?;
                tokens.push(Token::QuotedIdent(input[i + 1..i + 1 + end].to_string()));
                i = i + 1 + end + 1;
            }
            c if c.is_ascii_digit() || (c == '.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' || b == '$' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(DbError::Parse(format!("unexpected character '{other}' at byte {i}")))
            }
        }
    }
    Ok(tokens)
}

fn lex_string(input: &str, start: usize) -> DbResult<(String, usize)> {
    // start points at the opening quote.
    let bytes = input.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    loop {
        if i >= bytes.len() {
            return Err(DbError::Parse("unterminated string literal".into()));
        }
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Advance over a full UTF-8 character.
            let ch_len = input[i..].chars().next().map(|c| c.len_utf8()).unwrap_or(1);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
        }
    }
}

fn lex_number(input: &str, start: usize) -> DbResult<(Token, usize)> {
    let bytes = input.as_bytes();
    let mut i = start;
    let mut is_float = false;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => i += 1,
            b'.' if !is_float => {
                is_float = true;
                i += 1;
            }
            b'e' | b'E' if i > start => {
                is_float = true;
                i += 1;
                if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let text = &input[start..i];
    if is_float {
        text.parse::<f64>()
            .map(|v| (Token::FloatLit(v), i))
            .map_err(|_| DbError::Parse(format!("bad float literal '{text}'")))
    } else {
        text.parse::<u64>()
            .map(|v| (Token::IntLit(v), i))
            .map_err(|_| DbError::Parse(format!("bad integer literal '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select_tokens() {
        let toks = tokenize("SELECT * FROM t WHERE a = 1 AND b <> 'x'").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[1], Token::Star);
        assert!(toks.contains(&Token::Eq));
        assert!(toks.contains(&Token::NotEq));
        assert!(toks.contains(&Token::StringLit("x".into())));
    }

    #[test]
    fn string_escaping_and_unicode() {
        let toks = tokenize("'O''Brien' 'héllo'").unwrap();
        assert_eq!(toks[0], Token::StringLit("O'Brien".into()));
        assert_eq!(toks[1], Token::StringLit("héllo".into()));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn numbers_ints_floats_and_exponents() {
        let toks = tokenize("42 3.5 1e3 2.5E-2 .5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::IntLit(42),
                Token::FloatLit(3.5),
                Token::FloatLit(1000.0),
                Token::FloatLit(0.025),
                Token::FloatLit(0.5),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("< <= > >= = <> !=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Eq,
                Token::NotEq,
                Token::NotEq
            ]
        );
    }

    #[test]
    fn comments_and_params_and_quoted_idents() {
        let toks = tokenize("SELECT a -- comment\nFROM \"Weird Name\" WHERE x = ?").unwrap();
        assert!(toks.contains(&Token::QuotedIdent("Weird Name".into())));
        assert!(toks.contains(&Token::Param));
        assert!(!toks.iter().any(|t| matches!(t, Token::Ident(s) if s == "comment")));
    }

    #[test]
    fn dot_vs_decimal() {
        let toks = tokenize("t.col 1.5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t".into()),
                Token::Dot,
                Token::Ident("col".into()),
                Token::FloatLit(1.5)
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("a @ b").is_err());
    }
}
