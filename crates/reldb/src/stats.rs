//! Execution statistics counters.
//!
//! Cheap atomic counters the tests and benchmarks use to verify optimizer
//! behaviour (e.g. "this query must have used an index probe, not a scan"
//! — the observable effect of the paper's pushdown strategies).

use std::sync::atomic::{AtomicU64, Ordering};

/// Global engine counters. All methods are lock-free.
#[derive(Debug, Default)]
pub struct ExecStats {
    statements: AtomicU64,
    rows_read: AtomicU64,
    index_probes: AtomicU64,
    full_scans: AtomicU64,
    full_scan_rows: AtomicU64,
    rows_returned: AtomicU64,
    exec_nanos: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub statements: u64,
    pub rows_read: u64,
    pub index_probes: u64,
    pub full_scans: u64,
    pub full_scan_rows: u64,
    /// Rows in statement results (as opposed to rows scanned internally).
    pub rows_returned: u64,
    /// Total wall time spent executing statements, in nanoseconds.
    pub exec_nanos: u64,
}

impl ExecStats {
    pub fn record_statement(&self) {
        self.statements.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_rows_read(&self, n: u64) {
        self.rows_read.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_index_probe(&self, n: u64) {
        self.index_probes.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_full_scan(&self, rows: u64) {
        self.full_scans.fetch_add(1, Ordering::Relaxed);
        self.full_scan_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Record a finished statement's result size and wall time.
    pub fn record_execution(&self, rows_returned: u64, nanos: u64) {
        self.rows_returned.fetch_add(rows_returned, Ordering::Relaxed);
        self.exec_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            statements: self.statements.load(Ordering::Relaxed),
            rows_read: self.rows_read.load(Ordering::Relaxed),
            index_probes: self.index_probes.load(Ordering::Relaxed),
            full_scans: self.full_scans.load(Ordering::Relaxed),
            full_scan_rows: self.full_scan_rows.load(Ordering::Relaxed),
            rows_returned: self.rows_returned.load(Ordering::Relaxed),
            exec_nanos: self.exec_nanos.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Difference between two snapshots (self taken after `earlier`).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            statements: self.statements - earlier.statements,
            rows_read: self.rows_read - earlier.rows_read,
            index_probes: self.index_probes - earlier.index_probes,
            full_scans: self.full_scans - earlier.full_scans,
            full_scan_rows: self.full_scan_rows - earlier.full_scan_rows,
            rows_returned: self.rows_returned - earlier.rows_returned,
            exec_nanos: self.exec_nanos - earlier.exec_nanos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let s = ExecStats::default();
        s.record_statement();
        s.record_statement();
        s.record_index_probe(3);
        s.record_full_scan(100);
        let a = s.snapshot();
        assert_eq!(a.statements, 2);
        assert_eq!(a.index_probes, 3);
        assert_eq!(a.full_scans, 1);
        assert_eq!(a.full_scan_rows, 100);
        s.record_rows_read(7);
        s.record_execution(4, 250);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.rows_read, 7);
        assert_eq!(d.statements, 0);
        assert_eq!(d.rows_returned, 4);
        assert_eq!(d.exec_nanos, 250);
    }
}
