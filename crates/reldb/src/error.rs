//! Error types for the relational engine.

use std::fmt;

/// All errors surfaced by the relational engine.
///
/// The engine distinguishes error classes so that callers (notably the graph
/// overlay layer, which generates SQL programmatically) can react to schema
/// problems differently from data problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The SQL text could not be tokenized or parsed.
    Parse(String),
    /// A referenced table, view, column, index, or function does not exist,
    /// or a created object conflicts with an existing one.
    Catalog(String),
    /// A primary key, unique, foreign key, or nullability constraint was
    /// violated by a write.
    Constraint(String),
    /// A value had the wrong type for the operation or column.
    Type(String),
    /// A runtime failure during query execution.
    Execution(String),
    /// The statement is syntactically valid but uses an unsupported feature.
    Unsupported(String),
    /// A transaction could not be completed and has been rolled back.
    Txn(String),
    /// A durability-layer I/O failure (WAL append, checkpoint write, or a
    /// simulated crash injected by the test harness).
    Io(String),
    /// Recovery or replication state is internally inconsistent (e.g. a
    /// checkpoint META that disagrees with the WAL it claims to cover).
    /// Unlike [`DbError::Io`], this is not transient: the on-disk or
    /// streamed state itself is wrong and must not be trusted.
    Recovery(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
            DbError::Constraint(m) => write!(f, "constraint violation: {m}"),
            DbError::Type(m) => write!(f, "type error: {m}"),
            DbError::Execution(m) => write!(f, "execution error: {m}"),
            DbError::Unsupported(m) => write!(f, "unsupported: {m}"),
            DbError::Txn(m) => write!(f, "transaction error: {m}"),
            DbError::Io(m) => write!(f, "io error: {m}"),
            DbError::Recovery(m) => write!(f, "recovery error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenient result alias used across the engine.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_class_and_message() {
        let e = DbError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        let e = DbError::Constraint("duplicate key".into());
        assert!(e.to_string().contains("constraint violation"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(DbError::Type("x".into()), DbError::Type("x".into()));
        assert_ne!(DbError::Type("x".into()), DbError::Execution("x".into()));
    }
}
