//! Transaction support: an undo log with rollback.
//!
//! The engine runs statements in auto-commit mode unless a transaction is
//! open (`BEGIN` ... `COMMIT`/`ROLLBACK`, or [`crate::db::Database::transaction`]).
//! While a transaction is open, every data modification appends an undo
//! record; rollback replays them in reverse. This gives atomicity for graph
//! updates — the property the paper highlights as "the strongest suit for
//! RDBMSs" that Db2 Graph inherits (Section 1). Isolation is
//! read-committed-like: concurrent readers see committed per-statement
//! states (each statement takes per-table locks).

use crate::index::RowId;
use crate::row::Row;

/// One reversible data modification.
#[derive(Debug, Clone)]
pub enum UndoOp {
    /// A row was inserted; undo deletes it.
    Insert { table: String, rid: RowId },
    /// A row was deleted; undo restores it.
    Delete { table: String, rid: RowId, row: Row },
    /// A row was updated; undo writes back the old image.
    Update { table: String, rid: RowId, old: Row },
}

/// The undo log of an open transaction.
#[derive(Debug, Default)]
pub struct UndoLog {
    ops: Vec<UndoOp>,
}

impl UndoLog {
    pub fn record(&mut self, op: UndoOp) {
        self.ops.push(op);
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drain operations in reverse (rollback) order.
    pub fn drain_reverse(&mut self) -> Vec<UndoOp> {
        let mut ops = std::mem::take(&mut self.ops);
        ops.reverse();
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn drain_reverses_order() {
        let mut log = UndoLog::default();
        log.record(UndoOp::Insert { table: "t".into(), rid: 1 });
        log.record(UndoOp::Delete { table: "t".into(), rid: 2, row: vec![Value::Bigint(1)] });
        assert_eq!(log.len(), 2);
        let ops = log.drain_reverse();
        assert!(matches!(ops[0], UndoOp::Delete { .. }));
        assert!(matches!(ops[1], UndoOp::Insert { .. }));
        assert!(log.is_empty());
    }
}
