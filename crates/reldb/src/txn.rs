//! Transaction support: write stamps plus an undo log.
//!
//! The engine runs statements in auto-commit mode unless a transaction is
//! open (`BEGIN` ... `COMMIT`/`ROLLBACK`, or [`crate::db::Database::transaction`]).
//! Every transaction — including the implicit one wrapping a single
//! auto-commit statement — gets a unique *stamp*; its writes carry the
//! stamp as an uncommitted marker in the version chains (see
//! [`crate::storage`]) and append an undo record here. Commit walks the log
//! forward finalizing markers to one freshly allocated epoch (so the whole
//! transaction becomes visible atomically); rollback replays the log in
//! reverse, surgically removing or re-opening exactly the versions the
//! stamp touched. This gives the atomicity and snapshot-consistent reads
//! the paper highlights as "the strongest suit for RDBMSs" that Db2 Graph
//! inherits (Section 1); the full isolation model is documented in
//! `docs/CONSISTENCY.md`.

use crate::index::RowId;
use crate::row::Row;

/// One reversible data modification.
#[derive(Debug, Clone)]
pub enum UndoOp {
    /// A row was inserted; undo removes the created version.
    Insert { table: String, rid: RowId },
    /// A row was deleted; undo re-opens the end-marked version. The old
    /// image is retained for diagnostics (the version chain itself is the
    /// source of truth for rollback).
    Delete { table: String, rid: RowId, row: Row },
    /// A row was updated; undo drops the new version and re-opens the old.
    Update { table: String, rid: RowId, old: Row },
}

impl UndoOp {
    /// Name of the table this operation touched.
    pub fn table(&self) -> &str {
        match self {
            UndoOp::Insert { table, .. }
            | UndoOp::Delete { table, .. }
            | UndoOp::Update { table, .. } => table,
        }
    }

    /// Row slot this operation touched.
    pub fn rid(&self) -> RowId {
        match self {
            UndoOp::Insert { rid, .. } | UndoOp::Delete { rid, .. } | UndoOp::Update { rid, .. } => {
                *rid
            }
        }
    }

    /// True for operations that leave a dead version behind on commit
    /// (update/delete end-mark a version; insert does not).
    pub fn creates_garbage(&self) -> bool {
        !matches!(self, UndoOp::Insert { .. })
    }
}

/// The undo log of an open transaction.
#[derive(Debug, Default)]
pub struct UndoLog {
    ops: Vec<UndoOp>,
}

impl UndoLog {
    pub fn record(&mut self, op: UndoOp) {
        self.ops.push(op);
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Operations in execution order (the commit path walks these forward).
    pub fn ops(&self) -> &[UndoOp] {
        &self.ops
    }

    /// Drain operations in reverse (rollback) order.
    pub fn drain_reverse(&mut self) -> Vec<UndoOp> {
        let mut ops = std::mem::take(&mut self.ops);
        ops.reverse();
        ops
    }
}

/// State of an open engine-level transaction: its write stamp, undo log,
/// and the thread that opened it (so re-entrant `transaction()` calls can
/// error instead of self-deadlocking on the writer gate).
#[derive(Debug)]
pub struct TxnState {
    pub stamp: u64,
    pub log: UndoLog,
    pub owner: std::thread::ThreadId,
}

impl TxnState {
    pub fn new(stamp: u64) -> TxnState {
        TxnState { stamp, log: UndoLog::default(), owner: std::thread::current().id() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn drain_reverses_order() {
        let mut log = UndoLog::default();
        log.record(UndoOp::Insert { table: "t".into(), rid: 1 });
        log.record(UndoOp::Delete { table: "t".into(), rid: 2, row: vec![Value::Bigint(1)] });
        assert_eq!(log.len(), 2);
        assert_eq!(log.ops()[0].table(), "t");
        assert_eq!(log.ops()[1].rid(), 2);
        let ops = log.drain_reverse();
        assert!(matches!(ops[0], UndoOp::Delete { .. }));
        assert!(matches!(ops[1], UndoOp::Insert { .. }));
        assert!(log.is_empty());
    }

    #[test]
    fn garbage_accounting_distinguishes_inserts() {
        assert!(!UndoOp::Insert { table: "t".into(), rid: 0 }.creates_garbage());
        assert!(UndoOp::Delete { table: "t".into(), rid: 0, row: vec![] }.creates_garbage());
        assert!(UndoOp::Update { table: "t".into(), rid: 0, old: vec![] }.creates_garbage());
    }
}
