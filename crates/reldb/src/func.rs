//! Polymorphic table functions.
//!
//! A table function appears in a FROM clause as
//! `TABLE(name(arg, ...)) AS alias (col type, ...)` and returns a row set.
//! This is the extension point the paper uses for its `graphQuery` function
//! (Section 4): the graph layer registers a function here so SQL queries can
//! consume Gremlin results as an ordinary table.
//!
//! As in the SQL standard's polymorphic table functions, the declared output
//! columns are passed to the function, so it can shape its result
//! accordingly (e.g. `graphQuery` chunks a stream of Gremlin values into
//! rows of the declared width).

use crate::error::DbResult;
use crate::row::RowSet;
use crate::value::{DataType, Value};

/// A function usable in `FROM TABLE(f(...))`.
pub trait TableFunction: Send + Sync {
    /// Evaluate for the given (already evaluated) arguments. `columns` is
    /// the column list declared at the call site (`AS alias (col type, ...)`).
    fn eval(&self, args: &[Value], columns: &[(String, DataType)]) -> DbResult<RowSet>;
}

/// Blanket impl so closures can be registered directly.
impl<F> TableFunction for F
where
    F: Fn(&[Value], &[(String, DataType)]) -> DbResult<RowSet> + Send + Sync,
{
    fn eval(&self, args: &[Value], columns: &[(String, DataType)]) -> DbResult<RowSet> {
        self(args, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_table_functions() {
        let f = |args: &[Value], cols: &[(String, DataType)]| -> DbResult<RowSet> {
            assert_eq!(cols.len(), 1);
            Ok(RowSet::with_rows(vec![cols[0].0.clone()], vec![vec![args[0].clone()]]))
        };
        let rs =
            TableFunction::eval(&f, &[Value::Bigint(3)], &[("n".to_string(), DataType::Bigint)])
                .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Bigint(3)));
        assert_eq!(rs.columns, vec!["n"]);
    }
}
