//! Prepared statements.
//!
//! A prepared statement is parsed once; executing it binds `?` parameters by
//! substitution into a copy of the AST. This is the mechanism behind the
//! paper's SQL Dialect module, which "creates a set of pre-compiled SQL
//! templates for these frequent patterns and issues the corresponding
//! prepare statements in Db2 to avoid the SQL compilation overhead at
//! runtime" (Section 6.1).

use std::sync::Arc;

use crate::error::{DbError, DbResult};
use crate::sql::ast::*;
use crate::sql::parser::parse_statement;
use crate::value::Value;

/// Generation value meaning "not stamped against any catalog state" — a
/// `Prepared` built directly (without a database) always executes as-is.
pub const GENERATION_ANY: u64 = u64::MAX;

/// A parsed statement ready for repeated parameterized execution.
#[derive(Debug, Clone)]
pub struct Prepared {
    pub sql: String,
    pub stmt: Arc<Stmt>,
    pub param_count: usize,
    /// Catalog generation this statement was prepared under (see
    /// [`crate::db::Database::schema_generation`]). Executing against a
    /// database whose generation moved on (DDL ran in between) forces a
    /// re-prepare, so cached plans can never read a dropped-and-recreated
    /// table through a stale layout.
    generation: u64,
}

impl Prepared {
    /// Parse and prepare a statement.
    pub fn new(sql: &str) -> DbResult<Prepared> {
        let stmt = parse_statement(sql)?;
        let param_count = count_params(&stmt);
        Ok(Prepared {
            sql: sql.to_string(),
            stmt: Arc::new(stmt),
            param_count,
            generation: GENERATION_ANY,
        })
    }

    /// Stamp this statement with the catalog generation it was prepared
    /// under (`Database::prepare` does this automatically).
    pub fn with_generation(mut self, generation: u64) -> Prepared {
        self.generation = generation;
        self
    }

    /// The catalog generation this statement was stamped with.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True when the statement was stamped under an older catalog
    /// generation than `current` and must be re-prepared before execution.
    pub fn is_stale(&self, current: u64) -> bool {
        self.generation != GENERATION_ANY && self.generation != current
    }

    /// Produce an executable statement with all `?` parameters bound.
    pub fn bind(&self, params: &[Value]) -> DbResult<Stmt> {
        if params.len() != self.param_count {
            return Err(DbError::Execution(format!(
                "statement expects {} parameters, got {}",
                self.param_count,
                params.len()
            )));
        }
        bind_stmt(&self.stmt, params)
    }
}

fn count_params(stmt: &Stmt) -> usize {
    let mut max: Option<usize> = None;
    visit_stmt_exprs(stmt, &mut |e| {
        e.walk(&mut |node| {
            if let Expr::Param(i) = node {
                max = Some(max.map_or(*i, |m: usize| m.max(*i)));
            }
        });
    });
    max.map(|m| m + 1).unwrap_or(0)
}

fn visit_stmt_exprs(stmt: &Stmt, f: &mut dyn FnMut(&Expr)) {
    match stmt {
        Stmt::Insert { values, .. } => {
            for row in values {
                for e in row {
                    f(e);
                }
            }
        }
        Stmt::Update { sets, where_clause, .. } => {
            for (_, e) in sets {
                f(e);
            }
            if let Some(w) = where_clause {
                f(w);
            }
        }
        Stmt::Delete { where_clause: Some(w), .. } => f(w),
        Stmt::Delete { .. } => {}
        Stmt::Select(q) | Stmt::Explain(q) => visit_select_exprs(q, f),
        Stmt::CreateView { query, .. } => visit_select_exprs(query, f),
        _ => {}
    }
}

fn visit_select_exprs(q: &SelectStmt, f: &mut dyn FnMut(&Expr)) {
    for item in &q.items {
        if let SelectItem::Expr { expr, .. } = item {
            f(expr);
        }
    }
    for fi in &q.from {
        visit_source_exprs(&fi.source, f);
        for j in &fi.joins {
            visit_source_exprs(&j.source, f);
            f(&j.on);
        }
    }
    if let Some(w) = &q.where_clause {
        f(w);
    }
    for e in &q.group_by {
        f(e);
    }
    if let Some(h) = &q.having {
        f(h);
    }
    for o in &q.order_by {
        f(&o.expr);
    }
}

fn visit_source_exprs(s: &TableSource, f: &mut dyn FnMut(&Expr)) {
    match s {
        TableSource::Function { args, .. } => {
            for a in args {
                f(a);
            }
        }
        TableSource::Subquery { query, .. } => visit_select_exprs(query, f),
        TableSource::Named { .. } => {}
    }
}

/// Clone a statement with parameters substituted as literals.
pub fn bind_stmt(stmt: &Stmt, params: &[Value]) -> DbResult<Stmt> {
    Ok(match stmt {
        Stmt::Insert { table, columns, values } => Stmt::Insert {
            table: table.clone(),
            columns: columns.clone(),
            values: values
                .iter()
                .map(|row| row.iter().map(|e| bind_expr(e, params)).collect::<DbResult<_>>())
                .collect::<DbResult<_>>()?,
        },
        Stmt::Update { table, sets, where_clause } => Stmt::Update {
            table: table.clone(),
            sets: sets
                .iter()
                .map(|(c, e)| Ok((c.clone(), bind_expr(e, params)?)))
                .collect::<DbResult<_>>()?,
            where_clause: where_clause.as_ref().map(|w| bind_expr(w, params)).transpose()?,
        },
        Stmt::Delete { table, where_clause } => Stmt::Delete {
            table: table.clone(),
            where_clause: where_clause.as_ref().map(|w| bind_expr(w, params)).transpose()?,
        },
        Stmt::Select(q) => Stmt::Select(Box::new(bind_select(q, params)?)),
        Stmt::Explain(q) => Stmt::Explain(Box::new(bind_select(q, params)?)),
        other => other.clone(),
    })
}

fn bind_select(q: &SelectStmt, params: &[Value]) -> DbResult<SelectStmt> {
    Ok(SelectStmt {
        distinct: q.distinct,
        items: q
            .items
            .iter()
            .map(|i| {
                Ok(match i {
                    SelectItem::Expr { expr, alias } => {
                        SelectItem::Expr { expr: bind_expr(expr, params)?, alias: alias.clone() }
                    }
                    other => other.clone(),
                })
            })
            .collect::<DbResult<_>>()?,
        from: q
            .from
            .iter()
            .map(|fi| {
                Ok(FromItem {
                    source: bind_source(&fi.source, params)?,
                    joins: fi
                        .joins
                        .iter()
                        .map(|j| {
                            Ok(Join {
                                source: bind_source(&j.source, params)?,
                                on: bind_expr(&j.on, params)?,
                                left_outer: j.left_outer,
                            })
                        })
                        .collect::<DbResult<_>>()?,
                })
            })
            .collect::<DbResult<_>>()?,
        where_clause: q.where_clause.as_ref().map(|w| bind_expr(w, params)).transpose()?,
        group_by: q.group_by.iter().map(|e| bind_expr(e, params)).collect::<DbResult<_>>()?,
        having: q.having.as_ref().map(|h| bind_expr(h, params)).transpose()?,
        order_by: q
            .order_by
            .iter()
            .map(|o| Ok(OrderItem { expr: bind_expr(&o.expr, params)?, desc: o.desc }))
            .collect::<DbResult<_>>()?,
        limit: q.limit,
    })
}

fn bind_source(s: &TableSource, params: &[Value]) -> DbResult<TableSource> {
    Ok(match s {
        TableSource::Function { name, args, alias, columns } => TableSource::Function {
            name: name.clone(),
            args: args.iter().map(|a| bind_expr(a, params)).collect::<DbResult<_>>()?,
            alias: alias.clone(),
            columns: columns.clone(),
        },
        TableSource::Subquery { query, alias } => TableSource::Subquery {
            query: Box::new(bind_select(query, params)?),
            alias: alias.clone(),
        },
        named => named.clone(),
    })
}

fn bind_expr(e: &Expr, params: &[Value]) -> DbResult<Expr> {
    Ok(match e {
        Expr::Param(i) => {
            let v = params.get(*i).ok_or_else(|| {
                DbError::Execution(format!("missing value for parameter ?{i}"))
            })?;
            Expr::Literal(v.clone())
        }
        Expr::Unary { op, expr } => Expr::Unary { op: *op, expr: Box::new(bind_expr(expr, params)?) },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(bind_expr(left, params)?),
            right: Box::new(bind_expr(right, params)?),
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(bind_expr(expr, params)?),
            list: list.iter().map(|x| bind_expr(x, params)).collect::<DbResult<_>>()?,
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(bind_expr(expr, params)?), negated: *negated }
        }
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(bind_expr(expr, params)?),
            pattern: Box::new(bind_expr(pattern, params)?),
            negated: *negated,
        },
        Expr::Function { name, args, distinct, star } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(|x| bind_expr(x, params)).collect::<DbResult<_>>()?,
            distinct: *distinct,
            star: *star,
        },
        other => other.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counting_covers_all_clauses() {
        let p = Prepared::new("SELECT * FROM t WHERE a = ? AND b IN (?, ?) ORDER BY c LIMIT 1")
            .unwrap();
        assert_eq!(p.param_count, 3);
        let p = Prepared::new("INSERT INTO t VALUES (?, ?)").unwrap();
        assert_eq!(p.param_count, 2);
        let p = Prepared::new("SELECT 1").unwrap();
        assert_eq!(p.param_count, 0);
    }

    #[test]
    fn bind_substitutes_literals() {
        let p = Prepared::new("SELECT * FROM t WHERE a = ?").unwrap();
        let bound = p.bind(&[Value::Bigint(42)]).unwrap();
        match bound {
            Stmt::Select(q) => match q.where_clause.unwrap() {
                Expr::Binary { right, .. } => {
                    assert_eq!(*right, Expr::Literal(Value::Bigint(42)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bind_checks_arity() {
        let p = Prepared::new("SELECT * FROM t WHERE a = ? AND b = ?").unwrap();
        assert!(p.bind(&[Value::Bigint(1)]).is_err());
        assert!(p.bind(&[Value::Bigint(1), Value::Bigint(2), Value::Bigint(3)]).is_err());
        assert!(p.bind(&[Value::Bigint(1), Value::Bigint(2)]).is_ok());
    }

    #[test]
    fn bind_reaches_table_function_args() {
        let p = Prepared::new(
            "SELECT * FROM TABLE(f(?)) AS x (a BIGINT) WHERE a > ?",
        )
        .unwrap();
        assert_eq!(p.param_count, 2);
        let bound = p.bind(&[Value::Varchar("q".into()), Value::Bigint(0)]).unwrap();
        match bound {
            Stmt::Select(q) => match &q.from[0].source {
                TableSource::Function { args, .. } => {
                    assert_eq!(args[0], Expr::Literal(Value::Varchar("q".into())));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}
