//! # reldb — an embedded relational engine substrate
//!
//! This crate plays the role IBM Db2 plays in the paper *"IBM Db2 Graph:
//! Supporting Synergistic and Retrofittable Graph Queries Inside IBM Db2"*
//! (SIGMOD 2020): an ordinary SQL database holding ordinary relational
//! tables, on top of which the `db2graph-core` crate overlays a property
//! graph without copying or transforming any data.
//!
//! It provides exactly the capabilities the graph layer relies on:
//!
//! * typed tables with primary/foreign-key metadata in a queryable catalog
//!   (consumed by AutoOverlay),
//! * a SQL subset with predicates, IN-lists, projections, aggregates,
//!   GROUP BY, ORDER BY, joins, and subqueries (the target language of the
//!   paper's SQL Dialect module),
//! * ordered indexes with point / IN-list / range probes chosen by a small
//!   planner (what makes pushed-down predicates fast),
//! * non-materialized views (the "derived edges" mechanism of Section 5),
//! * prepared statements (the SQL-template cache of Section 6.1),
//! * polymorphic table functions in FROM (the `graphQuery` hook of
//!   Section 4),
//! * multi-version storage with epoch snapshots: transactions commit
//!   atomically through an undo log, readers pin a [`Snapshot`] and see one
//!   committed state across arbitrarily many statements while writers
//!   proceed without blocking them (Figure 6; `docs/CONSISTENCY.md`).
//!
//! ## Quick example
//!
//! ```
//! use reldb::{Database, Value};
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE person (id BIGINT PRIMARY KEY, name VARCHAR)").unwrap();
//! db.execute("INSERT INTO person VALUES (1, 'Alice'), (2, 'Bob')").unwrap();
//! let rs = db.execute("SELECT name FROM person WHERE id = 2").unwrap();
//! assert_eq!(rs.scalar(), Some(&Value::Varchar("Bob".into())));
//! ```

pub mod checkpoint;
pub mod db;
pub mod durability;
pub mod error;
pub mod func;
pub mod index;
pub mod prepared;
pub mod row;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod storage;
pub mod txn;
pub mod value;

pub use db::{ChangeHook, Database, DbEvent, DbEventHook, Snapshot, ViewDef};
pub use durability::{CrashHook, CrashPoint, Durability, NetChange, WalTail, WalTailResult};
pub use error::{DbError, DbResult};
pub use func::TableFunction;
pub use index::{IndexDef, RowId};
pub use prepared::Prepared;
pub use row::{Row, RowSet};
pub use schema::{ColumnDef, ForeignKey, TableSchema};
pub use stats::{ExecStats, StatsSnapshot};
pub use storage::{ReadView, Table};
pub use value::{DataType, Value};
