//! Table schemas and integrity constraints.
//!
//! The catalog metadata here — column definitions, primary keys, and foreign
//! keys — is exactly what the paper's AutoOverlay toolkit consumes
//! (Section 5.1, Step 1: "queries Db2 catalog to get all the metadata
//! information for each table such as table schema, and primary key/foreign
//! key constraints").

use crate::error::{DbError, DbResult};
use crate::value::DataType;

/// Definition of a single table column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef { name: name.into(), data_type, nullable: true }
    }

    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }
}

/// A foreign key constraint: `columns` in this table reference
/// `ref_columns` of `ref_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    pub columns: Vec<String>,
    pub ref_table: String,
    pub ref_columns: Vec<String>,
}

/// Complete schema of a table: columns plus declared constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Primary key column names, if declared. Composite keys supported.
    pub primary_key: Option<Vec<String>>,
    pub foreign_keys: Vec<ForeignKey>,
    /// Additional UNIQUE constraints (each a set of column names).
    pub uniques: Vec<Vec<String>>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
            primary_key: None,
            foreign_keys: Vec::new(),
            uniques: Vec::new(),
        }
    }

    pub fn with_primary_key(mut self, cols: Vec<&str>) -> Self {
        self.primary_key = Some(cols.into_iter().map(str::to_string).collect());
        self
    }

    pub fn with_foreign_key(mut self, cols: Vec<&str>, ref_table: &str, ref_cols: Vec<&str>) -> Self {
        self.foreign_keys.push(ForeignKey {
            columns: cols.into_iter().map(str::to_string).collect(),
            ref_table: ref_table.to_string(),
            ref_columns: ref_cols.into_iter().map(str::to_string).collect(),
        });
        self
    }

    /// Position of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Like [`Self::column_index`] but returns a catalog error naming the
    /// table, for use during planning.
    pub fn require_column(&self, name: &str) -> DbResult<usize> {
        self.column_index(name).ok_or_else(|| {
            DbError::Catalog(format!("column '{}' not found in table '{}'", name, self.name))
        })
    }

    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    pub fn has_primary_key(&self) -> bool {
        self.primary_key.is_some()
    }

    /// True when `name` is one of the primary key columns.
    pub fn is_pk_column(&self, name: &str) -> bool {
        self.primary_key
            .as_ref()
            .map(|pk| pk.iter().any(|c| c.eq_ignore_ascii_case(name)))
            .unwrap_or(false)
    }

    /// True when `name` participates in any foreign key of this table.
    pub fn is_fk_column(&self, name: &str) -> bool {
        self.foreign_keys
            .iter()
            .any(|fk| fk.columns.iter().any(|c| c.eq_ignore_ascii_case(name)))
    }

    /// Validate internal consistency: unique column names, constraints
    /// referencing existing columns, PK columns implicitly NOT NULL.
    pub fn validate(&self) -> DbResult<()> {
        for (i, c) in self.columns.iter().enumerate() {
            if self.columns[..i].iter().any(|p| p.name.eq_ignore_ascii_case(&c.name)) {
                return Err(DbError::Catalog(format!(
                    "duplicate column '{}' in table '{}'",
                    c.name, self.name
                )));
            }
        }
        if let Some(pk) = &self.primary_key {
            if pk.is_empty() {
                return Err(DbError::Catalog(format!("empty primary key on '{}'", self.name)));
            }
            for col in pk {
                self.require_column(col)?;
            }
        }
        for fk in &self.foreign_keys {
            if fk.columns.is_empty() || fk.columns.len() != fk.ref_columns.len() {
                return Err(DbError::Catalog(format!(
                    "malformed foreign key on '{}': column count mismatch",
                    self.name
                )));
            }
            for col in &fk.columns {
                self.require_column(col)?;
            }
        }
        for u in &self.uniques {
            for col in u {
                self.require_column(col)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patient_schema() -> TableSchema {
        TableSchema::new(
            "Patient",
            vec![
                ColumnDef::new("patientID", DataType::Bigint).not_null(),
                ColumnDef::new("name", DataType::Varchar),
                ColumnDef::new("address", DataType::Varchar),
                ColumnDef::new("subscriptionID", DataType::Bigint),
            ],
        )
        .with_primary_key(vec!["patientID"])
    }

    #[test]
    fn column_lookup_case_insensitive() {
        let s = patient_schema();
        assert_eq!(s.column_index("PATIENTID"), Some(0));
        assert_eq!(s.column("Name").unwrap().data_type, DataType::Varchar);
        assert!(s.require_column("missing").is_err());
    }

    #[test]
    fn pk_and_fk_membership() {
        let s = TableSchema::new(
            "HasDisease",
            vec![
                ColumnDef::new("patientID", DataType::Bigint),
                ColumnDef::new("diseaseID", DataType::Bigint),
                ColumnDef::new("description", DataType::Varchar),
            ],
        )
        .with_foreign_key(vec!["patientID"], "Patient", vec!["patientID"])
        .with_foreign_key(vec!["diseaseID"], "Disease", vec!["diseaseID"]);
        assert!(s.is_fk_column("patientid"));
        assert!(s.is_fk_column("diseaseID"));
        assert!(!s.is_fk_column("description"));
        assert!(!s.is_pk_column("patientID"));
        assert!(!s.has_primary_key());
        assert_eq!(s.foreign_keys.len(), 2);
    }

    #[test]
    fn validate_rejects_duplicates_and_bad_constraints() {
        let dup = TableSchema::new(
            "T",
            vec![
                ColumnDef::new("a", DataType::Bigint),
                ColumnDef::new("A", DataType::Varchar),
            ],
        );
        assert!(dup.validate().is_err());

        let bad_pk = TableSchema::new("T", vec![ColumnDef::new("a", DataType::Bigint)])
            .with_primary_key(vec!["nope"]);
        assert!(bad_pk.validate().is_err());

        assert!(patient_schema().validate().is_ok());
    }
}
