//! In-memory table storage.
//!
//! Each table is a slotted heap of rows guarded by a `parking_lot::RwLock`,
//! with its secondary indexes maintained under the same lock so that readers
//! always observe index entries consistent with row contents. Per-table
//! locking is what lets many concurrent read-only graph queries proceed in
//! parallel — the property the paper credits for Db2 Graph's throughput win
//! in Figure 6 ("the underlying Db2 engine is extremely good at handling
//! concurrent queries").

use parking_lot::{RwLock, RwLockReadGuard};

use crate::error::{DbError, DbResult};
use crate::index::{Index, IndexDef, RowId};
use crate::row::Row;
use crate::schema::TableSchema;
use crate::value::Value;

/// Mutable state of a table: row slots plus all indexes.
#[derive(Debug, Default)]
pub struct TableData {
    slots: Vec<Option<Row>>,
    free: Vec<RowId>,
    live: usize,
    indexes: Vec<Index>,
}

impl TableData {
    /// Row by id, if the slot is live.
    pub fn row(&self, rid: RowId) -> Option<&Row> {
        self.slots.get(rid).and_then(|s| s.as_ref())
    }

    /// Iterate `(row_id, row)` over live rows.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(rid, s)| s.as_ref().map(|r| (rid, r)))
    }

    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Find an index whose column list (in order) equals `columns`
    /// case-insensitively, or whose leading columns match for prefix use.
    pub fn find_index(&self, columns: &[String]) -> Option<&Index> {
        self.indexes.iter().find(|ix| {
            ix.def.columns.len() == columns.len()
                && ix
                    .def
                    .columns
                    .iter()
                    .zip(columns)
                    .all(|(a, b)| a.eq_ignore_ascii_case(b))
        })
    }

    /// Find an index whose *first* column is `column` (prefix probe).
    pub fn find_index_on(&self, column: &str) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|ix| ix.def.columns.first().is_some_and(|c| c.eq_ignore_ascii_case(column)))
    }

    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }
}

/// A table: immutable schema plus lock-guarded data.
#[derive(Debug)]
pub struct Table {
    pub schema: TableSchema,
    data: RwLock<TableData>,
}

impl Table {
    /// Create an empty table. A unique index is automatically created on the
    /// primary key (as Db2 does), which both enforces PK uniqueness and
    /// gives the planner a point-probe access path on it.
    pub fn new(schema: TableSchema) -> DbResult<Table> {
        schema.validate()?;
        let mut data = TableData::default();
        if let Some(pk) = schema.primary_key.clone() {
            let positions: Vec<usize> = pk
                .iter()
                .map(|c| schema.require_column(c))
                .collect::<DbResult<_>>()?;
            data.indexes.push(Index::new(
                IndexDef {
                    name: format!("pk_{}", schema.name.to_ascii_lowercase()),
                    columns: pk,
                    unique: true,
                },
                positions,
            ));
        }
        for (n, u) in schema.uniques.iter().enumerate() {
            let positions: Vec<usize> = u
                .iter()
                .map(|c| schema.require_column(c))
                .collect::<DbResult<_>>()?;
            data.indexes.push(Index::new(
                IndexDef {
                    name: format!("uq_{}_{}", schema.name.to_ascii_lowercase(), n),
                    columns: u.clone(),
                    unique: true,
                },
                positions,
            ));
        }
        Ok(Table { schema, data: RwLock::new(data) })
    }

    /// Acquire the read guard for scanning / probing.
    pub fn read(&self) -> RwLockReadGuard<'_, TableData> {
        self.data.read()
    }

    /// Current number of live rows.
    pub fn row_count(&self) -> usize {
        self.data.read().len()
    }

    /// Type-check and coerce a row against the schema.
    fn check_row(&self, mut row: Row) -> DbResult<Row> {
        if row.len() != self.schema.columns.len() {
            return Err(DbError::Type(format!(
                "table '{}' expects {} columns, got {}",
                self.schema.name,
                self.schema.columns.len(),
                row.len()
            )));
        }
        for (i, col) in self.schema.columns.iter().enumerate() {
            let v = std::mem::replace(&mut row[i], Value::Null);
            let coerced = v.coerce_to(col.data_type).map_err(|e| {
                DbError::Type(format!("column '{}.{}': {e}", self.schema.name, col.name))
            })?;
            if coerced.is_null() && (!col.nullable || self.schema.is_pk_column(&col.name)) {
                return Err(DbError::Constraint(format!(
                    "NULL not allowed in column '{}.{}'",
                    self.schema.name, col.name
                )));
            }
            row[i] = coerced;
        }
        Ok(row)
    }

    /// Insert a full-width row; returns its row id.
    pub fn insert(&self, row: Row) -> DbResult<RowId> {
        let row = self.check_row(row)?;
        let mut data = self.data.write();
        let rid = match data.free.pop() {
            Some(rid) => rid,
            None => {
                data.slots.push(None);
                data.slots.len() - 1
            }
        };
        // Probe all unique indexes before mutating any of them so a
        // duplicate-key failure leaves the table untouched.
        let dup = data.indexes.iter().find_map(|ix| {
            if ix.def.unique {
                let key: Vec<Value> = ix.col_positions.iter().map(|&i| row[i].clone()).collect();
                if !key.iter().any(Value::is_null) && !ix.lookup_eq(&key).is_empty() {
                    return Some(ix.def.name.clone());
                }
            }
            None
        });
        if let Some(index_name) = dup {
            data.free.push(rid);
            return Err(DbError::Constraint(format!(
                "duplicate key in unique index '{index_name}' on table '{}'",
                self.schema.name
            )));
        }
        for ix in &mut data.indexes {
            ix.insert(&row, rid)?;
        }
        data.slots[rid] = Some(row);
        data.live += 1;
        Ok(rid)
    }

    /// Delete a row by id; returns the removed row.
    pub fn delete(&self, rid: RowId) -> DbResult<Row> {
        let mut data = self.data.write();
        let row = data
            .slots
            .get_mut(rid)
            .and_then(Option::take)
            .ok_or_else(|| DbError::Execution(format!("row {rid} not found")))?;
        for ix in &mut data.indexes {
            ix.remove(&row, rid);
        }
        data.free.push(rid);
        data.live -= 1;
        Ok(row)
    }

    /// Replace a row in place; returns the previous contents.
    pub fn update(&self, rid: RowId, new_row: Row) -> DbResult<Row> {
        let new_row = self.check_row(new_row)?;
        let mut data = self.data.write();
        let old = data
            .slots
            .get(rid)
            .and_then(|s| s.clone())
            .ok_or_else(|| DbError::Execution(format!("row {rid} not found")))?;
        // Unique checks against other rows.
        for ix in &data.indexes {
            if ix.def.unique {
                let key: Vec<Value> =
                    ix.col_positions.iter().map(|&i| new_row[i].clone()).collect();
                if !key.iter().any(Value::is_null)
                    && ix.lookup_eq(&key).iter().any(|&r| r != rid) {
                        return Err(DbError::Constraint(format!(
                            "duplicate key in unique index '{}' on table '{}'",
                            ix.def.name, self.schema.name
                        )));
                    }
            }
        }
        for ix in &mut data.indexes {
            ix.remove(&old, rid);
            ix.insert(&new_row, rid)?;
        }
        data.slots[rid] = Some(new_row);
        Ok(old)
    }

    /// Re-insert a previously deleted row under its original id (used by
    /// transaction rollback).
    pub fn restore(&self, rid: RowId, row: Row) -> DbResult<()> {
        let mut data = self.data.write();
        if data.slots.len() <= rid {
            data.slots.resize(rid + 1, None);
        }
        if data.slots[rid].is_some() {
            return Err(DbError::Txn(format!("slot {rid} occupied during restore")));
        }
        data.free.retain(|&r| r != rid);
        for ix in &mut data.indexes {
            ix.insert(&row, rid)?;
        }
        data.slots[rid] = Some(row);
        data.live += 1;
        Ok(())
    }

    /// Create a new secondary index and backfill it from existing rows.
    pub fn create_index(&self, def: IndexDef) -> DbResult<()> {
        let positions: Vec<usize> = def
            .columns
            .iter()
            .map(|c| self.schema.require_column(c))
            .collect::<DbResult<_>>()?;
        let mut data = self.data.write();
        if data.indexes.iter().any(|ix| ix.def.name.eq_ignore_ascii_case(&def.name)) {
            return Err(DbError::Catalog(format!("index '{}' already exists", def.name)));
        }
        let mut ix = Index::new(def, positions);
        let pairs: Vec<(RowId, Row)> =
            data.iter().map(|(rid, row)| (rid, row.clone())).collect();
        for (rid, row) in &pairs {
            ix.insert(row, *rid)?;
        }
        data.indexes.push(ix);
        Ok(())
    }

    /// Drop a secondary index by name. The implicit PK index cannot be dropped.
    pub fn drop_index(&self, name: &str) -> DbResult<()> {
        let mut data = self.data.write();
        let pos = data
            .indexes
            .iter()
            .position(|ix| ix.def.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| DbError::Catalog(format!("index '{name}' not found")))?;
        if data.indexes[pos].def.name.starts_with("pk_") {
            return Err(DbError::Catalog("cannot drop primary key index".into()));
        }
        data.indexes.remove(pos);
        Ok(())
    }

    /// Approximate bytes used by live rows (storage accounting for Table 3).
    pub fn approx_bytes(&self) -> usize {
        let data = self.data.read();
        data.iter()
            .map(|(_, row)| {
                row.iter()
                    .map(|v| match v {
                        Value::Varchar(s) => 24 + s.len(),
                        _ => 16,
                    })
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn table() -> Table {
        Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", DataType::Bigint).not_null(),
                    ColumnDef::new("name", DataType::Varchar),
                ],
            )
            .with_primary_key(vec!["id"]),
        )
        .unwrap()
    }

    #[test]
    fn insert_scan_delete() {
        let t = table();
        let r1 = t.insert(vec![Value::Bigint(1), Value::Varchar("a".into())]).unwrap();
        let r2 = t.insert(vec![Value::Bigint(2), Value::Varchar("b".into())]).unwrap();
        assert_eq!(t.row_count(), 2);
        {
            let d = t.read();
            assert_eq!(d.row(r1).unwrap()[1], Value::Varchar("a".into()));
            assert_eq!(d.iter().count(), 2);
        }
        let gone = t.delete(r2).unwrap();
        assert_eq!(gone[0], Value::Bigint(2));
        assert_eq!(t.row_count(), 1);
        // Slot is recycled.
        let r3 = t.insert(vec![Value::Bigint(3), Value::Null]).unwrap();
        assert_eq!(r3, r2);
    }

    #[test]
    fn pk_uniqueness_enforced_via_auto_index() {
        let t = table();
        t.insert(vec![Value::Bigint(1), Value::Null]).unwrap();
        let err = t.insert(vec![Value::Bigint(1), Value::Null]).unwrap_err();
        assert!(matches!(err, DbError::Constraint(_)));
        // Failed insert must not leak a slot or index entry.
        assert_eq!(t.row_count(), 1);
        t.insert(vec![Value::Bigint(2), Value::Null]).unwrap();
    }

    #[test]
    fn pk_rejects_null_and_wrong_arity() {
        let t = table();
        assert!(matches!(
            t.insert(vec![Value::Null, Value::Null]).unwrap_err(),
            DbError::Constraint(_)
        ));
        assert!(matches!(
            t.insert(vec![Value::Bigint(1)]).unwrap_err(),
            DbError::Type(_)
        ));
    }

    #[test]
    fn update_maintains_indexes() {
        let t = table();
        let rid = t.insert(vec![Value::Bigint(1), Value::Varchar("a".into())]).unwrap();
        t.insert(vec![Value::Bigint(2), Value::Null]).unwrap();
        // Moving row 1 onto pk 2 must fail.
        assert!(t.update(rid, vec![Value::Bigint(2), Value::Null]).is_err());
        t.update(rid, vec![Value::Bigint(5), Value::Varchar("z".into())]).unwrap();
        let d = t.read();
        let ix = d.find_index_on("id").unwrap();
        assert_eq!(ix.lookup_eq(&[Value::Bigint(5)]), vec![rid]);
        assert!(ix.lookup_eq(&[Value::Bigint(1)]).is_empty());
    }

    #[test]
    fn secondary_index_backfill_and_drop() {
        let t = table();
        for i in 0..10 {
            t.insert(vec![Value::Bigint(i), Value::Varchar(format!("n{}", i % 3))]).unwrap();
        }
        t.create_index(IndexDef { name: "ix_name".into(), columns: vec!["name".into()], unique: false })
            .unwrap();
        {
            let d = t.read();
            let ix = d.find_index_on("name").unwrap();
            assert_eq!(ix.lookup_eq(&[Value::Varchar("n0".into())]).len(), 4);
        }
        assert!(t.create_index(IndexDef { name: "ix_name".into(), columns: vec!["name".into()], unique: false }).is_err());
        t.drop_index("ix_name").unwrap();
        assert!(t.drop_index("ix_name").is_err());
        assert!(t.drop_index("pk_t").is_err());
    }

    #[test]
    fn restore_after_delete_roundtrips() {
        let t = table();
        let rid = t.insert(vec![Value::Bigint(7), Value::Varchar("x".into())]).unwrap();
        let row = t.delete(rid).unwrap();
        t.restore(rid, row).unwrap();
        assert_eq!(t.row_count(), 1);
        let d = t.read();
        assert_eq!(d.row(rid).unwrap()[0], Value::Bigint(7));
    }
}
