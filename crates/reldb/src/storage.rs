//! In-memory versioned table storage (epoch-based MVCC).
//!
//! Each table is a slotted heap guarded by a `parking_lot::RwLock`; every
//! slot holds a small *version chain* rather than a single row. A version
//! carries a `begin` and an `end` stamp: while its writing transaction is
//! uncommitted both are *markers* (`TXN_BIT | txn_stamp`); at commit the
//! database finalizes markers to a freshly allocated commit epoch. Readers
//! evaluate visibility against a [`ReadView`] — either "latest committed
//! plus my own writes" (the write path and plain statements) or a pinned
//! commit epoch (snapshot reads used by the graph layer), so a multi-
//! statement traversal observes one database state while writers proceed
//! without blocking readers. This is what lets the overlay inherit the
//! "strongest suit for RDBMSs" the paper claims for Db2 Graph (Section 1)
//! and still keep the Figure 6 concurrency win: readers never block, and
//! secondary indexes are maintained under the same lock so index entries
//! are never *missing* for a visible version (stale extra entries are
//! filtered by re-checking visibility and predicates at read time).
//!
//! Dead versions (committed `end` stamps) are retained until no registered
//! snapshot could still see them, then reclaimed by [`Table::vacuum`]
//! (driven by the database's garbage counter — see `docs/CONSISTENCY.md`).

use parking_lot::{RwLock, RwLockReadGuard};

use crate::error::{DbError, DbResult};
use crate::index::{Index, IndexDef, RowId};
use crate::row::Row;
use crate::schema::TableSchema;
use crate::value::Value;

/// High bit marking an uncommitted begin/end stamp (`TXN_BIT | txn_stamp`).
pub const TXN_BIT: u64 = 1 << 63;

/// `end` value of a version that has not been deleted or superseded.
pub const NO_END: u64 = u64::MAX;

/// Snapshot value that admits every committed epoch ("read latest").
pub const LATEST: u64 = TXN_BIT - 1;

/// A reader's view of the database: which commit epochs are visible and
/// which in-flight transaction (if any) counts as "my own writes".
///
/// `stamp == 0` means "no transaction" — only committed versions are seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadView {
    /// Highest commit epoch visible to this view.
    pub snap: u64,
    /// Stamp of the transaction whose uncommitted writes are visible.
    pub stamp: u64,
}

impl ReadView {
    /// A view pinned to one commit epoch (snapshot isolation for reads).
    pub fn committed(epoch: u64) -> ReadView {
        ReadView { snap: epoch, stamp: 0 }
    }

    /// A view that sees every committed version plus the given
    /// transaction's own uncommitted writes (read-latest; `stamp == 0`
    /// for plain auto-commit reads).
    pub fn latest(stamp: u64) -> ReadView {
        ReadView { snap: LATEST, stamp }
    }

    fn marker(&self) -> u64 {
        TXN_BIT | self.stamp
    }
}

/// One version of a row: the payload plus its visibility interval.
#[derive(Debug, Clone)]
struct Version {
    begin: u64,
    end: u64,
    row: Row,
}

impl Version {
    /// True when `end` is a committed epoch (neither open nor a marker).
    fn end_committed(&self) -> bool {
        self.end & TXN_BIT == 0
    }

    /// True when this version is the slot's current image (not deleted or
    /// superseded, committed or not).
    fn is_current(&self) -> bool {
        self.end == NO_END
    }

    /// Visibility under MVCC: the version must have begun within the view
    /// (committed at or before `snap`, or written by the view's own
    /// transaction) and must not have ended within it.
    fn visible(&self, view: &ReadView) -> bool {
        let begun = if self.begin & TXN_BIT != 0 {
            view.stamp != 0 && self.begin == view.marker()
        } else {
            self.begin <= view.snap
        };
        if !begun {
            return false;
        }
        if self.end == NO_END {
            return true;
        }
        if self.end & TXN_BIT != 0 {
            // Uncommitted delete: invisible only to the deleting transaction.
            !(view.stamp != 0 && self.end == view.marker())
        } else {
            self.end > view.snap
        }
    }
}

/// Mutable state of a table: version chains plus all indexes.
#[derive(Debug, Default)]
pub struct TableData {
    slots: Vec<Vec<Version>>,
    free: Vec<RowId>,
    /// Count of current versions (committed or not) — the table cardinality
    /// the planner and `row_count` report.
    live: usize,
    /// Committed-dead versions retained for older snapshots; drives vacuum.
    garbage: usize,
    indexes: Vec<Index>,
}

fn same_key(ix: &Index, a: &Row, b: &Row) -> bool {
    ix.col_positions.iter().all(|&i| a[i] == b[i])
}

impl TableData {
    /// Row by id as seen from `view`.
    pub fn row_at(&self, rid: RowId, view: &ReadView) -> Option<&Row> {
        self.slots
            .get(rid)?
            .iter()
            .rev()
            .find(|v| v.visible(view))
            .map(|v| &v.row)
    }

    /// Iterate `(row_id, row)` over rows visible to `view`.
    pub fn iter_at(&self, view: ReadView) -> impl Iterator<Item = (RowId, &Row)> {
        self.slots.iter().enumerate().filter_map(move |(rid, slot)| {
            slot.iter().rev().find(|v| v.visible(&view)).map(|v| (rid, &v.row))
        })
    }

    /// Row by id, if the slot has a current (not deleted or superseded)
    /// version — the write path's view of the table.
    pub fn row(&self, rid: RowId) -> Option<&Row> {
        self.slots
            .get(rid)?
            .iter()
            .rfind(|v| v.is_current())
            .map(|v| &v.row)
    }

    /// Iterate `(row_id, row)` over current versions.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.slots.iter().enumerate().filter_map(|(rid, slot)| {
            slot.iter().rfind(|v| v.is_current()).map(|v| (rid, &v.row))
        })
    }

    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total stored versions across all slots (introspection for tests and
    /// vacuum accounting).
    pub fn version_count(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Committed-dead versions awaiting vacuum.
    pub fn garbage_versions(&self) -> usize {
        self.garbage
    }

    /// Find an index whose column list (in order) equals `columns`
    /// case-insensitively, or whose leading columns match for prefix use.
    pub fn find_index(&self, columns: &[String]) -> Option<&Index> {
        self.indexes.iter().find(|ix| {
            ix.def.columns.len() == columns.len()
                && ix
                    .def
                    .columns
                    .iter()
                    .zip(columns)
                    .all(|(a, b)| a.eq_ignore_ascii_case(b))
        })
    }

    /// Find an index whose *first* column is `column` (prefix probe).
    pub fn find_index_on(&self, column: &str) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|ix| ix.def.columns.first().is_some_and(|c| c.eq_ignore_ascii_case(column)))
    }

    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Is `key` taken in unique index `ix_pos` by any version that is
    /// current or uncommitted-deleted (a rolled-back delete would revive
    /// it)? Index entries can be stale under MVCC, so each candidate's row
    /// is re-checked against the key. Conservative: a *foreign*
    /// uncommitted delete still blocks re-use of its key until the
    /// deleting transaction commits — but a version the inserting
    /// transaction (`stamp`) end-marked itself does not occupy the key, so
    /// DELETE-then-INSERT of the same key inside one transaction works.
    fn key_occupied(&self, ix_pos: usize, key: &[Value], exclude: Option<RowId>, stamp: u64) -> bool {
        let own_delete = TXN_BIT | stamp;
        let ix = &self.indexes[ix_pos];
        ix.lookup_eq(key).into_iter().any(|rid| {
            if exclude == Some(rid) {
                return false;
            }
            self.slots[rid].iter().any(|v| {
                v.end & TXN_BIT != 0
                    && v.end != own_delete
                    && ix.col_positions.iter().map(|&i| &v.row[i]).eq(key.iter())
            })
        })
    }
}

/// A table: immutable schema plus lock-guarded versioned data.
#[derive(Debug)]
pub struct Table {
    pub schema: TableSchema,
    data: RwLock<TableData>,
}

impl Table {
    /// Create an empty table. A unique index is automatically created on the
    /// primary key (as Db2 does), which both enforces PK uniqueness and
    /// gives the planner a point-probe access path on it.
    pub fn new(schema: TableSchema) -> DbResult<Table> {
        schema.validate()?;
        let mut data = TableData::default();
        if let Some(pk) = schema.primary_key.clone() {
            let positions: Vec<usize> = pk
                .iter()
                .map(|c| schema.require_column(c))
                .collect::<DbResult<_>>()?;
            data.indexes.push(Index::new_auto(
                IndexDef {
                    name: format!("pk_{}", schema.name.to_ascii_lowercase()),
                    columns: pk,
                    unique: true,
                },
                positions,
            ));
        }
        for (n, u) in schema.uniques.iter().enumerate() {
            let positions: Vec<usize> = u
                .iter()
                .map(|c| schema.require_column(c))
                .collect::<DbResult<_>>()?;
            data.indexes.push(Index::new_auto(
                IndexDef {
                    name: format!("uq_{}_{}", schema.name.to_ascii_lowercase(), n),
                    columns: u.clone(),
                    unique: true,
                },
                positions,
            ));
        }
        Ok(Table { schema, data: RwLock::new(data) })
    }

    /// Acquire the read guard for scanning / probing.
    pub fn read(&self) -> RwLockReadGuard<'_, TableData> {
        self.data.read()
    }

    /// Current number of live rows.
    pub fn row_count(&self) -> usize {
        self.data.read().len()
    }

    /// Type-check and coerce a row against the schema.
    fn check_row(&self, mut row: Row) -> DbResult<Row> {
        if row.len() != self.schema.columns.len() {
            return Err(DbError::Type(format!(
                "table '{}' expects {} columns, got {}",
                self.schema.name,
                self.schema.columns.len(),
                row.len()
            )));
        }
        for (i, col) in self.schema.columns.iter().enumerate() {
            let v = std::mem::replace(&mut row[i], Value::Null);
            let coerced = v.coerce_to(col.data_type).map_err(|e| {
                DbError::Type(format!("column '{}.{}': {e}", self.schema.name, col.name))
            })?;
            if coerced.is_null() && (!col.nullable || self.schema.is_pk_column(&col.name)) {
                return Err(DbError::Constraint(format!(
                    "NULL not allowed in column '{}.{}'",
                    self.schema.name, col.name
                )));
            }
            row[i] = coerced;
        }
        Ok(row)
    }

    fn write_locked(&self, rid: RowId) -> DbError {
        DbError::Txn(format!(
            "row {rid} in table '{}' is write-locked by a concurrent transaction",
            self.schema.name
        ))
    }

    fn conflict_or_missing(&self, slot: &[Version], rid: RowId, marker: u64) -> DbError {
        if slot.iter().any(|v| v.end & TXN_BIT != 0 && v.end != NO_END && v.end != marker) {
            self.write_locked(rid)
        } else {
            DbError::Execution(format!("row {rid} not found"))
        }
    }

    /// Insert a full-width row with an uncommitted begin stamp; returns its
    /// row id. The version becomes durable when the owning transaction
    /// finalizes the stamp to a commit epoch.
    pub fn insert(&self, row: Row, stamp: u64) -> DbResult<RowId> {
        let row = self.check_row(row)?;
        let mut data = self.data.write();
        // Probe all unique indexes before mutating any of them so a
        // duplicate-key failure leaves the table untouched.
        for i in 0..data.indexes.len() {
            if !data.indexes[i].def.unique {
                continue;
            }
            let key: Vec<Value> =
                data.indexes[i].col_positions.iter().map(|&c| row[c].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            if data.key_occupied(i, &key, None, stamp) {
                return Err(DbError::Constraint(format!(
                    "duplicate key in unique index '{}' on table '{}'",
                    data.indexes[i].def.name, self.schema.name
                )));
            }
        }
        let rid = match data.free.pop() {
            Some(rid) => rid,
            None => {
                data.slots.push(Vec::new());
                data.slots.len() - 1
            }
        };
        // Freed slots carry no versions and no index entries, so a plain
        // posting insert cannot create a duplicate (key, rid) pair.
        for ix in &mut data.indexes {
            ix.insert(&row, rid);
        }
        data.slots[rid].push(Version { begin: TXN_BIT | stamp, end: NO_END, row });
        data.live += 1;
        Ok(rid)
    }

    /// Mark the current version of `rid` as deleted by `stamp`; returns the
    /// deleted row image. Index entries are retained for older snapshots
    /// and reclaimed by vacuum. A current version another transaction
    /// created and has not yet committed is a write conflict: end-marking
    /// it would orphan that transaction's rollback.
    pub fn delete(&self, rid: RowId, stamp: u64) -> DbResult<Row> {
        let marker = TXN_BIT | stamp;
        let mut data = self.data.write();
        let slot = data
            .slots
            .get_mut(rid)
            .ok_or_else(|| DbError::Execution(format!("row {rid} not found")))?;
        let row = match slot.iter_mut().rfind(|v| v.is_current()) {
            Some(v) => {
                if v.begin & TXN_BIT != 0 && v.begin != marker {
                    return Err(self.write_locked(rid));
                }
                v.end = marker;
                v.row.clone()
            }
            None => return Err(self.conflict_or_missing(slot, rid, marker)),
        };
        data.live -= 1;
        Ok(row)
    }

    /// Supersede the current version of `rid` with `new_row` under `stamp`;
    /// returns the previous image. As with [`Table::delete`], a current
    /// version belonging to another uncommitted transaction is a write
    /// conflict, not a silent overwrite.
    pub fn update(&self, rid: RowId, new_row: Row, stamp: u64) -> DbResult<Row> {
        let new_row = self.check_row(new_row)?;
        let marker = TXN_BIT | stamp;
        let mut data = self.data.write();
        let cur_pos = match data.slots.get(rid) {
            Some(slot) => match slot.iter().rposition(Version::is_current) {
                Some(p) => {
                    if slot[p].begin & TXN_BIT != 0 && slot[p].begin != marker {
                        return Err(self.write_locked(rid));
                    }
                    p
                }
                None => return Err(self.conflict_or_missing(slot, rid, marker)),
            },
            None => return Err(DbError::Execution(format!("row {rid} not found"))),
        };
        // Unique checks against other rows.
        for i in 0..data.indexes.len() {
            if !data.indexes[i].def.unique {
                continue;
            }
            let key: Vec<Value> =
                data.indexes[i].col_positions.iter().map(|&c| new_row[c].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            if data.key_occupied(i, &key, Some(rid), stamp) {
                return Err(DbError::Constraint(format!(
                    "duplicate key in unique index '{}' on table '{}'",
                    data.indexes[i].def.name, self.schema.name
                )));
            }
        }
        let old = {
            let v = &mut data.slots[rid][cur_pos];
            v.end = marker;
            v.row.clone()
        };
        // Postings for unchanged keys already exist; add entries only where
        // the key changed, and dedup against entries left by even older
        // versions of this slot.
        for i in 0..data.indexes.len() {
            if !same_key(&data.indexes[i], &old, &new_row) {
                data.indexes[i].insert_unique_rid(&new_row, rid);
            }
        }
        data.slots[rid].push(Version { begin: marker, end: NO_END, row: new_row });
        Ok(old)
    }

    /// Commit: rewrite `stamp`'s markers on `rid` to the allocated `epoch`.
    pub(crate) fn finalize_stamp(&self, rid: RowId, stamp: u64, epoch: u64) {
        let marker = TXN_BIT | stamp;
        let mut data = self.data.write();
        let mut ended = 0usize;
        if let Some(slot) = data.slots.get_mut(rid) {
            for v in slot.iter_mut() {
                if v.begin == marker {
                    v.begin = epoch;
                }
                if v.end == marker {
                    v.end = epoch;
                    ended += 1;
                }
            }
        }
        data.garbage += ended;
    }

    /// Roll back an insert: remove the uncommitted version `stamp` created
    /// in `rid`, along with index entries no surviving version still needs.
    pub(crate) fn rollback_insert(&self, rid: RowId, stamp: u64) -> DbResult<()> {
        let marker = TXN_BIT | stamp;
        let mut data = self.data.write();
        let TableData { slots, free, live, indexes, .. } = &mut *data;
        let slot = slots
            .get_mut(rid)
            .ok_or_else(|| DbError::Txn(format!("rollback: slot {rid} missing")))?;
        let pos = slot
            .iter()
            .rposition(|v| v.begin == marker && v.end == NO_END)
            .ok_or_else(|| {
                DbError::Txn(format!("rollback: inserted version for row {rid} missing"))
            })?;
        let gone = slot.remove(pos);
        for ix in indexes.iter_mut() {
            if !slot.iter().any(|s| same_key(ix, &s.row, &gone.row)) {
                ix.remove(&gone.row, rid);
            }
        }
        if slot.is_empty() {
            free.push(rid);
        }
        *live -= 1;
        Ok(())
    }

    /// Roll back a delete: re-open the version `stamp` end-marked in `rid`.
    pub(crate) fn rollback_delete(&self, rid: RowId, stamp: u64) -> DbResult<()> {
        let marker = TXN_BIT | stamp;
        let mut data = self.data.write();
        let slot = data
            .slots
            .get_mut(rid)
            .ok_or_else(|| DbError::Txn(format!("rollback: slot {rid} missing")))?;
        let v = slot.iter_mut().rfind(|v| v.end == marker).ok_or_else(|| {
            DbError::Txn(format!("rollback: deleted version for row {rid} missing"))
        })?;
        v.end = NO_END;
        data.live += 1;
        Ok(())
    }

    /// Roll back an update: drop the uncommitted new image and re-open the
    /// version it superseded. Processing undo records in reverse order
    /// unwinds multi-update chains one hop at a time.
    pub(crate) fn rollback_update(&self, rid: RowId, stamp: u64) -> DbResult<()> {
        let marker = TXN_BIT | stamp;
        let mut data = self.data.write();
        let TableData { slots, indexes, .. } = &mut *data;
        let slot = slots
            .get_mut(rid)
            .ok_or_else(|| DbError::Txn(format!("rollback: slot {rid} missing")))?;
        let pos = slot
            .iter()
            .rposition(|v| v.begin == marker && v.end == NO_END)
            .ok_or_else(|| {
                DbError::Txn(format!("rollback: updated version for row {rid} missing"))
            })?;
        let gone = slot.remove(pos);
        for ix in indexes.iter_mut() {
            if !slot.iter().any(|s| same_key(ix, &s.row, &gone.row)) {
                ix.remove(&gone.row, rid);
            }
        }
        let prev = slot.iter_mut().rfind(|v| v.end == marker).ok_or_else(|| {
            DbError::Txn(format!("rollback: superseded version for row {rid} missing"))
        })?;
        prev.end = NO_END;
        Ok(())
    }

    /// Reclaim committed-dead versions invisible to every snapshot at or
    /// above `horizon`. Removes index entries no surviving version shares
    /// and returns slots that became empty to the free list. Returns the
    /// number of versions reclaimed.
    pub fn vacuum(&self, horizon: u64) -> usize {
        let mut data = self.data.write();
        if data.garbage == 0 {
            return 0;
        }
        let TableData { slots, free, garbage, indexes, .. } = &mut *data;
        let mut removed = 0usize;
        let mut remaining = 0usize;
        for (rid, slot) in slots.iter_mut().enumerate() {
            if slot.is_empty() {
                continue;
            }
            if !slot.iter().any(|v| v.end_committed() && v.end <= horizon) {
                remaining += slot.iter().filter(|v| v.end_committed()).count();
                continue;
            }
            let mut kept = Vec::with_capacity(slot.len());
            let mut dead = Vec::new();
            for v in slot.drain(..) {
                if v.end_committed() && v.end <= horizon {
                    dead.push(v);
                } else {
                    kept.push(v);
                }
            }
            *slot = kept;
            removed += dead.len();
            for v in &dead {
                for ix in indexes.iter_mut() {
                    if !slot.iter().any(|s| same_key(ix, &s.row, &v.row)) {
                        ix.remove(&v.row, rid);
                    }
                }
            }
            if slot.is_empty() {
                free.push(rid);
            }
            remaining += slot.iter().filter(|v| v.end_committed()).count();
        }
        *garbage = remaining;
        removed
    }

    /// Create a new secondary index and backfill it from existing versions
    /// (all of them, so probes under older snapshots stay complete).
    pub fn create_index(&self, def: IndexDef) -> DbResult<()> {
        let positions: Vec<usize> = def
            .columns
            .iter()
            .map(|c| self.schema.require_column(c))
            .collect::<DbResult<_>>()?;
        let mut data = self.data.write();
        if data.indexes.iter().any(|ix| ix.def.name.eq_ignore_ascii_case(&def.name)) {
            return Err(DbError::Catalog(format!("index '{}' already exists", def.name)));
        }
        let mut ix = Index::new(def, positions);
        if ix.def.unique {
            // Uniqueness is enforced by the table (version-aware), so
            // validate existing data here before accepting the definition.
            let mut seen: std::collections::HashSet<Vec<Value>> = Default::default();
            for (_, row) in data.iter() {
                let key: Vec<Value> = ix.col_positions.iter().map(|&i| row[i].clone()).collect();
                if !key.iter().any(Value::is_null) && !seen.insert(key) {
                    return Err(DbError::Constraint(format!(
                        "cannot create unique index '{}': duplicate key in table '{}'",
                        ix.def.name, self.schema.name
                    )));
                }
            }
        }
        for (rid, slot) in data.slots.iter().enumerate() {
            for (vi, v) in slot.iter().enumerate() {
                if slot[..vi].iter().any(|p| same_key(&ix, &p.row, &v.row)) {
                    continue;
                }
                ix.insert(&v.row, rid);
            }
        }
        data.indexes.push(ix);
        Ok(())
    }

    /// Drop a secondary index by name. Indexes implied by the schema
    /// (primary key / UNIQUE) enforce constraints and cannot be dropped.
    pub fn drop_index(&self, name: &str) -> DbResult<()> {
        let mut data = self.data.write();
        let pos = data
            .indexes
            .iter()
            .position(|ix| ix.def.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| DbError::Catalog(format!("index '{name}' not found")))?;
        if data.indexes[pos].auto {
            return Err(DbError::Catalog(format!(
                "cannot drop index '{name}': it enforces a schema constraint"
            )));
        }
        data.indexes.remove(pos);
        Ok(())
    }

    // ------------------------------------------------ durability support

    /// Net effect of transaction `stamp` on `rid`, read *before* the
    /// stamp is finalized: the final row image if a version written by
    /// `stamp` is current, a deletion if `stamp` end-marked a pre-existing
    /// version, or nothing (insert-then-delete inside one transaction).
    /// Intermediate versions of a multi-update chain are invisible to
    /// every post-recovery reader, so the WAL never carries them.
    pub(crate) fn net_change(&self, rid: RowId, stamp: u64) -> Option<crate::durability::NetChange> {
        use crate::durability::NetChange;
        let marker = TXN_BIT | stamp;
        let data = self.data.read();
        let slot = data.slots.get(rid)?;
        if let Some(v) = slot.iter().rev().find(|v| v.begin == marker && v.end == NO_END) {
            return Some(NetChange::Put(v.row.clone()));
        }
        if slot.iter().any(|v| v.end == marker && v.begin != marker) {
            return Some(NetChange::Del);
        }
        None
    }

    /// Serialize for a checkpoint: slot-array length plus `(rid, begin,
    /// row)` for every version visible at commit epoch `epoch`. The
    /// caller guarantees (via the checkpoint floor) that vacuum cannot
    /// reclaim those versions while this runs.
    pub(crate) fn checkpoint_rows(&self, epoch: u64) -> (u64, Vec<(RowId, u64, Row)>) {
        let view = ReadView::committed(epoch);
        let data = self.data.read();
        let rows = data
            .slots
            .iter()
            .enumerate()
            .filter_map(|(rid, slot)| {
                slot.iter()
                    .rev()
                    .find(|v| v.visible(&view))
                    .map(|v| (rid, v.begin, v.row.clone()))
            })
            .collect();
        (data.slots.len() as u64, rows)
    }

    /// Index definitions beyond the schema-implied ones auto-created by
    /// [`Table::new`] — what a checkpoint must persist so `CREATE INDEX`
    /// statements already rotated out of the WAL survive. Provenance is
    /// the [`Index::auto`] flag, not the `pk_*`/`uq_*_<n>` naming scheme:
    /// a user index that happens to use such a name is still persisted.
    pub(crate) fn secondary_index_defs(&self) -> Vec<IndexDef> {
        self.data
            .read()
            .indexes
            .iter()
            .filter(|ix| !ix.auto)
            .map(|ix| ix.def.clone())
            .collect()
    }

    /// Grow the slot array to `n` entries (checkpoint restore preserves
    /// row-id positions even for trailing empty slots).
    pub(crate) fn ensure_slots(&self, n: usize) {
        let mut data = self.data.write();
        if data.slots.len() < n {
            data.slots.resize_with(n, Vec::new);
        }
    }

    /// Load one committed version verbatim (checkpoint restore). Indexes
    /// and bookkeeping are rebuilt afterwards by
    /// [`Table::rebuild_indexes`] / [`Table::recompute_bookkeeping`].
    pub(crate) fn load_version(&self, rid: RowId, begin: u64, row: Row) {
        let mut data = self.data.write();
        if data.slots.len() <= rid {
            data.slots.resize_with(rid + 1, Vec::new);
        }
        data.slots[rid].push(Version { begin, end: NO_END, row });
    }

    /// Replay a committed put from the WAL: end-mark the current version
    /// (an update) or start a fresh chain (an insert) at `epoch`.
    pub(crate) fn replay_put(&self, rid: RowId, row: Row, epoch: u64) {
        let mut data = self.data.write();
        if data.slots.len() <= rid {
            data.slots.resize_with(rid + 1, Vec::new);
        }
        if let Some(v) = data.slots[rid].iter_mut().rfind(|v| v.is_current()) {
            v.end = epoch;
        }
        data.slots[rid].push(Version { begin: epoch, end: NO_END, row });
    }

    /// Apply a committed put on a *live* replica: same version-chain
    /// effect as [`Table::replay_put`], but indexes and bookkeeping are
    /// maintained incrementally — a serving follower cannot afford the
    /// full [`Table::rebuild_indexes`] sweep recovery runs once at the
    /// end, and concurrent readers at older epochs need index entries for
    /// every version (same per-slot key dedup as the rebuild).
    pub(crate) fn apply_put(&self, rid: RowId, row: Row, epoch: u64) {
        let mut data = self.data.write();
        if data.slots.len() <= rid {
            data.slots.resize_with(rid + 1, Vec::new);
        }
        let TableData { slots, free, live, garbage, indexes } = &mut *data;
        let slot = &mut slots[rid];
        if slot.is_empty() {
            free.retain(|&r| r != rid);
        }
        match slot.iter_mut().rfind(|v| v.is_current()) {
            Some(v) => {
                v.end = epoch;
                *garbage += 1;
            }
            None => *live += 1,
        }
        for ix in indexes.iter_mut() {
            if !slot.iter().any(|p| same_key(ix, &p.row, &row)) {
                ix.insert(&row, rid);
            }
        }
        slot.push(Version { begin: epoch, end: NO_END, row });
    }

    /// Apply a committed delete on a live replica (see [`Table::apply_put`]
    /// for why this maintains bookkeeping inline). Index entries stay: they
    /// cover all stored versions and vacuum reclaims them with the chain.
    pub(crate) fn apply_del(&self, rid: RowId, epoch: u64) {
        let mut data = self.data.write();
        let TableData { slots, live, garbage, .. } = &mut *data;
        if let Some(slot) = slots.get_mut(rid) {
            if let Some(v) = slot.iter_mut().rfind(|v| v.is_current()) {
                v.end = epoch;
                *live -= 1;
                *garbage += 1;
            }
        }
    }

    /// Replay a committed delete from the WAL. A missing current version
    /// is a no-op (the row was already gone at checkpoint time).
    pub(crate) fn replay_del(&self, rid: RowId, epoch: u64) {
        let mut data = self.data.write();
        if let Some(slot) = data.slots.get_mut(rid) {
            if let Some(v) = slot.iter_mut().rfind(|v| v.is_current()) {
                v.end = epoch;
            }
        }
    }

    /// Rebuild every index from scratch over all stored versions (same
    /// per-slot key dedup as [`Table::create_index`] backfill).
    pub(crate) fn rebuild_indexes(&self) {
        let mut data = self.data.write();
        let TableData { slots, indexes, .. } = &mut *data;
        for ix in indexes.iter_mut() {
            *ix = ix.cleared();
            for (rid, slot) in slots.iter().enumerate() {
                for (vi, v) in slot.iter().enumerate() {
                    if slot[..vi].iter().any(|p| same_key(ix, &p.row, &v.row)) {
                        continue;
                    }
                    ix.insert(&v.row, rid);
                }
            }
        }
    }

    /// Recompute free list, live count, and garbage count from the
    /// version chains (after checkpoint restore + WAL replay).
    pub(crate) fn recompute_bookkeeping(&self) {
        let mut data = self.data.write();
        let TableData { slots, free, live, garbage, .. } = &mut *data;
        free.clear();
        *live = 0;
        *garbage = 0;
        for (rid, slot) in slots.iter().enumerate() {
            if slot.is_empty() {
                free.push(rid);
                continue;
            }
            if slot.iter().any(Version::is_current) {
                *live += 1;
            }
            *garbage += slot.iter().filter(|v| v.end_committed()).count();
        }
    }

    /// Approximate bytes used by live rows (storage accounting for Table 3).
    pub fn approx_bytes(&self) -> usize {
        let data = self.data.read();
        data.iter()
            .map(|(_, row)| {
                row.iter()
                    .map(|v| match v {
                        Value::Varchar(s) => 24 + s.len(),
                        _ => 16,
                    })
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn table() -> Table {
        Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", DataType::Bigint).not_null(),
                    ColumnDef::new("name", DataType::Varchar),
                ],
            )
            .with_primary_key(vec!["id"]),
        )
        .unwrap()
    }

    /// Insert and immediately commit under a private epoch, mimicking what
    /// the database's auto-commit path does.
    fn put(t: &Table, row: Row, stamp: u64, epoch: u64) -> RowId {
        let rid = t.insert(row, stamp).unwrap();
        t.finalize_stamp(rid, stamp, epoch);
        rid
    }

    #[test]
    fn insert_scan_delete() {
        let t = table();
        let r1 = put(&t, vec![Value::Bigint(1), Value::Varchar("a".into())], 1, 1);
        let r2 = put(&t, vec![Value::Bigint(2), Value::Varchar("b".into())], 2, 2);
        assert_eq!(t.row_count(), 2);
        {
            let d = t.read();
            assert_eq!(d.row(r1).unwrap()[1], Value::Varchar("a".into()));
            assert_eq!(d.iter().count(), 2);
        }
        let gone = t.delete(r2, 3).unwrap();
        t.finalize_stamp(r2, 3, 3);
        assert_eq!(gone[0], Value::Bigint(2));
        assert_eq!(t.row_count(), 1);
        // The dead version is retained for older snapshots until vacuum;
        // only then is the slot recycled.
        let r3 = put(&t, vec![Value::Bigint(3), Value::Null], 4, 4);
        assert_ne!(r3, r2);
        assert_eq!(t.vacuum(4), 1);
        let r4 = put(&t, vec![Value::Bigint(4), Value::Null], 5, 5);
        assert_eq!(r4, r2);
    }

    #[test]
    fn snapshot_views_see_their_epoch() {
        let t = table();
        let rid = put(&t, vec![Value::Bigint(1), Value::Varchar("old".into())], 1, 1);
        t.update(rid, vec![Value::Bigint(1), Value::Varchar("new".into())], 2).unwrap();
        // Uncommitted: snapshot at epoch 1 and read-latest both see "old";
        // the writer's own view sees "new".
        let d = t.read();
        let at1 = ReadView::committed(1);
        assert_eq!(d.row_at(rid, &at1).unwrap()[1], Value::Varchar("old".into()));
        assert_eq!(d.row_at(rid, &ReadView::latest(0)).unwrap()[1], Value::Varchar("old".into()));
        assert_eq!(d.row_at(rid, &ReadView::latest(2)).unwrap()[1], Value::Varchar("new".into()));
        drop(d);
        t.finalize_stamp(rid, 2, 2);
        let d = t.read();
        // Committed: the pinned snapshot still sees "old", latest sees "new".
        assert_eq!(d.row_at(rid, &at1).unwrap()[1], Value::Varchar("old".into()));
        assert_eq!(d.row_at(rid, &ReadView::committed(2)).unwrap()[1], Value::Varchar("new".into()));
        assert_eq!(d.iter_at(at1).count(), 1);
    }

    #[test]
    fn deleted_row_stays_visible_to_older_snapshot() {
        let t = table();
        let rid = put(&t, vec![Value::Bigint(7), Value::Null], 1, 1);
        t.delete(rid, 2).unwrap();
        t.finalize_stamp(rid, 2, 2);
        let d = t.read();
        assert!(d.row_at(rid, &ReadView::committed(1)).is_some());
        assert!(d.row_at(rid, &ReadView::committed(2)).is_none());
        assert!(d.row_at(rid, &ReadView::latest(0)).is_none());
        // The index still finds it for the old snapshot.
        let ix = d.find_index_on("id").unwrap();
        assert_eq!(ix.lookup_eq(&[Value::Bigint(7)]), vec![rid]);
    }

    #[test]
    fn pk_uniqueness_enforced_via_auto_index() {
        let t = table();
        put(&t, vec![Value::Bigint(1), Value::Null], 1, 1);
        let err = t.insert(vec![Value::Bigint(1), Value::Null], 2).unwrap_err();
        assert!(matches!(err, DbError::Constraint(_)));
        // Failed insert must not leak a slot or index entry.
        assert_eq!(t.row_count(), 1);
        put(&t, vec![Value::Bigint(2), Value::Null], 3, 2);
    }

    #[test]
    fn pk_reusable_after_committed_delete_before_vacuum() {
        // A committed delete retains its version (and index entry) for old
        // snapshots, but its key must be immediately reusable.
        let t = table();
        let rid = put(&t, vec![Value::Bigint(1), Value::Null], 1, 1);
        t.delete(rid, 2).unwrap();
        t.finalize_stamp(rid, 2, 2);
        let r2 = put(&t, vec![Value::Bigint(1), Value::Varchar("again".into())], 3, 3);
        assert_ne!(rid, r2);
        let d = t.read();
        assert_eq!(d.row_at(r2, &ReadView::committed(3)).unwrap()[1], Value::Varchar("again".into()));
    }

    #[test]
    fn uncommitted_delete_blocks_key_reuse() {
        let t = table();
        let rid = put(&t, vec![Value::Bigint(1), Value::Null], 1, 1);
        t.delete(rid, 2).unwrap(); // not finalized: could still roll back
        let err = t.insert(vec![Value::Bigint(1), Value::Null], 3).unwrap_err();
        assert!(matches!(err, DbError::Constraint(_)));
        t.rollback_delete(rid, 2).unwrap();
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn own_uncommitted_delete_allows_key_reuse() {
        // DELETE-then-INSERT of the same key inside one transaction: the
        // deleting stamp may re-take its own key while others stay blocked.
        let t = table();
        let rid = put(&t, vec![Value::Bigint(1), Value::Varchar("old".into())], 1, 1);
        t.delete(rid, 2).unwrap();
        let r2 = t.insert(vec![Value::Bigint(1), Value::Varchar("new".into())], 2).unwrap();
        t.finalize_stamp(rid, 2, 2);
        t.finalize_stamp(r2, 2, 2);
        let d = t.read();
        assert_eq!(d.row_at(r2, &ReadView::committed(2)).unwrap()[1], Value::Varchar("new".into()));
        assert_eq!(d.row_at(rid, &ReadView::committed(1)).unwrap()[1], Value::Varchar("old".into()));
        assert_eq!(d.iter_at(ReadView::committed(2)).count(), 1);
    }

    #[test]
    fn foreign_uncommitted_write_locks_update_and_delete() {
        // A current version created by an uncommitted transaction (insert
        // or update) must reject end-marking by any other stamp — otherwise
        // the owner's rollback can no longer find its versions and aborts
        // half-done, stranding permanent uncommitted markers.
        let t = table();
        let rid = put(&t, vec![Value::Bigint(1), Value::Varchar("v0".into())], 1, 1);
        t.update(rid, vec![Value::Bigint(1), Value::Varchar("v1".into())], 5).unwrap();
        assert!(matches!(
            t.update(rid, vec![Value::Bigint(1), Value::Varchar("x".into())], 6).unwrap_err(),
            DbError::Txn(_)
        ));
        assert!(matches!(t.delete(rid, 6).unwrap_err(), DbError::Txn(_)));
        // The owner itself can keep going, and its rollback still unwinds.
        t.update(rid, vec![Value::Bigint(1), Value::Varchar("v2".into())], 5).unwrap();
        t.rollback_update(rid, 5).unwrap();
        t.rollback_update(rid, 5).unwrap();
        assert_eq!(t.read().row(rid).unwrap()[1], Value::Varchar("v0".into()));
        // Once the owner is gone, other stamps can write again.
        t.delete(rid, 7).unwrap();
        t.finalize_stamp(rid, 7, 2);
        assert_eq!(t.row_count(), 0);

        // Same for an uncommitted *insert*: its current version is locked.
        let r2 = t.insert(vec![Value::Bigint(9), Value::Null], 8).unwrap();
        assert!(matches!(t.delete(r2, 9).unwrap_err(), DbError::Txn(_)));
        assert!(matches!(
            t.update(r2, vec![Value::Bigint(9), Value::Null], 9).unwrap_err(),
            DbError::Txn(_)
        ));
        t.rollback_insert(r2, 8).unwrap();
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn pk_rejects_null_and_wrong_arity() {
        let t = table();
        assert!(matches!(
            t.insert(vec![Value::Null, Value::Null], 1).unwrap_err(),
            DbError::Constraint(_)
        ));
        assert!(matches!(
            t.insert(vec![Value::Bigint(1)], 1).unwrap_err(),
            DbError::Type(_)
        ));
    }

    #[test]
    fn update_maintains_indexes() {
        let t = table();
        let rid = put(&t, vec![Value::Bigint(1), Value::Varchar("a".into())], 1, 1);
        put(&t, vec![Value::Bigint(2), Value::Null], 2, 2);
        // Moving row 1 onto pk 2 must fail.
        assert!(t.update(rid, vec![Value::Bigint(2), Value::Null], 3).is_err());
        t.update(rid, vec![Value::Bigint(5), Value::Varchar("z".into())], 3).unwrap();
        t.finalize_stamp(rid, 3, 3);
        let d = t.read();
        let ix = d.find_index_on("id").unwrap();
        assert_eq!(ix.lookup_eq(&[Value::Bigint(5)]), vec![rid]);
        // The old key's entry survives for older snapshots...
        assert_eq!(ix.lookup_eq(&[Value::Bigint(1)]), vec![rid]);
        assert!(d.row_at(rid, &ReadView::committed(1)).is_some());
        drop(d);
        // ...and is reclaimed once no snapshot can reach it.
        t.vacuum(3);
        let d = t.read();
        let ix = d.find_index_on("id").unwrap();
        assert!(ix.lookup_eq(&[Value::Bigint(1)]).is_empty());
        assert_eq!(ix.lookup_eq(&[Value::Bigint(5)]), vec![rid]);
    }

    #[test]
    fn rollback_insert_removes_version_entries_and_count() {
        let t = table();
        let rid = t.insert(vec![Value::Bigint(1), Value::Varchar("x".into())], 7).unwrap();
        assert_eq!(t.row_count(), 1);
        t.rollback_insert(rid, 7).unwrap();
        assert_eq!(t.row_count(), 0);
        let d = t.read();
        assert!(d.find_index_on("id").unwrap().lookup_eq(&[Value::Bigint(1)]).is_empty());
        assert_eq!(d.version_count(), 0);
        drop(d);
        // Key and slot are reusable immediately.
        let r2 = t.insert(vec![Value::Bigint(1), Value::Null], 8).unwrap();
        assert_eq!(r2, rid);
    }

    #[test]
    fn rollback_update_chain_restores_original() {
        let t = table();
        let rid = put(&t, vec![Value::Bigint(1), Value::Varchar("v0".into())], 1, 1);
        t.update(rid, vec![Value::Bigint(2), Value::Varchar("v1".into())], 5).unwrap();
        t.update(rid, vec![Value::Bigint(3), Value::Varchar("v2".into())], 5).unwrap();
        // Reverse order, as the undo log replays them.
        t.rollback_update(rid, 5).unwrap();
        t.rollback_update(rid, 5).unwrap();
        let d = t.read();
        assert_eq!(d.row(rid).unwrap()[0], Value::Bigint(1));
        let ix = d.find_index_on("id").unwrap();
        assert_eq!(ix.lookup_eq(&[Value::Bigint(1)]), vec![rid]);
        assert!(ix.lookup_eq(&[Value::Bigint(2)]).is_empty());
        assert!(ix.lookup_eq(&[Value::Bigint(3)]).is_empty());
        assert_eq!(d.version_count(), 1);
    }

    #[test]
    fn vacuum_respects_horizon() {
        let t = table();
        let rid = put(&t, vec![Value::Bigint(1), Value::Varchar("v0".into())], 1, 1);
        for (stamp, epoch) in [(2u64, 2u64), (3, 3), (4, 4)] {
            t.update(rid, vec![Value::Bigint(1), Value::Varchar(format!("v{}", epoch - 1))], stamp)
                .unwrap();
            t.finalize_stamp(rid, stamp, epoch);
        }
        assert_eq!(t.read().version_count(), 4);
        // A snapshot pinned at epoch 2 keeps versions ending after 2.
        assert_eq!(t.vacuum(2), 1);
        assert_eq!(t.read().version_count(), 3);
        assert!(t.read().row_at(rid, &ReadView::committed(2)).is_some());
        assert_eq!(t.vacuum(4), 2);
        assert_eq!(t.read().version_count(), 1);
        assert_eq!(t.read().garbage_versions(), 0);
    }

    #[test]
    fn secondary_index_backfill_and_drop() {
        let t = table();
        for i in 0..10 {
            put(&t, vec![Value::Bigint(i), Value::Varchar(format!("n{}", i % 3))], (i + 1) as u64, (i + 1) as u64);
        }
        t.create_index(IndexDef { name: "ix_name".into(), columns: vec!["name".into()], unique: false })
            .unwrap();
        {
            let d = t.read();
            let ix = d.find_index_on("name").unwrap();
            assert_eq!(ix.lookup_eq(&[Value::Varchar("n0".into())]).len(), 4);
        }
        assert!(t.create_index(IndexDef { name: "ix_name".into(), columns: vec!["name".into()], unique: false }).is_err());
        t.drop_index("ix_name").unwrap();
        assert!(t.drop_index("ix_name").is_err());
        assert!(t.drop_index("pk_t").is_err());
    }

    #[test]
    fn unique_index_creation_validates_existing_rows() {
        let t = table();
        put(&t, vec![Value::Bigint(1), Value::Varchar("same".into())], 1, 1);
        put(&t, vec![Value::Bigint(2), Value::Varchar("same".into())], 2, 2);
        let err = t
            .create_index(IndexDef { name: "uq_name".into(), columns: vec!["name".into()], unique: true })
            .unwrap_err();
        assert!(matches!(err, DbError::Constraint(_)));
    }

    #[test]
    fn rollback_delete_restores_visibility() {
        let t = table();
        let rid = put(&t, vec![Value::Bigint(7), Value::Varchar("x".into())], 1, 1);
        t.delete(rid, 2).unwrap();
        assert_eq!(t.row_count(), 0);
        t.rollback_delete(rid, 2).unwrap();
        assert_eq!(t.row_count(), 1);
        let d = t.read();
        assert_eq!(d.row(rid).unwrap()[0], Value::Bigint(7));
        assert_eq!(d.row_at(rid, &ReadView::committed(1)).unwrap()[0], Value::Bigint(7));
    }
}
