//! Dynamic values and column data types.
//!
//! The engine is dynamically typed at the execution layer: every cell is a
//! [`Value`]. Column definitions carry a [`DataType`] that writes are checked
//! against, mirroring how a SQL engine validates INSERTs.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{DbError, DbResult};

/// The SQL column types supported by the engine.
///
/// This is the small set Db2 Graph actually needs: graph ids and numeric
/// properties map to `BIGINT`/`DOUBLE`, labels and textual properties to
/// `VARCHAR`, flags to `BOOLEAN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bigint,
    Double,
    Varchar,
    Boolean,
}

impl DataType {
    /// Parse a SQL type name (case-insensitive). Accepts common aliases so
    /// that `INT`, `INTEGER`, `TEXT`, `FLOAT`, etc. all work.
    pub fn parse(name: &str) -> DbResult<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BIGINT" | "INT" | "INTEGER" | "LONG" | "SMALLINT" => Ok(DataType::Bigint),
            "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => Ok(DataType::Double),
            "VARCHAR" | "CHAR" | "TEXT" | "STRING" | "CLOB" => Ok(DataType::Varchar),
            "BOOLEAN" | "BOOL" => Ok(DataType::Boolean),
            other => Err(DbError::Type(format!("unknown data type '{other}'"))),
        }
    }

    /// Canonical SQL name of the type.
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Bigint => "BIGINT",
            DataType::Double => "DOUBLE",
            DataType::Varchar => "VARCHAR",
            DataType::Boolean => "BOOLEAN",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A single dynamically-typed SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bigint(i64),
    Double(f64),
    Varchar(String),
    Boolean(bool),
}

impl Value {
    /// Type of this value, or `None` for NULL (NULL is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bigint(_) => Some(DataType::Bigint),
            Value::Double(_) => Some(DataType::Double),
            Value::Varchar(_) => Some(DataType::Varchar),
            Value::Boolean(_) => Some(DataType::Boolean),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Coerce this value to the given column type, if a lossless or
    /// conventional SQL coercion exists (BIGINT -> DOUBLE, anything -> its
    /// own type, NULL -> NULL). Used when checking INSERT/UPDATE values.
    pub fn coerce_to(&self, ty: DataType) -> DbResult<Value> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Bigint(v), DataType::Bigint) => Ok(Value::Bigint(*v)),
            (Value::Bigint(v), DataType::Double) => Ok(Value::Double(*v as f64)),
            (Value::Double(v), DataType::Double) => Ok(Value::Double(*v)),
            (Value::Double(v), DataType::Bigint) if v.fract() == 0.0 => {
                Ok(Value::Bigint(*v as i64))
            }
            (Value::Varchar(s), DataType::Varchar) => Ok(Value::Varchar(s.clone())),
            (Value::Boolean(b), DataType::Boolean) => Ok(Value::Boolean(*b)),
            (v, ty) => Err(DbError::Type(format!(
                "cannot coerce {v} to {ty}",
                v = v.type_display()
            ))),
        }
    }

    fn type_display(&self) -> String {
        match self.data_type() {
            Some(t) => t.sql_name().to_string(),
            None => "NULL".to_string(),
        }
    }

    /// Extract an i64, coercing exact doubles. Errors on other types.
    pub fn as_i64(&self) -> DbResult<i64> {
        match self {
            Value::Bigint(v) => Ok(*v),
            Value::Double(v) if v.fract() == 0.0 => Ok(*v as i64),
            other => Err(DbError::Type(format!(
                "expected BIGINT, got {}",
                other.type_display()
            ))),
        }
    }

    /// Extract an f64 from any numeric value.
    pub fn as_f64(&self) -> DbResult<f64> {
        match self {
            Value::Bigint(v) => Ok(*v as f64),
            Value::Double(v) => Ok(*v),
            other => Err(DbError::Type(format!(
                "expected numeric, got {}",
                other.type_display()
            ))),
        }
    }

    /// Extract a string slice. Errors on non-VARCHAR values.
    pub fn as_str(&self) -> DbResult<&str> {
        match self {
            Value::Varchar(s) => Ok(s),
            other => Err(DbError::Type(format!(
                "expected VARCHAR, got {}",
                other.type_display()
            ))),
        }
    }

    pub fn as_bool(&self) -> DbResult<bool> {
        match self {
            Value::Boolean(b) => Ok(*b),
            other => Err(DbError::Type(format!(
                "expected BOOLEAN, got {}",
                other.type_display()
            ))),
        }
    }

    /// SQL three-valued-logic equality: NULL compared to anything is unknown
    /// (`None`); numeric values compare across BIGINT/DOUBLE.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// SQL comparison with NULL propagation and numeric cross-type support.
    /// Returns `None` when either side is NULL or the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bigint(a), Value::Bigint(b)) => Some(a.cmp(b)),
            (Value::Double(a), Value::Double(b)) => Some(a.total_cmp(b)),
            (Value::Bigint(a), Value::Double(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Double(a), Value::Bigint(b)) => Some(a.total_cmp(&(*b as f64))),
            (Value::Varchar(a), Value::Varchar(b)) => Some(a.cmp(b)),
            (Value::Boolean(a), Value::Boolean(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used by indexes and ORDER BY. NULLs sort first, then
    /// values are grouped by a type rank; numerics of either type compare
    /// together so a BIGINT index probe can find DOUBLE-coerced keys.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Boolean(_) => 1,
                Value::Bigint(_) | Value::Double(_) => 2,
                Value::Varchar(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Boolean(a), Value::Boolean(b)) => a.cmp(b),
            (Value::Varchar(a), Value::Varchar(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                // Both numeric.
                match (a, b) {
                    (Value::Bigint(x), Value::Bigint(y)) => x.cmp(y),
                    _ => a
                        .as_f64()
                        .unwrap_or(f64::NAN)
                        .total_cmp(&b.as_f64().unwrap_or(f64::NAN)),
                }
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Render the value as a SQL literal (strings quoted and escaped).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Bigint(v) => v.to_string(),
            Value::Double(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    format!("{v:.1}")
                } else {
                    v.to_string()
                }
            }
            Value::Varchar(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Boolean(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Boolean(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Hash all numerics as their f64 bits so Bigint(2) and
            // Double(2.0), which compare equal, hash identically.
            Value::Bigint(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Double(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Varchar(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bigint(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Varchar(s) => f.write_str(s),
            Value::Boolean(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Bigint(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Varchar(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Varchar(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_type_aliases() {
        assert_eq!(DataType::parse("int").unwrap(), DataType::Bigint);
        assert_eq!(DataType::parse("LONG").unwrap(), DataType::Bigint);
        assert_eq!(DataType::parse("Text").unwrap(), DataType::Varchar);
        assert_eq!(DataType::parse("real").unwrap(), DataType::Double);
        assert!(DataType::parse("blob").is_err());
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            Value::Bigint(3).coerce_to(DataType::Double).unwrap(),
            Value::Double(3.0)
        );
        assert_eq!(
            Value::Double(4.0).coerce_to(DataType::Bigint).unwrap(),
            Value::Bigint(4)
        );
        assert!(Value::Double(4.5).coerce_to(DataType::Bigint).is_err());
        assert!(Value::Varchar("x".into()).coerce_to(DataType::Bigint).is_err());
        assert!(Value::Null.coerce_to(DataType::Bigint).unwrap().is_null());
    }

    #[test]
    fn sql_comparison_is_three_valued() {
        assert_eq!(Value::Null.sql_eq(&Value::Bigint(1)), None);
        assert_eq!(Value::Bigint(1).sql_eq(&Value::Bigint(1)), Some(true));
        assert_eq!(Value::Bigint(1).sql_eq(&Value::Double(1.0)), Some(true));
        assert_eq!(
            Value::Varchar("a".into()).sql_cmp(&Value::Varchar("b".into())),
            Some(Ordering::Less)
        );
        // Incomparable types yield unknown, like a failed implicit cast.
        assert_eq!(Value::Bigint(1).sql_cmp(&Value::Varchar("1".into())), None);
    }

    #[test]
    fn total_order_groups_nulls_first_and_mixes_numerics() {
        let mut vals = [Value::Varchar("a".into()),
            Value::Bigint(2),
            Value::Null,
            Value::Double(1.5),
            Value::Boolean(true)];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Boolean(true));
        assert_eq!(vals[2], Value::Double(1.5));
        assert_eq!(vals[3], Value::Bigint(2));
        assert_eq!(vals[4], Value::Varchar("a".into()));
    }

    #[test]
    fn cross_type_numeric_hash_matches_equality() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(Value::Bigint(7), Value::Double(7.0));
        assert_eq!(h(&Value::Bigint(7)), h(&Value::Double(7.0)));
    }

    #[test]
    fn sql_literal_escaping() {
        assert_eq!(Value::Varchar("O'Brien".into()).to_sql_literal(), "'O''Brien'");
        assert_eq!(Value::Bigint(-5).to_sql_literal(), "-5");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
        assert_eq!(Value::Double(2.0).to_sql_literal(), "2.0");
    }
}
