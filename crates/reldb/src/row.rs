//! Rows and result sets.

use std::fmt;

use crate::value::Value;

/// A single row: one [`Value`] per column, positionally aligned with the
/// owning table's schema or a result set's column list.
pub type Row = Vec<Value>;

/// A materialized query result: named columns plus rows.
///
/// This is what `Database::query` returns and what [`crate::func::TableFunction`]
/// implementations produce. It intentionally mirrors a JDBC result set: the
/// graph layer converts Gremlin output into one of these for the
/// `graphQuery` polymorphic table function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowSet {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl RowSet {
    pub fn new(columns: Vec<String>) -> Self {
        RowSet { columns, rows: Vec::new() }
    }

    pub fn with_rows(columns: Vec<String>, rows: Vec<Row>) -> Self {
        RowSet { columns, rows }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Fetch a cell by row number and case-insensitive column name.
    pub fn get(&self, row: usize, column: &str) -> Option<&Value> {
        let ci = self.column_index(column)?;
        self.rows.get(row).and_then(|r| r.get(ci))
    }

    /// Convenience for single-value results (e.g. `SELECT COUNT(*) ...`).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// Render as an aligned text table, for examples and debugging output.
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-+-"));
        out.push('\n');
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(0)))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for RowSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RowSet {
        RowSet::with_rows(
            vec!["id".into(), "name".into()],
            vec![
                vec![Value::Bigint(1), Value::Varchar("Alice".into())],
                vec![Value::Bigint(2), Value::Varchar("Bob".into())],
            ],
        )
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let rs = sample();
        assert_eq!(rs.column_index("NAME"), Some(1));
        assert_eq!(rs.get(0, "Name"), Some(&Value::Varchar("Alice".into())));
        assert_eq!(rs.get(5, "name"), None);
        assert_eq!(rs.column_index("missing"), None);
    }

    #[test]
    fn scalar_returns_first_cell() {
        let rs = RowSet::with_rows(vec!["c".into()], vec![vec![Value::Bigint(42)]]);
        assert_eq!(rs.scalar(), Some(&Value::Bigint(42)));
        assert_eq!(RowSet::new(vec!["c".into()]).scalar(), None);
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let s = sample().to_table_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("id"));
        assert!(lines[2].contains("Alice"));
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }
}
