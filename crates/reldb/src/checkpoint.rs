//! Checkpoints: a full serialization of the multi-version storage at one
//! snapshot horizon, written atomically (temp file + fsync + rename) so a
//! crash can never leave a half-written checkpoint installed.
//!
//! A checkpoint records the `(epoch, wal_seq)` pair it was captured at:
//! recovery loads the image, then replays only WAL records with sequence
//! `>= wal_seq`. Rows are stored as the versions *visible* at the capture
//! epoch — later deletes and updates are re-applied from the log, so the
//! vacuum horizon must never climb past a running checkpoint's epoch (see
//! `Database::vacuum`).

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use crate::durability::{
    crc32, put_row, put_str, put_u32, put_u64, CrashPoint, Cursor, DurabilityState,
};
use crate::error::{DbError, DbResult};
use crate::index::{IndexDef, RowId};
use crate::row::Row;
use crate::schema::{ColumnDef, ForeignKey, TableSchema};
use crate::value::DataType;

const CKPT_MAGIC: &[u8; 8] = b"D2GCKPT1";

/// Everything a checkpoint persists.
pub(crate) struct CheckpointImage {
    /// Snapshot horizon the table data was serialized at.
    pub epoch: u64,
    /// First WAL sequence number *not* covered by this checkpoint.
    pub wal_seq: u64,
    pub tables: Vec<TableImage>,
    /// Views as `(name, select_sql)`, re-parsed on load.
    pub views: Vec<(String, String)>,
}

pub(crate) struct TableImage {
    pub schema: TableSchema,
    /// Index definitions beyond the schema-implied primary key/unique
    /// ones (i.e. those created by `CREATE INDEX`).
    pub secondary: Vec<IndexDef>,
    /// Slot-array length at capture, so recovered row ids keep their
    /// positions (fresh inserts after recovery reuse the gaps).
    pub slots: u64,
    /// `(rid, begin_epoch, row)` for every version visible at `epoch`.
    pub rows: Vec<(RowId, u64, Row)>,
}

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Bigint => 0,
        DataType::Double => 1,
        DataType::Varchar => 2,
        DataType::Boolean => 3,
    }
}

fn dtype_from(tag: u8) -> DbResult<DataType> {
    Ok(match tag {
        0 => DataType::Bigint,
        1 => DataType::Double,
        2 => DataType::Varchar,
        3 => DataType::Boolean,
        t => return Err(DbError::Io(format!("unknown data type tag {t}"))),
    })
}

fn put_names(out: &mut Vec<u8>, names: &[String]) {
    put_u32(out, names.len() as u32);
    for n in names {
        put_str(out, n);
    }
}

fn read_names(c: &mut Cursor<'_>) -> DbResult<Vec<String>> {
    let n = c.u32()? as usize;
    (0..n).map(|_| c.str()).collect()
}

fn encode(image: &CheckpointImage) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, image.epoch);
    put_u64(&mut out, image.wal_seq);
    put_u32(&mut out, image.tables.len() as u32);
    for t in &image.tables {
        let s = &t.schema;
        put_str(&mut out, &s.name);
        put_u32(&mut out, s.columns.len() as u32);
        for col in &s.columns {
            put_str(&mut out, &col.name);
            out.push(dtype_tag(col.data_type));
            out.push(col.nullable as u8);
        }
        match &s.primary_key {
            Some(pk) => {
                out.push(1);
                put_names(&mut out, pk);
            }
            None => out.push(0),
        }
        put_u32(&mut out, s.foreign_keys.len() as u32);
        for fk in &s.foreign_keys {
            put_names(&mut out, &fk.columns);
            put_str(&mut out, &fk.ref_table);
            put_names(&mut out, &fk.ref_columns);
        }
        put_u32(&mut out, s.uniques.len() as u32);
        for u in &s.uniques {
            put_names(&mut out, u);
        }
        put_u32(&mut out, t.secondary.len() as u32);
        for ix in &t.secondary {
            put_str(&mut out, &ix.name);
            put_names(&mut out, &ix.columns);
            out.push(ix.unique as u8);
        }
        put_u64(&mut out, t.slots);
        put_u32(&mut out, t.rows.len() as u32);
        for (rid, begin, row) in &t.rows {
            put_u64(&mut out, *rid as u64);
            put_u64(&mut out, *begin);
            put_row(&mut out, row);
        }
    }
    put_u32(&mut out, image.views.len() as u32);
    for (name, sql) in &image.views {
        put_str(&mut out, name);
        put_str(&mut out, sql);
    }
    out
}

fn decode(body: &[u8]) -> DbResult<CheckpointImage> {
    let mut c = Cursor::new(body);
    let epoch = c.u64()?;
    let wal_seq = c.u64()?;
    let ntables = c.u32()? as usize;
    let mut tables = Vec::with_capacity(ntables.min(1024));
    for _ in 0..ntables {
        let name = c.str()?;
        let ncols = c.u32()? as usize;
        let mut columns = Vec::with_capacity(ncols.min(1024));
        for _ in 0..ncols {
            let cname = c.str()?;
            let data_type = dtype_from(c.u8()?)?;
            let nullable = c.u8()? != 0;
            columns.push(ColumnDef { name: cname, data_type, nullable });
        }
        let primary_key = if c.u8()? != 0 { Some(read_names(&mut c)?) } else { None };
        let nfk = c.u32()? as usize;
        let mut foreign_keys = Vec::with_capacity(nfk.min(1024));
        for _ in 0..nfk {
            let cols = read_names(&mut c)?;
            let ref_table = c.str()?;
            let ref_columns = read_names(&mut c)?;
            foreign_keys.push(ForeignKey { columns: cols, ref_table, ref_columns });
        }
        let nuq = c.u32()? as usize;
        let mut uniques = Vec::with_capacity(nuq.min(1024));
        for _ in 0..nuq {
            uniques.push(read_names(&mut c)?);
        }
        let schema = TableSchema { name, columns, primary_key, foreign_keys, uniques };
        let nix = c.u32()? as usize;
        let mut secondary = Vec::with_capacity(nix.min(1024));
        for _ in 0..nix {
            let iname = c.str()?;
            let icols = read_names(&mut c)?;
            let unique = c.u8()? != 0;
            secondary.push(IndexDef { name: iname, columns: icols, unique });
        }
        let slots = c.u64()?;
        let nrows = c.u32()? as usize;
        let mut rows = Vec::with_capacity(nrows.min(65_536));
        for _ in 0..nrows {
            let rid = c.u64()? as RowId;
            let begin = c.u64()?;
            rows.push((rid, begin, c.row()?));
        }
        tables.push(TableImage { schema, secondary, slots, rows });
    }
    let nviews = c.u32()? as usize;
    let mut views = Vec::with_capacity(nviews.min(1024));
    for _ in 0..nviews {
        let name = c.str()?;
        let sql = c.str()?;
        views.push((name, sql));
    }
    Ok(CheckpointImage { epoch, wal_seq, tables, views })
}

pub(crate) fn checkpoint_path(dir: &Path) -> std::path::PathBuf {
    dir.join("checkpoint.bin")
}

/// Write a checkpoint atomically, observing the `Checkpoint*` crash
/// points. Returns the serialized byte count.
pub(crate) fn write(d: &DurabilityState, image: &CheckpointImage) -> DbResult<u64> {
    let body = encode(image);
    let tmp = d.dir.join("checkpoint.bin.tmp");
    {
        let mut f = File::create(&tmp).map_err(|e| DbError::Io(format!("create ckpt tmp: {e}")))?;
        f.write_all(CKPT_MAGIC).map_err(|e| DbError::Io(format!("write ckpt: {e}")))?;
        f.write_all(&crc32(&body).to_le_bytes())
            .map_err(|e| DbError::Io(format!("write ckpt: {e}")))?;
        f.write_all(&body).map_err(|e| DbError::Io(format!("write ckpt: {e}")))?;
        f.sync_data().map_err(|e| DbError::Io(format!("sync ckpt: {e}")))?;
    }
    d.crash_gate(CrashPoint::CheckpointWritten)?;
    std::fs::rename(&tmp, checkpoint_path(&d.dir))
        .map_err(|e| DbError::Io(format!("install ckpt: {e}")))?;
    if let Ok(f) = File::open(&d.dir) {
        let _ = f.sync_all();
    }
    d.crash_gate(CrashPoint::CheckpointInstalled)?;
    Ok((body.len() + 12) as u64)
}

/// Validate a checkpoint file's framing (magic + CRC) and return its body.
fn verified_body(buf: &[u8]) -> DbResult<&[u8]> {
    if buf.len() < 12 || &buf[..8] != CKPT_MAGIC {
        return Err(DbError::Io("checkpoint header is corrupt".into()));
    }
    let crc = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let body = &buf[12..];
    if crc32(body) != crc {
        return Err(DbError::Io("checkpoint checksum mismatch".into()));
    }
    Ok(body)
}

/// Read the installed checkpoint file verbatim (magic + crc + body) after
/// verifying its integrity — the primary serves exactly these bytes to a
/// bootstrapping follower. `Ok(None)` when no checkpoint is installed.
pub(crate) fn verified_bytes(dir: &Path) -> DbResult<Option<Vec<u8>>> {
    let path = checkpoint_path(dir);
    let mut buf = Vec::new();
    match File::open(&path) {
        Ok(mut f) => f
            .read_to_end(&mut buf)
            .map_err(|e| DbError::Io(format!("read checkpoint: {e}")))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(DbError::Io(format!("open checkpoint: {e}"))),
    };
    verified_body(&buf)?;
    Ok(Some(buf))
}

/// Decode a full checkpoint file image (as produced by [`write`] or
/// shipped by a primary), verifying magic and checksum first.
pub(crate) fn decode_file(buf: &[u8]) -> DbResult<CheckpointImage> {
    decode(verified_body(buf)?)
}

/// Load the installed checkpoint, if any. A missing file is `Ok(None)`;
/// a present but corrupt file is an error — it means installed state was
/// damaged, which recovery must not paper over silently.
pub(crate) fn load(dir: &Path) -> DbResult<Option<CheckpointImage>> {
    match verified_bytes(dir)? {
        Some(buf) => decode_file(&buf).map(Some),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn image_codec_round_trips() {
        let image = CheckpointImage {
            epoch: 17,
            wal_seq: 23,
            tables: vec![TableImage {
                schema: TableSchema {
                    name: "Account".into(),
                    columns: vec![
                        ColumnDef::new("aid", DataType::Bigint).not_null(),
                        ColumnDef::new("name", DataType::Varchar),
                    ],
                    primary_key: Some(vec!["aid".into()]),
                    foreign_keys: vec![ForeignKey {
                        columns: vec!["aid".into()],
                        ref_table: "Other".into(),
                        ref_columns: vec!["oid".into()],
                    }],
                    uniques: vec![vec!["name".into()]],
                },
                secondary: vec![IndexDef {
                    name: "ix_name".into(),
                    columns: vec!["name".into()],
                    unique: false,
                }],
                slots: 5,
                rows: vec![(0, 3, vec![Value::Bigint(1), Value::Varchar("a".into())])],
            }],
            views: vec![("V".into(), "SELECT aid FROM Account".into())],
        };
        let body = encode(&image);
        let back = decode(&body).unwrap();
        assert_eq!(back.epoch, 17);
        assert_eq!(back.wal_seq, 23);
        assert_eq!(back.tables.len(), 1);
        let t = &back.tables[0];
        assert_eq!(t.schema, image.tables[0].schema);
        assert_eq!(t.secondary, image.tables[0].secondary);
        assert_eq!(t.slots, 5);
        assert_eq!(t.rows, image.tables[0].rows);
        assert_eq!(back.views, image.views);
    }

    #[test]
    fn decode_rejects_truncation_cleanly() {
        let image = CheckpointImage {
            epoch: 1,
            wal_seq: 2,
            tables: vec![],
            views: vec![("v".into(), "SELECT 1".into())],
        };
        let body = encode(&image);
        for cut in 0..body.len() {
            let _ = decode(&body[..cut]); // must not panic
        }
    }
}
