//! Ordered secondary indexes.
//!
//! Indexes are ordered maps from composite key values to row ids. The planner
//! uses them for the point and IN-list probes that dominate the SQL generated
//! by the graph layer (`WHERE id = ?`, `WHERE src_v IN (...)`), which is also
//! why the paper's SQL Dialect module *suggests* indexes for frequent query
//! patterns — without them every traversal hop is a table scan.

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::row::Row;
use crate::value::Value;

/// Identifier of a row slot within its table.
pub type RowId = usize;

/// User-visible definition of an index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    pub name: String,
    pub columns: Vec<String>,
    pub unique: bool,
}

/// An ordered index over one or more columns of a table.
///
/// Keys are the indexed column values in declaration order. Non-unique
/// indexes keep a postings list of row ids per key.
#[derive(Debug)]
pub struct Index {
    pub def: IndexDef,
    /// Positions of the indexed columns within the table schema.
    pub col_positions: Vec<usize>,
    /// Created implicitly for a schema constraint (PRIMARY KEY / UNIQUE)
    /// rather than by `CREATE INDEX`. Auto indexes are rebuilt from the
    /// schema on checkpoint restore, so checkpoints skip them — tracked
    /// as a flag, never inferred from the name, which a user index is
    /// free to collide with.
    pub auto: bool,
    map: BTreeMap<Vec<Value>, Vec<RowId>>,
}

impl Index {
    pub fn new(def: IndexDef, col_positions: Vec<usize>) -> Self {
        Index { def, col_positions, auto: false, map: BTreeMap::new() }
    }

    /// An index implied by the schema (see [`Index::auto`]).
    pub fn new_auto(def: IndexDef, col_positions: Vec<usize>) -> Self {
        Index { auto: true, ..Self::new(def, col_positions) }
    }

    /// A fresh, empty index with the same definition and provenance —
    /// for rebuilds that re-insert every key from storage.
    pub fn cleared(&self) -> Index {
        Index { auto: self.auto, ..Self::new(self.def.clone(), self.col_positions.clone()) }
    }

    fn key_of(&self, row: &Row) -> Vec<Value> {
        self.col_positions.iter().map(|&i| row[i].clone()).collect()
    }

    /// Add a posting for a row's key. Uniqueness is *not* checked here:
    /// under versioned storage an entry may refer to a dead version, so
    /// only the table (which sees the version chains) can decide whether a
    /// key is genuinely taken — see `TableData::key_occupied`.
    pub fn insert(&mut self, row: &Row, rid: RowId) {
        let key = self.key_of(row);
        self.map.entry(key).or_default().push(rid);
    }

    /// Add a posting unless `(key, rid)` is already present — used when a
    /// new version of an existing row re-introduces a key an older version
    /// of the same row already indexed.
    pub fn insert_unique_rid(&mut self, row: &Row, rid: RowId) {
        let key = self.key_of(row);
        let entry = self.map.entry(key).or_default();
        if !entry.contains(&rid) {
            entry.push(rid);
        }
    }

    /// Remove a row's key posting.
    pub fn remove(&mut self, row: &Row, rid: RowId) {
        let key = self.key_of(row);
        if let Some(entry) = self.map.get_mut(&key) {
            entry.retain(|&r| r != rid);
            if entry.is_empty() {
                self.map.remove(&key);
            }
        }
    }

    /// All row ids whose key equals `key` exactly.
    pub fn lookup_eq(&self, key: &[Value]) -> Vec<RowId> {
        self.map.get(key).cloned().unwrap_or_default()
    }

    /// Row ids matching any of the given keys (IN-list probe). Duplicate
    /// keys in the list are probed once: `IN` is a predicate, so a row
    /// matches at most once no matter how often its key repeats.
    pub fn lookup_in(&self, keys: &[Vec<Value>]) -> Vec<RowId> {
        let mut seen: std::collections::HashSet<&[Value]> = std::collections::HashSet::new();
        let mut out = Vec::new();
        for key in keys {
            if !seen.insert(key.as_slice()) {
                continue;
            }
            if let Some(rids) = self.map.get(key) {
                out.extend_from_slice(rids);
            }
        }
        out
    }

    /// Row ids whose *first* indexed column falls in the given bounds.
    /// Only meaningful for prefix (single leading column) ranges.
    pub fn lookup_range(&self, low: Bound<&Value>, high: Bound<&Value>) -> Vec<RowId> {
        let lo: Bound<Vec<Value>> = match low {
            Bound::Included(v) => Bound::Included(vec![v.clone()]),
            // Exclusive lower bound on the first column must still admit
            // composite keys sharing the bound value, so widen and re-filter.
            Bound::Excluded(v) => Bound::Included(vec![v.clone()]),
            Bound::Unbounded => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for (key, rids) in self.map.range((lo, Bound::Unbounded)) {
            let first = &key[0];
            match low {
                Bound::Excluded(v) if first.total_cmp(v).is_le() => continue,
                Bound::Included(v) if first.total_cmp(v).is_lt() => continue,
                _ => {}
            }
            match high {
                Bound::Included(v) if first.total_cmp(v).is_gt() => break,
                Bound::Excluded(v) if first.total_cmp(v).is_ge() => break,
                _ => {}
            }
            out.extend_from_slice(rids);
        }
        out
    }

    /// Number of distinct keys currently indexed.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(unique: bool) -> Index {
        Index::new(
            IndexDef { name: "i".into(), columns: vec!["a".into()], unique },
            vec![0],
        )
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut i = idx(false);
        i.insert(&vec![Value::Bigint(1), Value::Varchar("x".into())], 10);
        i.insert(&vec![Value::Bigint(1), Value::Varchar("y".into())], 11);
        i.insert(&vec![Value::Bigint(2), Value::Varchar("z".into())], 12);
        assert_eq!(i.lookup_eq(&[Value::Bigint(1)]), vec![10, 11]);
        i.remove(&vec![Value::Bigint(1), Value::Varchar("x".into())], 10);
        assert_eq!(i.lookup_eq(&[Value::Bigint(1)]), vec![11]);
        assert_eq!(i.distinct_keys(), 2);
    }

    #[test]
    fn insert_unique_rid_dedups_per_row_postings() {
        let mut i = idx(true);
        i.insert(&vec![Value::Bigint(1)], 0);
        i.insert_unique_rid(&vec![Value::Bigint(1)], 0);
        assert_eq!(i.lookup_eq(&[Value::Bigint(1)]), vec![0]);
        // A different row id under the same key is still recorded (two
        // versions of different rows can share a key transiently).
        i.insert_unique_rid(&vec![Value::Bigint(1)], 1);
        assert_eq!(i.lookup_eq(&[Value::Bigint(1)]), vec![0, 1]);
    }

    #[test]
    fn in_list_probe_collects_all_matches() {
        let mut i = idx(false);
        for rid in 0..5 {
            i.insert(&vec![Value::Bigint(rid as i64)], rid);
        }
        let keys = vec![vec![Value::Bigint(1)], vec![Value::Bigint(3)], vec![Value::Bigint(9)]];
        assert_eq!(i.lookup_in(&keys), vec![1, 3]);
    }

    #[test]
    fn range_probe_on_leading_column() {
        let mut i = Index::new(
            IndexDef { name: "c".into(), columns: vec!["a".into(), "b".into()], unique: false },
            vec![0, 1],
        );
        for (a, b, rid) in [(1, 1, 0), (1, 2, 1), (2, 1, 2), (3, 1, 3)] {
            i.insert(&vec![Value::Bigint(a), Value::Bigint(b)], rid);
        }
        let got = i.lookup_range(Bound::Excluded(&Value::Bigint(1)), Bound::Included(&Value::Bigint(3)));
        assert_eq!(got, vec![2, 3]);
        let got = i.lookup_range(Bound::Unbounded, Bound::Excluded(&Value::Bigint(2)));
        assert_eq!(got, vec![0, 1]);
    }
}
