//! Durability layer: binary write-ahead log, crash-injection harness, and
//! the shared state commits and checkpoints thread through.
//!
//! The WAL is the paper's "retrofit onto a durable host" premise made real
//! for our embedded engine: one record per committed statement batch,
//! sealed at the commit-epoch publication point (the same instant
//! `commit_epoch` is stored with `Release` ordering), so the log's record
//! sequence *is* the epoch sequence. Records are length-prefixed and
//! CRC-checksummed; recovery replays the longest valid prefix and
//! truncates a torn or corrupt tail in place — it never replays it.
//!
//! Because this layer exists to be proven by tests, every I/O boundary is
//! enumerable as a [`CrashPoint`]: a hook (same style as the dialect's
//! statement hook) decides per point whether the "process" dies there.
//! Dying poisons the layer — all later durable I/O fails — so a test can
//! drop the database and reopen it from disk exactly as a real crash
//! would. See `docs/DURABILITY.md` for the on-disk format.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::{DbError, DbResult};
use crate::index::RowId;
use crate::row::Row;
use crate::value::Value;

// ---------------------------------------------------------------- modes

/// How eagerly committed work reaches disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// fsync the WAL before every commit publishes. A crash loses nothing
    /// that was acknowledged.
    #[default]
    Always,
    /// Append without fsync; sync every [`BATCH_SYNC_EVERY`] records and
    /// at checkpoints. An OS crash may lose the newest few commits but the
    /// surviving prefix is always consistent.
    Batch,
    /// No WAL at all; checkpoints are the only durable state.
    Off,
}

impl Durability {
    /// Parse a mode name as used by config/env (`always`/`batch`/`off`).
    pub fn parse(s: &str) -> Option<Durability> {
        match s.trim().to_ascii_lowercase().as_str() {
            "always" => Some(Durability::Always),
            "batch" => Some(Durability::Batch),
            "off" => Some(Durability::Off),
            _ => None,
        }
    }
}

impl fmt::Display for Durability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Durability::Always => "always",
            Durability::Batch => "batch",
            Durability::Off => "off",
        })
    }
}

/// In `Batch` mode, fsync after this many appends.
pub const BATCH_SYNC_EVERY: u32 = 32;

// --------------------------------------------------------- crash points

/// Every I/O boundary of the durability layer, in the order a commit and
/// a checkpoint pass through them. Tests install a [`CrashHook`] to die
/// deterministically at any of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// About to append a WAL record; no bytes written yet.
    WalAppend,
    /// Mid-append: only a prefix of the record reached the file (a torn
    /// write). Recovery must truncate it.
    WalTorn,
    /// Record fully written (and fsynced under `Always`), but the commit
    /// has not yet published in memory.
    WalSynced,
    /// Checkpoint captured its (epoch, WAL position) pair; serialization
    /// of table data is about to start.
    CheckpointBegin,
    /// Temp checkpoint file fully written and fsynced, not yet renamed
    /// into place.
    CheckpointWritten,
    /// Checkpoint renamed into place; the WAL prefix it covers has not
    /// been dropped yet.
    CheckpointInstalled,
    /// WAL rotated: the prefix covered by the checkpoint is gone.
    WalRotated,
}

impl CrashPoint {
    /// All crash points, for matrix-style test enumeration.
    pub const ALL: [CrashPoint; 7] = [
        CrashPoint::WalAppend,
        CrashPoint::WalTorn,
        CrashPoint::WalSynced,
        CrashPoint::CheckpointBegin,
        CrashPoint::CheckpointWritten,
        CrashPoint::CheckpointInstalled,
        CrashPoint::WalRotated,
    ];
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Decides, per crash point, whether the simulated process dies there.
/// Returning `true` poisons the durability layer and fails the operation.
///
/// The hook runs while the WAL lock is held for the `Wal*` points, so it
/// must not call back into the database; the `Checkpoint*` points run
/// lock-free and may (tests use this to race commits and vacuum against a
/// checkpoint in progress).
pub type CrashHook = Arc<dyn Fn(CrashPoint) -> bool + Send + Sync>;

// -------------------------------------------------------------- counters

/// Monotonic durability counters, surfaced through `MetricsSnapshot`.
#[derive(Debug, Default)]
pub struct DurabilityCounters {
    pub wal_records: AtomicU64,
    pub wal_bytes: AtomicU64,
    pub checkpoints: AtomicU64,
    pub recovery_replayed_epochs: AtomicU64,
    pub recovery_truncated_bytes: AtomicU64,
}

// ------------------------------------------------------- fsync histogram

/// Lock-free log2-bucketed histogram of WAL `sync_data` latency: bucket 0
/// holds exact zeros, bucket `i >= 1` holds nanos in `[2^(i-1), 2^i)`.
/// A stalling disk shows up here long before it shows up anywhere else,
/// which is why the SLO monitor reads it. Mirrors the core crate's
/// histogram shape (reldb sits below that crate and cannot depend on it).
#[derive(Debug)]
pub struct FsyncHistogram {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for FsyncHistogram {
    fn default() -> FsyncHistogram {
        FsyncHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl FsyncHistogram {
    pub fn record(&self, nanos: u64) {
        let idx = if nanos == 0 { 0 } else { 64 - nanos.leading_zeros() as usize };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum_nanos(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile as the upper bound of the bucket containing that
    /// rank; 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return fsync_bucket_upper(i);
            }
        }
        u64::MAX
    }

    /// Cumulative `(upper_bound, count <= upper_bound)` pairs up to the
    /// highest non-empty bucket, for Prometheus-style exposition.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let last = match counts.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(last + 1);
        let mut running = 0u64;
        for (i, &c) in counts.iter().enumerate().take(last + 1) {
            running += c;
            out.push((fsync_bucket_upper(i), running));
        }
        out
    }
}

fn fsync_bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

// ----------------------------------------------------------------- crc32

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE, reflected) — the checksum guarding every WAL record body
/// and the checkpoint body.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ----------------------------------------------------------------- codec

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

const TAG_NULL: u8 = 0;
const TAG_BIGINT: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_VARCHAR: u8 = 3;
const TAG_BOOLEAN: u8 = 4;

pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bigint(i) => {
            out.push(TAG_BIGINT);
            put_u64(out, *i as u64);
        }
        Value::Double(d) => {
            out.push(TAG_DOUBLE);
            put_u64(out, d.to_bits());
        }
        Value::Varchar(s) => {
            out.push(TAG_VARCHAR);
            put_str(out, s);
        }
        Value::Boolean(b) => {
            out.push(TAG_BOOLEAN);
            out.push(*b as u8);
        }
    }
}

pub(crate) fn put_row(out: &mut Vec<u8>, row: &Row) {
    put_u32(out, row.len() as u32);
    for v in row {
        put_value(out, v);
    }
}

/// Bounded reader over an untrusted byte slice: every accessor fails
/// cleanly instead of panicking, so a corrupt record can never take the
/// process down.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| DbError::Io("truncated record".into()))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub fn u8(&mut self) -> DbResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> DbResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> DbResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn str(&mut self) -> DbResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DbError::Io("invalid utf-8 in record".into()))
    }

    pub fn value(&mut self) -> DbResult<Value> {
        match self.u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_BIGINT => Ok(Value::Bigint(self.u64()? as i64)),
            TAG_DOUBLE => Ok(Value::Double(f64::from_bits(self.u64()?))),
            TAG_VARCHAR => Ok(Value::Varchar(self.str()?)),
            TAG_BOOLEAN => Ok(Value::Boolean(self.u8()? != 0)),
            t => Err(DbError::Io(format!("unknown value tag {t}"))),
        }
    }

    pub fn row(&mut self) -> DbResult<Row> {
        let n = self.u32()? as usize;
        if n > MAX_RECORD_LEN {
            return Err(DbError::Io("row length out of range".into()));
        }
        (0..n).map(|_| self.value()).collect()
    }
}

// --------------------------------------------------------------- records

/// The durable effect of one commit on a single row: the final image
/// (covering insert and any number of updates) or a deletion. Intermediate
/// versions inside one transaction are invisible to every post-recovery
/// reader, so the WAL never carries them.
#[derive(Debug, Clone, PartialEq)]
pub enum NetChange {
    Put(Row),
    Del,
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// All net row changes of one transaction, published at `epoch`.
    Commit { epoch: u64, changes: Vec<(String, RowId, NetChange)> },
    /// A committed DDL statement, replayed as SQL text.
    Ddl { sql: String },
}

const KIND_COMMIT: u8 = 1;
const KIND_DDL: u8 = 2;
const OP_PUT: u8 = 0;
const OP_DEL: u8 = 1;

/// Upper bound on a sane record length; anything larger in a length
/// prefix means the tail is garbage.
const MAX_RECORD_LEN: usize = 1 << 30;

pub(crate) fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match rec {
        WalRecord::Commit { epoch, changes } => {
            out.push(KIND_COMMIT);
            put_u64(&mut out, *epoch);
            put_u32(&mut out, changes.len() as u32);
            for (table, rid, change) in changes {
                match change {
                    NetChange::Put(row) => {
                        out.push(OP_PUT);
                        put_str(&mut out, table);
                        put_u64(&mut out, *rid as u64);
                        put_row(&mut out, row);
                    }
                    NetChange::Del => {
                        out.push(OP_DEL);
                        put_str(&mut out, table);
                        put_u64(&mut out, *rid as u64);
                    }
                }
            }
        }
        WalRecord::Ddl { sql } => {
            out.push(KIND_DDL);
            put_str(&mut out, sql);
        }
    }
    out
}

pub(crate) fn decode_record(body: &[u8]) -> DbResult<WalRecord> {
    let mut c = Cursor::new(body);
    let rec = match c.u8()? {
        KIND_COMMIT => {
            let epoch = c.u64()?;
            let n = c.u32()? as usize;
            if n > MAX_RECORD_LEN {
                return Err(DbError::Io("change count out of range".into()));
            }
            let mut changes = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let op = c.u8()?;
                let table = c.str()?;
                let rid = c.u64()? as RowId;
                let change = match op {
                    OP_PUT => NetChange::Put(c.row()?),
                    OP_DEL => NetChange::Del,
                    o => return Err(DbError::Io(format!("unknown change op {o}"))),
                };
                changes.push((table, rid, change));
            }
            WalRecord::Commit { epoch, changes }
        }
        KIND_DDL => WalRecord::Ddl { sql: c.str()? },
        k => return Err(DbError::Io(format!("unknown record kind {k}"))),
    };
    if !c.is_empty() {
        return Err(DbError::Io("trailing bytes in record".into()));
    }
    Ok(rec)
}

// -------------------------------------------------------------- WAL file

const WAL_MAGIC: &[u8; 8] = b"D2GWAL1\n";
const WAL_HEADER_LEN: u64 = 16; // magic + u64 base_seq

fn io_err(ctx: &str, e: std::io::Error) -> DbError {
    DbError::Io(format!("{ctx}: {e}"))
}

/// fsync a directory so a rename inside it is durable.
fn sync_dir(dir: &Path) -> DbResult<()> {
    // Directory fsync is not available on every platform; opening may fail
    // (e.g. on Windows), in which case rename durability rides on the OS.
    if let Ok(f) = File::open(dir) {
        f.sync_all().map_err(|e| io_err("sync dir", e))?;
    }
    Ok(())
}

/// The open WAL file handle plus its position bookkeeping. Record `i` in
/// the file has sequence number `base_seq + i`; rotation after a
/// checkpoint rewrites the file to start at the checkpoint's sequence.
pub(crate) struct Wal {
    file: File,
    base_seq: u64,
    records: u64,
    len: u64,
    unsynced: u32,
}

/// What a WAL scan found on open: the surviving records (each paired with
/// its sequence number) and how many torn/corrupt tail bytes were cut.
pub(crate) struct WalScan {
    pub records: Vec<(u64, WalRecord)>,
    pub truncated_bytes: u64,
}

impl Wal {
    /// Open (creating if absent) the log at `path`, validate every record,
    /// and truncate any torn or corrupt tail in place. `fallback_base` is
    /// the sequence to restart from when the file header itself is
    /// unreadable (the latest checkpoint's WAL sequence).
    pub fn open(path: &Path, fallback_base: u64) -> DbResult<(Wal, WalScan)> {
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| io_err("open wal", e))?;
        let mut buf = Vec::new();
        file.seek(SeekFrom::Start(0)).map_err(|e| io_err("seek wal", e))?;
        file.read_to_end(&mut buf).map_err(|e| io_err("read wal", e))?;

        if buf.len() < WAL_HEADER_LEN as usize || &buf[..8] != WAL_MAGIC {
            // Empty, torn, or foreign header: start a fresh log. Anything
            // that was in the file is unreadable, so it is dropped — the
            // checkpoint (whose sequence seeds `fallback_base`) is the
            // recovery source.
            let dropped = buf.len() as u64;
            file.set_len(0).map_err(|e| io_err("truncate wal", e))?;
            let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
            header.extend_from_slice(WAL_MAGIC);
            put_u64(&mut header, fallback_base);
            file.write_all(&header).map_err(|e| io_err("write wal header", e))?;
            file.sync_data().map_err(|e| io_err("sync wal", e))?;
            let wal = Wal {
                file,
                base_seq: fallback_base,
                records: 0,
                len: WAL_HEADER_LEN,
                unsynced: 0,
            };
            return Ok((wal, WalScan { records: Vec::new(), truncated_bytes: dropped }));
        }

        let base_seq = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let region = &buf[WAL_HEADER_LEN as usize..];
        let mut off = 0usize;
        let mut records = Vec::new();
        loop {
            let rem = &region[off..];
            if rem.len() < 8 {
                break; // incomplete frame header: torn tail
            }
            let len = u32::from_le_bytes(rem[..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(rem[4..8].try_into().unwrap());
            if len == 0 || len > MAX_RECORD_LEN || rem.len() < 8 + len {
                break; // insane or incomplete body: torn tail
            }
            let body = &rem[8..8 + len];
            if crc32(body) != crc {
                break; // bit rot or torn write inside the body
            }
            match decode_record(body) {
                Ok(rec) => records.push((base_seq + records.len() as u64, rec)),
                Err(_) => break, // checksummed but unparseable: treat as tail
            }
            off += 8 + len;
        }
        let valid_len = WAL_HEADER_LEN + off as u64;
        let truncated_bytes = buf.len() as u64 - valid_len;
        if truncated_bytes > 0 {
            file.set_len(valid_len).map_err(|e| io_err("truncate wal tail", e))?;
            file.sync_data().map_err(|e| io_err("sync wal", e))?;
        }
        let wal = Wal {
            file,
            base_seq,
            records: records.len() as u64,
            len: valid_len,
            unsynced: 0,
        };
        Ok((wal, WalScan { records, truncated_bytes }))
    }

    /// Sequence number the next appended record will get.
    pub fn next_seq(&self) -> u64 {
        self.base_seq + self.records
    }

    /// Current byte length of the file (all records valid).
    pub fn byte_len(&self) -> u64 {
        self.len
    }
}

// --------------------------------------------------------- shared state

/// Everything the database shares with its WAL and checkpoint machinery.
pub(crate) struct DurabilityState {
    pub dir: PathBuf,
    pub mode: Durability,
    /// Open in every mode. `Off` never appends, but checkpoints still
    /// capture the real file position and rotate it, so records an image
    /// already covers can never be replayed on top of it. `None` only in
    /// unit tests that drive the WAL by hand.
    wal: Mutex<Option<Wal>>,
    pub counters: DurabilityCounters,
    crash: RwLock<Option<CrashHook>>,
    /// Set after a simulated crash: all further durable I/O fails, exactly
    /// as if the process were gone.
    dead: AtomicBool,
    /// Epoch a running checkpoint is serializing at (`u64::MAX` when
    /// none): vacuum must not reclaim versions still visible at it.
    pub checkpoint_floor: AtomicU64,
    /// Snapshot epoch of the last completed checkpoint.
    pub last_checkpoint_epoch: AtomicU64,
    /// Serializes whole checkpoints (capture → write → rotate).
    pub checkpoint_gate: Mutex<()>,
    /// Byte length of the WAL prefix known to be fsynced (updated after
    /// every successful `sync_data`). In `Batch` mode this lags `len` by up
    /// to [`BATCH_SYNC_EVERY`] - 1 records; the durability-contract test
    /// truncates a copied WAL to this length to simulate worst-case OS
    /// loss of the page cache.
    pub synced_len: AtomicU64,
    /// Latency of every WAL `sync_data`, for the serving layer's SLO
    /// monitor and Prometheus exposition.
    pub fsync: FsyncHistogram,
}

/// No checkpoint in progress.
pub(crate) const NO_FLOOR: u64 = u64::MAX;

impl DurabilityState {
    pub fn new(dir: PathBuf, mode: Durability, wal: Option<Wal>) -> DurabilityState {
        let synced = wal.as_ref().map(Wal::byte_len).unwrap_or(0);
        DurabilityState {
            dir,
            mode,
            wal: Mutex::new(wal),
            counters: DurabilityCounters::default(),
            crash: RwLock::new(None),
            dead: AtomicBool::new(false),
            checkpoint_floor: AtomicU64::new(NO_FLOOR),
            last_checkpoint_epoch: AtomicU64::new(0),
            checkpoint_gate: Mutex::new(()),
            synced_len: AtomicU64::new(synced),
            fsync: FsyncHistogram::default(),
        }
    }

    /// `sync_data` on the live WAL file, timed into the fsync histogram.
    fn timed_sync(&self, file: &File) -> std::io::Result<()> {
        let start = std::time::Instant::now();
        let out = file.sync_data();
        self.fsync.record(start.elapsed().as_nanos() as u64);
        out
    }

    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    pub fn set_crash_hook(&self, hook: Option<CrashHook>) {
        *self.crash.write() = hook;
    }

    fn fire(&self, point: CrashPoint) -> bool {
        let hook = self.crash.read().clone();
        hook.map(|h| h(point)).unwrap_or(false)
    }

    fn die(&self, point: CrashPoint) -> DbError {
        self.dead.store(true, Ordering::Release);
        DbError::Io(format!("simulated crash at {point}"))
    }

    fn check_alive(&self) -> DbResult<()> {
        if self.dead.load(Ordering::Acquire) {
            return Err(DbError::Io("durability layer is down (crashed)".into()));
        }
        Ok(())
    }

    /// Evaluate a crash point outside the WAL lock (checkpoint-side).
    pub fn crash_gate(&self, point: CrashPoint) -> DbResult<()> {
        self.check_alive()?;
        if self.fire(point) {
            return Err(self.die(point));
        }
        Ok(())
    }

    /// Append one record, observing the `Wal*` crash points. Under
    /// `Always` the record is fsynced before this returns; the caller
    /// publishes the commit only on `Ok`.
    pub fn append(&self, rec: &WalRecord) -> DbResult<()> {
        if self.mode == Durability::Off {
            return Ok(());
        }
        self.check_alive()?;
        let mut guard = self.wal.lock();
        let Some(w) = guard.as_mut() else { return Ok(()) };
        if self.fire(CrashPoint::WalAppend) {
            return Err(self.die(CrashPoint::WalAppend));
        }
        let body = encode_record(rec);
        let mut frame = Vec::with_capacity(8 + body.len());
        put_u32(&mut frame, body.len() as u32);
        put_u32(&mut frame, crc32(&body));
        frame.extend_from_slice(&body);
        if self.fire(CrashPoint::WalTorn) {
            // A genuine torn write: half the frame reaches the file, then
            // the process is gone. Recovery must cut this tail.
            let cut = (frame.len() / 2).max(1);
            let _ = w.file.write_all(&frame[..cut]);
            let _ = w.file.sync_data();
            return Err(self.die(CrashPoint::WalTorn));
        }
        w.file.write_all(&frame).map_err(|e| io_err("append wal", e))?;
        w.records += 1;
        w.len += frame.len() as u64;
        match self.mode {
            Durability::Always => {
                self.timed_sync(&w.file).map_err(|e| io_err("sync wal", e))?;
                self.synced_len.store(w.len, Ordering::Release);
            }
            Durability::Batch => {
                w.unsynced += 1;
                if w.unsynced >= BATCH_SYNC_EVERY {
                    self.timed_sync(&w.file).map_err(|e| io_err("sync wal", e))?;
                    w.unsynced = 0;
                    self.synced_len.store(w.len, Ordering::Release);
                }
            }
            Durability::Off => unreachable!(),
        }
        self.counters.wal_records.fetch_add(1, Ordering::Relaxed);
        self.counters.wal_bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        if self.fire(CrashPoint::WalSynced) {
            return Err(self.die(CrashPoint::WalSynced));
        }
        Ok(())
    }

    /// Capture the WAL position a checkpoint will cut at: the next
    /// sequence number and its byte offset. Must run while no commit can
    /// append (the caller holds the commit lock).
    pub fn capture_position(&self) -> (u64, u64) {
        let guard = self.wal.lock();
        match guard.as_ref() {
            Some(w) => (w.next_seq(), w.byte_len()),
            None => (0, 0),
        }
    }

    /// Drop the WAL prefix covered by a checkpoint: rewrite the file so
    /// it starts at `cut_seq`, whose first frame byte was at `cut_off`.
    /// Appends that landed after capture are carried over verbatim.
    pub fn rotate(&self, cut_seq: u64, cut_off: u64) -> DbResult<()> {
        self.check_alive()?;
        let mut guard = self.wal.lock();
        let Some(w) = guard.as_mut() else { return Ok(()) };
        // Validate the cut against the live log *before* touching the file:
        // a corrupt or stale checkpoint META can hand us a cut sequence the
        // log does not cover, and rewriting the WAL from it would silently
        // drop committed records (or wrap the arithmetic below).
        let cut_records = cut_seq.checked_sub(w.base_seq).ok_or_else(|| {
            DbError::Recovery(format!(
                "checkpoint cut sequence {cut_seq} precedes wal base sequence {}; \
                 refusing to rotate a log the checkpoint does not cover",
                w.base_seq
            ))
        })?;
        let carried = w.records.checked_sub(cut_records).ok_or_else(|| {
            DbError::Recovery(format!(
                "checkpoint cut sequence {cut_seq} is beyond the wal end {}; \
                 refusing to rotate past records that were never logged",
                w.next_seq()
            ))
        })?;
        // Make the suffix durable before switching files (Batch mode may
        // still owe an fsync for it).
        w.file.sync_data().map_err(|e| io_err("sync wal", e))?;
        w.file.seek(SeekFrom::Start(cut_off)).map_err(|e| io_err("seek wal", e))?;
        let mut tail = Vec::new();
        w.file.read_to_end(&mut tail).map_err(|e| io_err("read wal tail", e))?;

        let tmp = self.dir.join("wal.log.tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("create wal.tmp", e))?;
            let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
            header.extend_from_slice(WAL_MAGIC);
            put_u64(&mut header, cut_seq);
            f.write_all(&header).map_err(|e| io_err("write wal.tmp", e))?;
            f.write_all(&tail).map_err(|e| io_err("write wal.tmp", e))?;
            f.sync_data().map_err(|e| io_err("sync wal.tmp", e))?;
        }
        std::fs::rename(&tmp, self.wal_path()).map_err(|e| io_err("rename wal", e))?;
        sync_dir(&self.dir)?;

        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(self.wal_path())
            .map_err(|e| io_err("reopen wal", e))?;
        *w = Wal {
            file,
            base_seq: cut_seq,
            records: carried,
            len: WAL_HEADER_LEN + tail.len() as u64,
            unsynced: 0,
        };
        self.synced_len.store(w.len, Ordering::Release);
        drop(guard);
        if self.fire(CrashPoint::WalRotated) {
            return Err(self.die(CrashPoint::WalRotated));
        }
        Ok(())
    }

    /// Force any buffered WAL bytes to disk (used by `Batch` mode at
    /// checkpoint and shutdown boundaries).
    pub fn sync(&self) -> DbResult<()> {
        if self.mode == Durability::Off {
            return Ok(());
        }
        self.check_alive()?;
        let mut guard = self.wal.lock();
        if let Some(w) = guard.as_mut() {
            self.timed_sync(&w.file).map_err(|e| io_err("sync wal", e))?;
            w.unsynced = 0;
            self.synced_len.store(w.len, Ordering::Release);
        }
        Ok(())
    }

    /// Read committed WAL frames for a follower, starting at `from_seq`,
    /// capped at roughly `max_bytes` of frame data (at least one whole
    /// frame is returned when any is available). Returns
    /// [`WalTailResult::Gap`] when the log no longer (or does not yet)
    /// cover `from_seq` — after a rotation dropped it, or when the
    /// follower is ahead of a primary that lost state — in which case the
    /// follower must re-bootstrap from the checkpoint image.
    pub fn tail_since(&self, from_seq: u64, max_bytes: usize) -> DbResult<WalTailResult> {
        self.check_alive()?;
        let mut guard = self.wal.lock();
        let Some(w) = guard.as_mut() else {
            return Err(DbError::Io("wal is not open".into()));
        };
        let primary_next = w.next_seq();
        if from_seq < w.base_seq || from_seq > primary_next {
            return Ok(WalTailResult::Gap { base_seq: w.base_seq });
        }
        // Frames are variable-length, so the only way to locate `from_seq`
        // is to walk headers from the start. The read happens under the WAL
        // lock, so no append can race it; append mode keeps writes pinned
        // to the end regardless of the read cursor (rotation relies on the
        // same property).
        w.file
            .seek(SeekFrom::Start(WAL_HEADER_LEN))
            .map_err(|e| io_err("seek wal", e))?;
        let mut region = Vec::new();
        w.file.read_to_end(&mut region).map_err(|e| io_err("read wal", e))?;
        let corrupt = |what: &str| {
            DbError::Recovery(format!("wal frame walk failed at a {what}; log is corrupt in memory"))
        };
        let mut off = 0usize;
        for _ in 0..(from_seq - w.base_seq) {
            off += frame_span(&region, off).ok_or_else(|| corrupt("skipped frame"))?;
        }
        let start = off;
        let mut records = 0u64;
        while from_seq + records < primary_next {
            let span = frame_span(&region, off).ok_or_else(|| corrupt("shipped frame"))?;
            off += span;
            records += 1;
            if off - start >= max_bytes {
                break;
            }
        }
        Ok(WalTailResult::Tail(WalTail {
            from_seq,
            records,
            next_seq: from_seq + records,
            primary_next_seq: primary_next,
            frames: region[start..off].to_vec(),
        }))
    }
}

/// Byte span (header + body) of the frame at `off`, or `None` if the
/// region does not hold a whole valid-looking frame there.
fn frame_span(region: &[u8], off: usize) -> Option<usize> {
    let rem = region.get(off..)?;
    if rem.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(rem[..4].try_into().unwrap()) as usize;
    if len == 0 || len > MAX_RECORD_LEN || rem.len() < 8 + len {
        return None;
    }
    Some(8 + len)
}

/// Strictly parse a shipped run of WAL frames: every frame must be whole,
/// CRC-clean, and decodable, and no partial trailing bytes are tolerated.
/// Unlike the lenient open-time scan (which treats a bad tail as a torn
/// write to truncate), a replica received these bytes over a verified
/// HTTP body — anything malformed means the stream is corrupt and the
/// batch must be rejected, not silently shortened.
pub(crate) fn parse_frames(frames: &[u8], start_seq: u64) -> DbResult<Vec<(u64, WalRecord)>> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < frames.len() {
        let rem = &frames[off..];
        if rem.len() < 8 {
            return Err(DbError::Recovery("truncated frame header in shipped wal batch".into()));
        }
        let len = u32::from_le_bytes(rem[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rem[4..8].try_into().unwrap());
        if len == 0 || len > MAX_RECORD_LEN || rem.len() < 8 + len {
            return Err(DbError::Recovery("truncated frame body in shipped wal batch".into()));
        }
        let body = &rem[8..8 + len];
        if crc32(body) != crc {
            return Err(DbError::Recovery("crc mismatch in shipped wal batch".into()));
        }
        let rec = decode_record(body)
            .map_err(|e| DbError::Recovery(format!("undecodable shipped wal record: {e}")))?;
        out.push((start_seq + out.len() as u64, rec));
        off += 8 + len;
    }
    Ok(out)
}

/// A run of committed WAL frames read for a follower, still in on-disk
/// framing (`[u32 len][u32 crc][body]` per record).
#[derive(Debug, Clone)]
pub struct WalTail {
    /// Sequence of the first frame in `frames`.
    pub from_seq: u64,
    /// Number of whole frames in `frames`.
    pub records: u64,
    /// Sequence the follower should request next (`from_seq + records`).
    pub next_seq: u64,
    /// The primary's own next sequence at read time; the follower's lag in
    /// records is `primary_next_seq - next_seq`.
    pub primary_next_seq: u64,
    /// Raw frame bytes, exactly as they sit in the log file.
    pub frames: Vec<u8>,
}

/// Outcome of a follower's tail request.
#[derive(Debug, Clone)]
pub enum WalTailResult {
    /// Frames starting at the requested sequence (possibly zero frames if
    /// the follower is already caught up).
    Tail(WalTail),
    /// The log does not cover the requested sequence: rotation dropped it,
    /// or the follower is ahead of this primary. Re-bootstrap from the
    /// checkpoint image; `base_seq` is the oldest sequence still held.
    Gap { base_seq: u64 },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_codec_round_trips() {
        let recs = [
            WalRecord::Commit {
                epoch: 42,
                changes: vec![
                    (
                        "Account".into(),
                        7,
                        NetChange::Put(vec![
                            Value::Bigint(-1),
                            Value::Null,
                            Value::Varchar("x''y".into()),
                            Value::Double(2.5),
                            Value::Boolean(true),
                        ]),
                    ),
                    ("Account".into(), 8, NetChange::Del),
                ],
            },
            WalRecord::Ddl { sql: "CREATE TABLE t (a BIGINT)".into() },
            WalRecord::Commit { epoch: 1, changes: vec![] },
        ];
        for rec in &recs {
            let body = encode_record(rec);
            assert_eq!(&decode_record(&body).unwrap(), rec);
        }
    }

    #[test]
    fn decoder_rejects_garbage_without_panicking() {
        // Every prefix of a valid body, plus pure noise, must fail cleanly.
        let body = encode_record(&WalRecord::Commit {
            epoch: 3,
            changes: vec![("t".into(), 0, NetChange::Put(vec![Value::Bigint(9)]))],
        });
        for cut in 0..body.len() {
            let _ = decode_record(&body[..cut]); // must not panic
        }
        assert!(decode_record(&[0xFF; 32]).is_err());
        assert!(decode_record(&[]).is_err());
    }

    fn commit_rec(epoch: u64) -> WalRecord {
        WalRecord::Commit { epoch, changes: vec![("t".into(), 0, NetChange::Del)] }
    }

    #[test]
    fn rotate_rejects_cut_outside_log() {
        let dir = std::env::temp_dir().join(format!("reldb-rotate-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (wal, _) = Wal::open(&dir.join("wal.log"), 5).unwrap();
        let state = DurabilityState::new(dir.clone(), Durability::Always, Some(wal));
        for epoch in 1..=2u64 {
            state.append(&commit_rec(epoch)).unwrap();
        }
        // base_seq = 5, records = 2, next = 7. A stale/corrupt checkpoint
        // pointing before the base or past the end must fail with a
        // structured recovery error, not a panic or a wrapped subtraction.
        for bad_cut in [3u64, 8] {
            match state.rotate(bad_cut, WAL_HEADER_LEN) {
                Err(DbError::Recovery(_)) => {}
                other => panic!("rotate({bad_cut}) => {other:?}, want Recovery error"),
            }
        }
        // The refusal must leave the log intact and the layer alive: more
        // appends and a *valid* rotation still work.
        state.append(&commit_rec(3)).unwrap();
        let (next, off) = state.capture_position();
        assert_eq!(next, 8);
        state.rotate(next, off).unwrap();
        assert!(matches!(state.tail_since(7, usize::MAX).unwrap(), WalTailResult::Gap { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_reads_frames_and_reports_gap_after_rotation() {
        let dir = std::env::temp_dir().join(format!("reldb-tail-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (wal, _) = Wal::open(&dir.join("wal.log"), 0).unwrap();
        let state = DurabilityState::new(dir.clone(), Durability::Always, Some(wal));
        for epoch in 1..=4u64 {
            state.append(&commit_rec(epoch)).unwrap();
        }
        // Full tail from 0: all four records round-trip through the strict
        // parser with consecutive sequences.
        let WalTailResult::Tail(t) = state.tail_since(0, usize::MAX).unwrap() else {
            panic!("expected frames");
        };
        assert_eq!((t.from_seq, t.records, t.next_seq, t.primary_next_seq), (0, 4, 4, 4));
        let parsed = parse_frames(&t.frames, t.from_seq).unwrap();
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed[3].0, 3);
        assert_eq!(parsed[2].1, commit_rec(3));
        // A 1-byte budget still ships one whole frame; the next poll
        // resumes where it left off.
        let WalTailResult::Tail(t) = state.tail_since(1, 1).unwrap() else {
            panic!("expected frames");
        };
        assert_eq!((t.from_seq, t.records, t.next_seq), (1, 1, 2));
        // Caught-up follower gets an empty tail, not a gap.
        let WalTailResult::Tail(t) = state.tail_since(4, usize::MAX).unwrap() else {
            panic!("expected empty tail");
        };
        assert_eq!(t.records, 0);
        assert!(t.frames.is_empty());
        // Ahead of the log (primary lost state) and behind the base after
        // rotation both demand a re-bootstrap.
        assert!(matches!(state.tail_since(9, usize::MAX).unwrap(), WalTailResult::Gap { .. }));
        let (_, cut_off) = state.capture_position();
        state.rotate(4, cut_off).unwrap();
        match state.tail_since(0, usize::MAX).unwrap() {
            WalTailResult::Gap { base_seq } => assert_eq!(base_seq, 4),
            other => panic!("expected gap after rotation, got {other:?}"),
        }
        // Corrupt shipped bytes are rejected outright by the strict parser.
        assert!(parse_frames(&[1, 2, 3], 0).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_survives_reopen_and_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("reldb-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");

        let state = DurabilityState::new(dir.clone(), Durability::Always, None);
        let (wal, scan) = Wal::open(&path, 0).unwrap();
        assert!(scan.records.is_empty());
        *state.wal.lock() = Some(wal);
        for epoch in 1..=3u64 {
            state
                .append(&WalRecord::Commit {
                    epoch,
                    changes: vec![("t".into(), 0, NetChange::Del)],
                })
                .unwrap();
        }
        drop(state);

        // Clean reopen sees all three records with consecutive sequences.
        let (_, scan) = Wal::open(&path, 0).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.records[0].0, 0);
        assert_eq!(scan.records[2].0, 2);

        // Tear off the last 3 bytes: the final record must be cut, the
        // prefix preserved, and a further reopen must be clean.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let (_, scan) = Wal::open(&path, 0).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(scan.truncated_bytes > 0);
        let (_, scan) = Wal::open(&path, 0).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
