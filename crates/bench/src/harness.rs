//! Shared benchmark harness: builds all three systems over the same
//! LinkBench dataset and runs timed query workloads against them.
//!
//! Scaling knobs come from environment variables so the same binaries run
//! on laptops and CI:
//!
//! * `LB_SMALL` — vertex count of the small dataset (default 20 000;
//!   stands in for LinkBench-10M),
//! * `LB_LARGE` — vertex count of the large dataset (default 200 000;
//!   stands in for LinkBench-100M),
//! * `LB_ITERS` — queries measured per point (default 400),
//! * `LB_THREADS` — concurrent clients for the throughput figure
//!   (default 16; the paper used 50 on a 32-core server),
//! * `DB2GRAPH_THREADS` — intra-query worker threads for Db2 Graph's
//!   probe fan-out (default: available parallelism; set to 1 for fully
//!   sequential execution).

use std::sync::Arc;
use std::time::{Duration, Instant};

use db2graph_core::{Db2Graph, GraphOptions, StrategyConfig};
use gremlin::strategy::{IdentityRemoval, StrategyRegistry};
use gremlin::{GraphBackend, ScriptRunner};
use gstore::{export_graph, load_janus, load_native, open_native, JanusLikeDb, NativeGraphDb};
use linkbench::{generate, materialize, overlay_config, GraphData, LinkBenchConfig, QueryKind, QueryStream};
use reldb::Database;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Benchmark scale parameters.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    pub small_vertices: u64,
    pub large_vertices: u64,
    pub iters: usize,
    pub threads: usize,
}

impl Scale {
    pub fn from_env() -> Scale {
        // The paper ran 50 clients on a 32-core server (~1.5 clients per
        // core). Default to 2x the available cores so the concurrency
        // contrast can actually materialize on this machine.
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Scale {
            small_vertices: env_usize("LB_SMALL", 20_000) as u64,
            large_vertices: env_usize("LB_LARGE", 200_000) as u64,
            iters: env_usize("LB_ITERS", 400),
            threads: env_usize("LB_THREADS", (2 * cores).max(2)),
        }
    }

    /// Number of physical cores backing the run (for result caveats).
    pub fn cores() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Which dataset a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    Small,
    Large,
}

impl Dataset {
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Small => "LB-small",
            Dataset::Large => "LB-large",
        }
    }
}

/// The three systems of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    Db2Graph,
    Native,
    Janus,
}

impl SystemKind {
    pub const ALL: [SystemKind; 3] = [SystemKind::Db2Graph, SystemKind::Native, SystemKind::Janus];

    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Db2Graph => "Db2 Graph",
            SystemKind::Native => "GDB-X (native sim)",
            SystemKind::Janus => "JanusGraph (sim)",
        }
    }
}

/// Everything needed to benchmark one dataset across all systems.
pub struct BenchEnv {
    pub dataset: Dataset,
    pub data: GraphData,
    pub db: Arc<Database>,
    pub graph: Arc<Db2Graph>,
    pub native: Arc<NativeGraphDb>,
    pub janus: Arc<JanusLikeDb>,
    /// Per-system load/open reports (Table 3).
    pub reports: Vec<gstore::LoadReport>,
    /// Shared strategy registry for the baseline runners (the generic
    /// pushdown rewrites every mature provider has).
    registry: StrategyRegistry,
}

/// Build a dataset, materialize it relationally, open Db2 Graph over it,
/// and export + load both baselines — timing every phase.
pub fn build_env(dataset: Dataset, scale: Scale) -> BenchEnv {
    let n = match dataset {
        Dataset::Small => scale.small_vertices,
        Dataset::Large => scale.large_vertices,
    };
    let cfg = match dataset {
        Dataset::Small => LinkBenchConfig::small().with_vertices(n),
        Dataset::Large => LinkBenchConfig::large().with_vertices(n),
    };
    let data = generate(&cfg);
    let (db, _load) = materialize(&data).expect("materialize linkbench");

    // Db2 Graph: no load at all; "open graph" is topology resolution.
    let open_start = Instant::now();
    let graph = Db2Graph::open(db.clone(), &overlay_config()).expect("open overlay");
    let db2_open = open_start.elapsed();
    let db2_bytes: usize = db
        .table_names()
        .iter()
        .filter_map(|t| db.get_table(t))
        .map(|t| t.approx_bytes())
        .sum();

    // Baselines: export from the RDBMS, then load, then open.
    let backend = backend_of(&graph);
    let (exported, export_time) = export_graph(backend).expect("export");

    // Cache budget: the small dataset fits entirely in the native store's
    // cache (GDB-X's sweet spot); the large one does not (Figure 5's
    // crossover). Record count = vertices + edges.
    let records = exported.vertices.len() + exported.edges.len();
    let cache_capacity = match dataset {
        Dataset::Small => records * 2,
        Dataset::Large => records / 12,
    };
    let (native, native_load) = load_native(&exported, cache_capacity);
    let native_open = open_native(&native);
    // On the large dataset the paper's GDB-X data (327 GB) exceeded memory:
    // every cache miss became a storage read. The small dataset fit
    // entirely in cache (no penalty). See DESIGN.md §2.
    if dataset == Dataset::Large {
        native.set_miss_penalty(std::time::Duration::from_micros(
            env_usize("LB_NATIVE_MISS_US", 15) as u64,
        ));
    }
    let native = Arc::new(native);

    let (janus, janus_load) = load_janus(&exported);
    // The Janus-like store pays a per-KV-operation overhead modelling the
    // real system's layered storage stack; on the large dataset its data
    // no longer fit the page cache either, so the per-op cost grows.
    let janus_op_us = match dataset {
        Dataset::Small => env_usize("LB_JANUS_OP_US", 25),
        Dataset::Large => env_usize("LB_JANUS_OP_US_LARGE", 60),
    };
    janus.set_op_overhead(std::time::Duration::from_micros(janus_op_us as u64));
    let janus_open_start = Instant::now();
    let _ = janus.kv().len(); // opening a KV store is trivial
    let janus_open = janus_open_start.elapsed();
    let janus = Arc::new(janus);

    let reports = vec![
        gstore::LoadReport {
            system: "Db2 Graph".into(),
            export: Duration::ZERO,
            load: Duration::ZERO,
            open: db2_open,
            storage_bytes: db2_bytes,
        },
        gstore::LoadReport {
            system: "GDB-X (native sim)".into(),
            export: export_time,
            load: native_load,
            open: native_open,
            storage_bytes: native.storage_bytes(),
        },
        gstore::LoadReport {
            system: "JanusGraph (sim)".into(),
            export: export_time,
            load: janus_load,
            open: janus_open,
            storage_bytes: janus.storage_bytes(),
        },
    ];

    let mut registry = StrategyRegistry::new();
    registry.add(Arc::new(IdentityRemoval));
    for s in StrategyConfig::default().build() {
        registry.add(s);
    }

    BenchEnv { dataset, data, db, graph, native, janus, reports, registry }
}

/// Borrow the overlay backend out of a Db2Graph (for export).
fn backend_of(graph: &Arc<Db2Graph>) -> &dyn GraphBackend {
    // Db2Graph executes through its backend; for export we reuse the same
    // code path by running a full V()/E() fetch through a runner-less
    // accessor. Db2Graph doesn't expose the backend directly, so export
    // goes through Gremlin.
    struct Shim(Arc<Db2Graph>);
    impl GraphBackend for Shim {
        fn graph_elements(
            &self,
            kind: gremlin::ElementKind,
            filter: &gremlin::ElementFilter,
        ) -> gremlin::GResult<gremlin::BackendOutput> {
            let q = match kind {
                gremlin::ElementKind::Vertices => "g.V()",
                gremlin::ElementKind::Edges => "g.E()",
            };
            let _ = filter;
            let values = self
                .0
                .run(q)
                .map_err(|e| gremlin::GremlinError::Backend(e.to_string()))?;
            let elements: Vec<gremlin::Element> =
                values.iter().filter_map(|v| v.as_element()).collect();
            Ok(gremlin::BackendOutput::Elements(elements))
        }
        fn adjacent(
            &self,
            _s: &[gremlin::Element],
            _d: gremlin::Direction,
            _l: &[String],
            _t: gremlin::ElementKind,
            _f: &gremlin::ElementFilter,
        ) -> gremlin::GResult<Vec<Vec<gremlin::Element>>> {
            Err(gremlin::GremlinError::Unsupported("export shim".into()))
        }
        fn edge_endpoints(
            &self,
            _e: &[gremlin::Edge],
            _end: gremlin::EdgeEnd,
            _c: &[Option<gremlin::ElementId>],
            _f: &gremlin::ElementFilter,
        ) -> gremlin::GResult<Vec<Vec<gremlin::Element>>> {
            Err(gremlin::GremlinError::Unsupported("export shim".into()))
        }
    }
    // Leak one shim per env build (bounded; lives for the bench process).
    Box::leak(Box::new(Shim(graph.clone())))
}

impl BenchEnv {
    /// Execute one Gremlin query on a system; returns the result count.
    pub fn run_query(&self, sys: SystemKind, query: &str) -> usize {
        match sys {
            SystemKind::Db2Graph => self.graph.run(query).expect("db2graph query").len(),
            SystemKind::Native => ScriptRunner::new(self.native.as_ref())
                .with_strategies(self.registry.clone())
                .run(query)
                .expect("native query")
                .len(),
            SystemKind::Janus => ScriptRunner::new(self.janus.as_ref())
                .with_strategies(self.registry.clone())
                .run(query)
                .expect("janus query")
                .len(),
        }
    }

    /// Average latency of `iters` queries of one kind on one system.
    pub fn measure_latency(&self, sys: SystemKind, kind: QueryKind, iters: usize) -> Duration {
        let mut stream = QueryStream::new(&self.data, kind, 0x10 + kind as u64);
        // Warmup.
        for q in stream.batch(iters / 10 + 1) {
            self.run_query(sys, &q);
        }
        let queries = stream.batch(iters);
        let start = Instant::now();
        for q in &queries {
            self.run_query(sys, q);
        }
        start.elapsed() / iters as u32
    }

    /// Emit Db2 Graph's aggregate metrics snapshot (traversals, SQL
    /// statements, wall time, rows, template cache hit rate, table
    /// elimination counters) as one JSON line, so bench runs double as a
    /// pipeline-health report.
    pub fn print_metrics_snapshot(&self) {
        let m = self.graph.metrics();
        println!(
            "db2graph metrics [{}]: {}",
            self.dataset.name(),
            m.to_json().to_compact()
        );
        // Latency percentiles (log2-bucket upper bounds) alongside the raw
        // counters: end-to-end query wall time plus per-statement SQL time.
        println!(
            "db2graph latency percentiles [{}]: query p50={} p90={} p99={} sql p50={} p90={} p99={}",
            self.dataset.name(),
            m.query_p50_nanos,
            m.query_p90_nanos,
            m.query_p99_nanos,
            m.sql_p50_nanos,
            m.sql_p90_nanos,
            m.sql_p99_nanos,
        );
    }

    /// Demonstrate the intra-query fan-out: a frontier-heavy workload
    /// (32-id frontier, unlabeled `out()` probing all ten edge tables and
    /// resolving endpoints across all ten vertex tables) on one worker vs
    /// the configured count (`DB2GRAPH_THREADS`, default: all cores), over
    /// the same live tables. Emits one comparison line per dataset.
    pub fn print_parallel_speedup(&self, iters: usize) {
        let seq = Db2Graph::open_with_options(
            self.db.clone(),
            &overlay_config(),
            GraphOptions { threads: Some(1), ..Default::default() },
        )
        .expect("open sequential overlay");
        let par = &self.graph;
        let ids: Vec<i64> = self.data.nodes.iter().map(|n| n.id).collect();
        let query_at = |i: usize| {
            let k = 32.min(ids.len().max(1));
            let picked: Vec<String> =
                (0..k).map(|j| ids[(i * 31 + j * 7) % ids.len()].to_string()).collect();
            format!("g.V({}).out().count()", picked.join(", "))
        };
        let measure = |g: &Db2Graph| {
            // Warmup fills the template cache so both modes measure
            // execution, not statement preparation.
            for i in 0..(iters / 10 + 1) {
                g.run(&query_at(i)).expect("warmup query");
            }
            let start = Instant::now();
            for i in 0..iters {
                g.run(&query_at(i)).expect("bench query");
            }
            start.elapsed() / iters.max(1) as u32
        };
        let seq_lat = measure(&seq);
        let par_lat = measure(par);
        let cores = Scale::cores();
        let caveat = if cores < 2 {
            " [CAVEAT: 1 core — workers time-slice, expect no speedup]"
        } else {
            ""
        };
        println!(
            "db2graph fan-out [{}]: 32-id frontier out().count(): 1 thread {} vs {} threads {} ({:.2}x speedup){}",
            self.dataset.name(),
            fmt_duration(seq_lat),
            par.threads(),
            fmt_duration(par_lat),
            seq_lat.as_secs_f64() / par_lat.as_secs_f64().max(1e-12),
            caveat,
        );
    }

    /// Cold vs warm adjacency-cache latency on a two-hop expansion
    /// (32 seed ids, unlabeled `out().out()` across all ten edge
    /// tables — the first hop is strategy-fused into an edge scan, the
    /// second expands a real frontier through the Graph Structure
    /// module's adjacency path): `cold` opens the overlay with the cache
    /// disabled (`adj_cache_mb = 0`), `warm` opens it with the default
    /// budget and eagerly builds complete CSR segments via
    /// `warm_adjacency_cache()` before measuring, so the frontier
    /// expansion is served from memory with zero SQL. Prints one
    /// comparison line and returns `(cold, warm)` mean latencies for the
    /// figure report.
    pub fn print_cache_speedup(&self, iters: usize) -> (Duration, Duration) {
        let cold = Db2Graph::open_with_options(
            self.db.clone(),
            &overlay_config(),
            GraphOptions { adj_cache_mb: Some(0), ..Default::default() },
        )
        .expect("open cache-off overlay");
        let warm =
            Db2Graph::open_with_options(self.db.clone(), &overlay_config(), Default::default())
                .expect("open cached overlay");
        warm.warm_adjacency_cache().expect("warm adjacency cache");
        let ids: Vec<i64> = self.data.nodes.iter().map(|n| n.id).collect();
        let query_at = |i: usize| {
            let k = 32.min(ids.len().max(1));
            let picked: Vec<String> =
                (0..k).map(|j| ids[(i * 31 + j * 7) % ids.len()].to_string()).collect();
            format!("g.V({}).out().out().count()", picked.join(", "))
        };
        let measure = |g: &Db2Graph| {
            for i in 0..(iters / 10 + 1) {
                g.run(&query_at(i)).expect("warmup query");
            }
            let start = Instant::now();
            for i in 0..iters {
                g.run(&query_at(i)).expect("bench query");
            }
            start.elapsed() / iters.max(1) as u32
        };
        let cold_lat = measure(&cold);
        let warm_lat = measure(&warm);
        let m = warm.metrics();
        println!(
            "db2graph adjacency cache [{}]: 2-hop out().out().count(): cold {} vs warm {} ({:.2}x speedup, {} hits, {} bytes cached)",
            self.dataset.name(),
            fmt_duration(cold_lat),
            fmt_duration(warm_lat),
            cold_lat.as_secs_f64() / warm_lat.as_secs_f64().max(1e-12),
            m.adj_cache_hits,
            m.adj_cache_bytes,
        );
        (cold_lat, warm_lat)
    }

    /// Throughput (queries/sec) with `threads` concurrent clients running
    /// `iters` queries each.
    pub fn measure_throughput(
        &self,
        sys: SystemKind,
        kind: QueryKind,
        threads: usize,
        iters: usize,
    ) -> f64 {
        let total = threads * iters;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let env = &*self;
                scope.spawn(move || {
                    let mut stream = QueryStream::new(&env.data, kind, 1000 + t as u64);
                    for _ in 0..iters {
                        let q = stream.next_query();
                        env.run_query(sys, &q);
                    }
                });
            }
        });
        total as f64 / start.elapsed().as_secs_f64()
    }
}

/// Pretty duration for table output.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Pretty byte count.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KB", b as f64 / (1 << 10) as f64)
    }
}

/// Print an aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line: Vec<String> =
        headers.iter().enumerate().map(|(i, h)| format!("{:w$}", h, w = widths[i])).collect();
    println!("{}", line.join(" | "));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-+-"));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join(" | "));
    }
}
