//! Machine-readable benchmark output, so the perf trajectory is tracked
//! across PRs instead of living only in scrollback: each harness writes a
//! `BENCH_<name>.json` next to its human-readable table.
//!
//! The file lands in `$BENCH_JSON_DIR` when set, else the current
//! directory. Shape: `{"bench": <name>, "unix_millis": <when>,
//! "meta": {...knobs...}, "rows": [...]}` — one row object per measured
//! point, flat numeric fields, stable keys.

use std::time::{SystemTime, UNIX_EPOCH};

use db2graph_core::json::Json;

/// Accumulates rows for one benchmark run and writes them on `write()`.
pub struct BenchReport {
    name: String,
    meta: Vec<(String, Json)>,
    rows: Vec<Json>,
}

impl BenchReport {
    pub fn new(name: &str) -> BenchReport {
        BenchReport { name: name.to_string(), meta: Vec::new(), rows: Vec::new() }
    }

    /// Record a run-level knob (scale, client count, ...).
    pub fn meta(&mut self, key: &str, value: Json) {
        self.meta.push((key.to_string(), value));
    }

    /// Record one measured point.
    pub fn push(&mut self, row: Json) {
        self.rows.push(row);
    }

    /// The destination path: `$BENCH_JSON_DIR/BENCH_<name>.json`, or the
    /// current directory when the variable is unset.
    pub fn path(&self) -> std::path::PathBuf {
        let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
        std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name))
    }

    /// Write the report. Benchmarks print results as they go, so a write
    /// failure (read-only CI mount, missing dir) warns instead of
    /// panicking away the run's stdout value.
    pub fn write(self) {
        let unix_millis = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let json = Json::Obj(vec![
            ("bench".into(), Json::str(self.name.clone())),
            ("unix_millis".into(), Json::u64(unix_millis)),
            ("meta".into(), Json::Obj(self.meta.clone())),
            ("rows".into(), Json::arr(self.rows.clone())),
        ]);
        let path = self.path();
        match std::fs::write(&path, json.to_compact() + "\n") {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}
