pub mod harness;
pub mod report;
