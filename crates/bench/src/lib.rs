pub mod harness;
