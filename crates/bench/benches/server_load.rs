//! Load driver for the HTTP serving layer: N client threads hammer
//! `POST /query` over real sockets against an in-process `GraphServer`
//! and report throughput plus p50/p90/p99 latency per query shape —
//! the serving-layer analogue of the paper's Figure 6 concurrency story
//! (the RDBMS engine, and now the service in front of it, is good at
//! handling concurrent queries).
//!
//! Every shape runs twice: `close` mode (a fresh TCP connection per
//! request, the pre-keep-alive serving path) and `keepalive` mode (each
//! client reuses one persistent connection) — the delta is what the
//! persistent-connection request loop saves in dial/teardown churn.
//!
//! Knobs: `SRV_CLIENTS` (default 2x cores), `SRV_REQUESTS` (per client,
//! default 200), `SRV_ACCOUNTS` (dataset size, default 1 000),
//! `DB2GRAPH_THREADS` (intra-query fan-out).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::report::BenchReport;
use db2graph_core::json::Json;
use db2graph_core::{Db2Graph, GraphOptions, Histogram, OverlayConfig, VTableConfig};
use db2graph_server::{http_call, GraphServer, HttpClient, ServerConfig};
use reldb::Database;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn build_graph(accounts: usize) -> Arc<Db2Graph> {
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE Account (aid BIGINT PRIMARY KEY, balance BIGINT)").unwrap();
    // Insert in chunks to keep statement size bounded.
    for chunk in (0..accounts).collect::<Vec<_>>().chunks(1000) {
        let rows: Vec<String> =
            chunk.iter().map(|i| format!("({i}, {})", 100 + i % 17)).collect();
        db.execute(&format!("INSERT INTO Account VALUES {}", rows.join(", "))).unwrap();
    }
    let overlay = OverlayConfig {
        v_tables: vec![VTableConfig {
            table_name: "Account".into(),
            prefixed_id: true,
            id: "'acct'::aid".into(),
            fix_label: true,
            label: "'acct'".into(),
            properties: Some(vec!["balance".into()]),
        }],
        e_tables: vec![],
    };
    Db2Graph::open_with_options(db, &overlay, GraphOptions::default()).unwrap()
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let clients = env_usize("SRV_CLIENTS", (2 * cores).max(2));
    let requests = env_usize("SRV_REQUESTS", 200);
    let accounts = env_usize("SRV_ACCOUNTS", 1_000);
    let graph = build_graph(accounts);
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: clients.min(cores.max(2)),
        queue_depth: clients * 2,
        ..Default::default()
    };
    let workers = config.workers;
    let handle = GraphServer::start(graph, config).expect("bind");
    let addr = handle.addr();
    println!(
        "\n=== Server load: {clients} clients x {requests} requests, {workers} workers, {accounts} accounts ===\n"
    );

    let mut report = BenchReport::new("server_load");
    report.meta("clients", Json::u64(clients as u64));
    report.meta("requests_per_client", Json::u64(requests as u64));
    report.meta("workers", Json::u64(workers as u64));
    report.meta("accounts", Json::u64(accounts as u64));

    let shapes: &[(&str, &str)] = &[
        ("point lookup", "g.V().hasLabel('acct').limit(1).values('balance')"),
        ("full aggregate", "g.V().values('balance').sum()"),
        ("filter + count", "g.V().has('balance', 105).count()"),
    ];
    for (name, gremlin) in shapes {
        for keepalive in [false, true] {
            let mode = if keepalive { "keepalive" } else { "close" };
            let hist = Histogram::default();
            let errors = std::sync::atomic::AtomicUsize::new(0);
            let started = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..clients {
                    s.spawn(|| {
                        let mut client = HttpClient::new(addr, Duration::from_secs(30));
                        for _ in 0..requests {
                            let t = Instant::now();
                            let ok = if keepalive {
                                matches!(client.call("POST", "/query", gremlin),
                                         Ok(r) if r.status == 200)
                            } else {
                                matches!(
                                    http_call(addr, "POST", "/query", gremlin,
                                              Duration::from_secs(30)),
                                    Ok(r) if r.status == 200
                                )
                            };
                            if ok {
                                hist.record(t.elapsed().as_nanos() as u64);
                            } else {
                                errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
            let wall = started.elapsed();
            let (p50, p90, p99) = hist.percentiles();
            let total = clients * requests;
            let req_per_sec = total as f64 / wall.as_secs_f64();
            let failed = errors.load(std::sync::atomic::Ordering::Relaxed);
            println!(
                "{name:>15} [{mode:>9}]: {:>8.0} req/s | p50 {:>7.3} ms | p90 {:>7.3} ms | p99 {:>7.3} ms | {} ok, {} failed",
                req_per_sec,
                p50 as f64 / 1e6,
                p90 as f64 / 1e6,
                p99 as f64 / 1e6,
                hist.count(),
                failed,
            );
            report.push(Json::obj(vec![
                ("shape", Json::str(*name)),
                ("mode", Json::str(mode)),
                ("req_per_sec", Json::num(req_per_sec)),
                ("p50_ms", Json::num(p50 as f64 / 1e6)),
                ("p90_ms", Json::num(p90 as f64 / 1e6)),
                ("p99_ms", Json::num(p99 as f64 / 1e6)),
                ("ok", Json::u64(hist.count())),
                ("failed", Json::u64(failed as u64)),
            ]));
        }
    }
    report.write();

    let reuses = handle.metrics().keepalive_reuses();
    let report = handle.shutdown();
    println!(
        "\nserver drained: {} admitted, {} completed, {} shed with 429, {} keep-alive reuses\n",
        report.admitted, report.completed, report.rejected, reuses
    );
    assert_eq!(report.admitted, report.completed, "drain invariant");
}
