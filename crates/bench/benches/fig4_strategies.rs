//! Regenerates **Figure 4**: Db2 Graph latency with vs without the
//! optimized traversal strategies (Section 6.2), per LinkBench query.
//! The data-dependent runtime optimizations (Section 6.3) stay on in both
//! configurations, exactly as in the paper. Paper reference: 2.8×–3.3×
//! speedups from the strategies.

use std::time::Instant;

use bench::harness::{fmt_duration, print_table, Scale};
use db2graph_core::{Db2Graph, GraphOptions, StrategyConfig};
use linkbench::{generate, materialize, overlay_config, LinkBenchConfig, QueryKind, QueryStream};

fn main() {
    let scale = Scale::from_env();
    let cfg = LinkBenchConfig::small().with_vertices(scale.small_vertices);
    let data = generate(&cfg);
    let (db, _) = materialize(&data).expect("materialize");
    let overlay = overlay_config();
    let g_on = Db2Graph::open(db.clone(), &overlay).expect("open optimized");
    let g_off = Db2Graph::open_with_options(
        db,
        &overlay,
        GraphOptions { strategies: StrategyConfig::none(), ..Default::default() },
    )
    .expect("open unoptimized");

    println!("\n=== Figure 4: Db2 Graph with vs without optimized traversal strategies ===");
    println!("(dataset: {} vertices, {} edges; {} iters/point)\n", data.nodes.len(), data.links.len(), scale.iters);

    let mut rows = Vec::new();
    for kind in QueryKind::ALL {
        let avg = |g: &Db2Graph, seed: u64| {
            let mut s = QueryStream::new(&data, kind, seed);
            for q in s.batch(scale.iters / 10 + 1) {
                g.run(&q).expect("query");
            }
            let qs = s.batch(scale.iters);
            let start = Instant::now();
            for q in &qs {
                g.run(q).expect("query");
            }
            start.elapsed() / scale.iters as u32
        };
        let on = avg(&g_on, 11);
        let off = avg(&g_off, 11);
        rows.push(vec![
            kind.name().to_string(),
            fmt_duration(on),
            fmt_duration(off),
            format!("{:.1}x", off.as_secs_f64() / on.as_secs_f64()),
        ]);
    }
    print_table(&["Query", "Strategies ON", "Strategies OFF", "Speedup"], &rows);
    println!("\nPaper reference: 2.8x-3.3x speedups; getNode mainly from predicate pushdown,");
    println!("the others from the GraphStep::VertexStep mutation, countLinks additionally");
    println!("from aggregate pushdown, getLink additionally from predicate pushdown.\n");
}
