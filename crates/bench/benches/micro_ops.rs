//! Criterion microbenchmarks of the building blocks behind the end-to-end
//! numbers: SQL point queries (what one traversal hop costs in the RDBMS),
//! Gremlin parsing and planning, overlay id decoding, and single-hop
//! traversals on each backend. These are the ablation-level measurements
//! that explain *why* the figure-level results come out the way they do.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;

use db2graph_core::ids::IdDef;
use db2graph_core::Db2Graph;
use gremlin::ElementId;
use linkbench::{generate, materialize, overlay_config, LinkBenchConfig};
use reldb::Value;

fn bench_reldb(c: &mut Criterion) {
    let data = generate(&LinkBenchConfig::small().with_vertices(5_000));
    let (db, _) = materialize(&data).unwrap();
    let table = format!("nodes_{}", data.nodes[0].label);
    let prepared = db.prepare(&format!("SELECT * FROM {table} WHERE id = ?")).unwrap();

    c.bench_function("reldb/point_query_prepared", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 1) % 5_000;
            db.execute_prepared(&prepared, &[Value::Bigint(i)]).unwrap()
        })
    });
    c.bench_function("reldb/point_query_parse_each_time", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 1) % 5_000;
            db.execute(&format!("SELECT * FROM {table} WHERE id = {i}")).unwrap()
        })
    });
    let link_table = format!("links_{}", data.links[0].label);
    c.bench_function("reldb/in_list_probe_20", |b| {
        b.iter(|| {
            db.execute(&format!(
                "SELECT id2 FROM {link_table} WHERE id1 IN (0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19)"
            ))
            .unwrap()
        })
    });
    let hot = data.links[0].id1;
    c.bench_function("reldb/count_aggregate", |b| {
        b.iter(|| {
            db.execute(&format!("SELECT COUNT(*) FROM {link_table} WHERE id1 = {hot}")).unwrap()
        })
    });
}

fn bench_gremlin_frontend(c: &mut Criterion) {
    let script = "g.V(1).outE('et3').has('visibility', 1).count()";
    c.bench_function("gremlin/parse", |b| {
        b.iter(|| gremlin::parser::parse(script).unwrap())
    });
    let data = generate(&LinkBenchConfig::small().with_vertices(1_000));
    let (db, _) = materialize(&data).unwrap();
    let graph = Db2Graph::open(db, &overlay_config()).unwrap();
    c.bench_function("gremlin/parse_compile_optimize", |b| {
        b.iter(|| graph.plan(script).unwrap())
    });
}

fn bench_ids(c: &mut Criterion) {
    let def = IdDef::parse("'patient'::patientID").unwrap();
    let id = ElementId::Str("patient::12345".into());
    c.bench_function("ids/decode_prefixed", |b| b.iter(|| def.decode(&id)));
    c.bench_function("ids/encode_prefixed", |b| {
        b.iter(|| def.encode(&[Value::Bigint(12345)]).unwrap())
    });
}

fn bench_hop(c: &mut Criterion) {
    let data = generate(&LinkBenchConfig::small().with_vertices(5_000));
    let (db, _) = materialize(&data).unwrap();
    let graph = Db2Graph::open(db, &overlay_config()).unwrap();
    let link = &data.links[0];
    let hop = format!("g.V({}).out('{}')", link.id1, link.label);
    c.bench_function("db2graph/one_hop", |b| {
        b.iter(|| graph.run(&hop).unwrap())
    });
    let count = format!("g.V({}).outE('{}').count()", link.id1, link.label);
    c.bench_function("db2graph/count_links", |b| {
        b.iter(|| graph.run(&count).unwrap())
    });

    // Same hop on the baseline stores.
    let (vertices, edges) = linkbench::to_elements(&data);
    let mut nl = gstore::NativeLoader::new();
    for v in &vertices {
        nl.add_vertex(v.clone());
    }
    for e in &edges {
        nl.add_edge(e.clone());
    }
    let native = Arc::new(nl.build(vertices.len() + edges.len()));
    native.open();
    let mut jl = gstore::JanusLoader::new();
    for v in vertices {
        jl.add_vertex(v);
    }
    for e in edges {
        jl.add_edge(e);
    }
    let janus = jl.build();

    c.bench_function("native/one_hop_cached", |b| {
        let runner = gremlin::ScriptRunner::new(native.as_ref());
        b.iter_batched(
            || hop.clone(),
            |q| runner.run(&q).unwrap(),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("janus/one_hop", |b| {
        let runner = gremlin::ScriptRunner::new(&janus);
        b.iter_batched(
            || hop.clone(),
            |q| runner.run(&q).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_reldb, bench_gremlin_frontend, bench_ids, bench_hop);
criterion_main!(benches);
