//! Regenerates **Table 2**: LinkBench dataset statistics (vertices, edges,
//! average degree, max degree, CSV size).

use bench::harness::{fmt_bytes, print_table, Scale};
use linkbench::{generate, LinkBenchConfig};

fn main() {
    let scale = Scale::from_env();
    println!("\n=== Table 2: LinkBench datasets (scaled; paper used 10M/100M vertices) ===\n");
    let mut rows = Vec::new();
    for (name, n, seed) in [
        ("LB-small", scale.small_vertices, 42),
        ("LB-large", scale.large_vertices, 43),
    ] {
        let cfg = LinkBenchConfig { seed, ..LinkBenchConfig::small().with_vertices(n) };
        let data = generate(&cfg);
        let s = data.stats();
        rows.push(vec![
            name.to_string(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            format!("{:.1}", s.avg_degree),
            s.max_degree.to_string(),
            fmt_bytes(s.csv_bytes as usize),
        ]);
    }
    print_table(
        &["Dataset", "Num Vertices", "Num Edges", "Avg Degree", "Max Degree", "CSV Size"],
        &rows,
    );
    println!("\nPaper reference: 10M/43M avg 4.3 max 961,970 CSV 4.3G; 100M/419M avg 4.2 max 962,000 CSV 42G.");
    println!("Expected shape: avg degree ~4.2-4.3, max degree orders of magnitude above the average.\n");
}
