//! Regenerates **Table 3**: graph loading time breakdown and storage usage
//! for Db2 Graph (no load, instant open) vs the native store (slow load,
//! 6-7x disk) vs the Janus-like store (slowest load).

use bench::harness::{build_env, fmt_bytes, fmt_duration, print_table, Dataset, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("\n=== Table 3: Graph loading time and storage (scaled datasets) ===\n");
    for dataset in [Dataset::Small, Dataset::Large] {
        let env = build_env(dataset, scale);
        println!(
            "{} — {} vertices, {} edges (relational source: {})",
            dataset.name(),
            env.data.nodes.len(),
            env.data.links.len(),
            fmt_bytes(env.reports[0].storage_bytes),
        );
        let rel_bytes = env.reports[0].storage_bytes.max(1);
        let rows: Vec<Vec<String>> = env
            .reports
            .iter()
            .map(|r| {
                vec![
                    r.system.clone(),
                    fmt_duration(r.export),
                    fmt_duration(r.load),
                    fmt_duration(r.open),
                    fmt_bytes(r.storage_bytes),
                    format!("{:.1}x", r.storage_bytes as f64 / rel_bytes as f64),
                ]
            })
            .collect();
        print_table(
            &["System", "Export From DB", "Load Data", "Open Graph", "Storage", "vs relational"],
            &rows,
        );
        env.print_metrics_snapshot();
        println!();
    }
    println!("Paper reference: Db2 Graph needs no export/load (open ~1-2 s); GDB-X loads");
    println!("42 min-8 h at 6-7x disk; JanusGraph loads 65 min-13.5 h at similar disk usage.\n");
}
