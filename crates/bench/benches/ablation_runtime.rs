//! Ablation of the **data-dependent runtime optimizations** (Section 6.3).
//!
//! Figure 4 ablates the compile-time strategies; the paper describes but
//! does not separately measure the runtime optimizations. They are overlay-
//! *configuration* choices, so this harness measures them by running the
//! same queries under overlay variants that disable one lever each:
//!
//! * `full`          — prefixed ids + fixed labels + src/dst table links
//! * `no-prefix`     — plain ids (no table pinning on V(id))
//! * `no-links`      — src_v_table/dst_v_table omitted (no edge-table
//!   endpoint elimination)
//! * `column-labels` — labels from a column (no fixed-label elimination)
//!
//! Reported per variant: average latency and SQL queries issued per
//! operation — the second column is the direct observable of "eliminating
//! the unnecessary tables to query from".

use std::sync::Arc;
use std::time::Instant;

use bench::harness::{fmt_duration, print_table};
use db2graph_core::{Db2Graph, ETableConfig, OverlayConfig, VTableConfig};
use reldb::Database;

const K: usize = 8; // number of vertex/edge tables
const ROWS: i64 = 2_000; // rows per vertex table

fn build_db() -> Arc<Database> {
    let db = Arc::new(Database::new());
    let mut ddl = String::new();
    for k in 0..K {
        ddl.push_str(&format!(
            "CREATE TABLE P{k} (id BIGINT PRIMARY KEY, name VARCHAR, kind VARCHAR);\n"
        ));
    }
    for k in 0..K {
        ddl.push_str(&format!(
            "CREATE TABLE E{k} (src BIGINT, dst BIGINT, kind VARCHAR, w BIGINT);
             CREATE INDEX ix_e{k}_src ON E{k} (src);
             CREATE INDEX ix_e{k}_dst ON E{k} (dst);\n"
        ));
    }
    db.execute_script(&ddl).unwrap();
    db.set_enforce_foreign_keys(false);
    for k in 0..K as i64 {
        let pt = db.get_table(&format!("P{k}")).unwrap();
        for i in 0..ROWS {
            let id = k * ROWS + i; // globally unique
            db.insert_row(
                &pt,
                vec![
                    reldb::Value::Bigint(id),
                    reldb::Value::Varchar(format!("n{id}")),
                    reldb::Value::Varchar(format!("p{k}")),
                ],
            )
            .unwrap();
        }
        let et = db.get_table(&format!("E{k}")).unwrap();
        let next = (k + 1) % K as i64;
        for i in 0..ROWS {
            db.insert_row(
                &et,
                vec![
                    reldb::Value::Bigint(k * ROWS + i),
                    reldb::Value::Bigint(next * ROWS + (i * 7) % ROWS),
                    reldb::Value::Varchar(format!("e{k}")),
                    reldb::Value::Bigint(i),
                ],
            )
            .unwrap();
        }
    }
    db
}

#[derive(Clone, Copy)]
struct Variant {
    name: &'static str,
    prefixed: bool,
    links: bool,
    fixed_labels: bool,
}

fn overlay(v: Variant) -> OverlayConfig {
    let v_tables = (0..K)
        .map(|k| VTableConfig {
            table_name: format!("P{k}"),
            prefixed_id: v.prefixed,
            id: if v.prefixed { format!("'p{k}'::id") } else { "id".into() },
            fix_label: v.fixed_labels,
            label: if v.fixed_labels { format!("'p{k}'") } else { "kind".into() },
            properties: Some(vec!["name".into()]),
        })
        .collect();
    let e_tables = (0..K)
        .map(|k| {
            let next = (k + 1) % K;
            ETableConfig {
                table_name: format!("E{k}"),
                src_v_table: v.links.then(|| format!("P{k}")),
                src_v: if v.prefixed { format!("'p{k}'::src") } else { "src".into() },
                dst_v_table: v.links.then(|| format!("P{next}")),
                dst_v: if v.prefixed { format!("'p{next}'::dst") } else { "dst".into() },
                prefixed_edge_id: false,
                implicit_edge_id: true,
                id: None,
                fix_label: v.fixed_labels,
                label: if v.fixed_labels { format!("'e{k}'") } else { "kind".into() },
                properties: Some(vec!["w".into()]),
            }
        })
        .collect();
    OverlayConfig { v_tables, e_tables }
}

fn main() {
    let iters: usize = std::env::var("LB_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(300);
    let db = build_db();
    let variants = [
        Variant { name: "full", prefixed: true, links: true, fixed_labels: true },
        Variant { name: "no-prefix", prefixed: false, links: true, fixed_labels: true },
        Variant { name: "no-links", prefixed: true, links: false, fixed_labels: true },
        Variant { name: "column-labels", prefixed: true, links: true, fixed_labels: false },
        // With neither prefixed ids nor endpoint links, endpoint lookups
        // after a hop must search every vertex table.
        Variant { name: "no-prefix-no-links", prefixed: false, links: false, fixed_labels: true },
    ];

    println!("\n=== Ablation: data-dependent runtime optimizations (Section 6.3) ===");
    println!("({K} vertex tables x {ROWS} rows, {K} edge tables; {iters} iters/point)\n");

    type QueryGen = Box<dyn Fn(&Variant, i64) -> String>;
    struct Op {
        name: &'static str,
        query: QueryGen,
    }
    let ops = [
        Op {
            name: "lookup by id (prefixed-id pinning)",
            query: Box::new(|v: &Variant, i: i64| {
                if v.prefixed {
                    format!("g.V('p3::{}')", 3 * ROWS + (i % ROWS))
                } else {
                    format!("g.V({})", 3 * ROWS + (i % ROWS))
                }
            }),
        },
        Op {
            name: "out() hop (src/dst table links)",
            query: Box::new(|v: &Variant, i: i64| {
                if v.prefixed {
                    format!("g.V('p3::{}').out('e3').values('name')", 3 * ROWS + (i % ROWS))
                } else {
                    format!("g.V({}).out('e3').values('name')", 3 * ROWS + (i % ROWS))
                }
            }),
        },
        Op {
            name: "hasLabel().count() (fixed-label elimination)",
            query: Box::new(|_v: &Variant, _i: i64| "g.V().hasLabel('p5').count()".to_string()),
        },
        Op {
            name: "E lookup by implicit id (label-in-id elimination)",
            query: Box::new(|v: &Variant, i: i64| {
                let s = 3 * ROWS + (i % ROWS);
                let d = 4 * ROWS + ((i % ROWS) * 7) % ROWS;
                if v.prefixed {
                    format!("g.E('p3::{s}::e3::p4::{d}')")
                } else {
                    format!("g.E('{s}::e3::{d}')")
                }
            }),
        },
    ];

    for op in &ops {
        println!("-- {}", op.name);
        let mut rows = Vec::new();
        for v in &variants {
            let g = Db2Graph::open(db.clone(), &overlay(*v)).unwrap();
            // Warmup.
            for i in 0..(iters / 10 + 1) as i64 {
                let _ = g.run(&(op.query)(v, i));
            }
            let before = g.stats();
            let start = Instant::now();
            for i in 0..iters as i64 {
                g.run(&(op.query)(v, i)).unwrap();
            }
            let elapsed = start.elapsed() / iters as u32;
            let d = g.stats().since(&before);
            rows.push(vec![
                v.name.to_string(),
                fmt_duration(elapsed),
                format!("{:.1}", d.sql_queries as f64 / iters as f64),
                format!("{:.1}", d.tables_pruned as f64 / iters as f64),
            ]);
        }
        print_table(&["variant", "avg latency", "SQL queries/op", "tables pruned/op"], &rows);
        println!();
    }
    println!("Reading: each disabled lever shows up as more SQL queries per operation —");
    println!("the paper's 'eliminate, as much as possible, the unnecessary tables'.\n");
}
