//! Regenerates **Figure 6**: throughput of the three systems with
//! concurrent clients (the paper used 50 clients; scale with LB_THREADS).
//! Expected shape: Db2 Graph wins everywhere — per-table reader-writer
//! locking scales with clients, while the native store's coarse cache lock
//! and the Janus-like store's per-query blob decoding do not.

use bench::harness::{build_env, print_table, Dataset, Scale, SystemKind};
use bench::report::BenchReport;
use db2graph_core::json::Json;
use linkbench::QueryKind;

fn main() {
    let scale = Scale::from_env();
    let cores = Scale::cores();
    let mut report = BenchReport::new("fig6_throughput");
    report.meta("clients", Json::u64(scale.threads as u64));
    report.meta("cores", Json::u64(cores as u64));
    println!("\n=== Figure 6: Throughput of LinkBench queries ({} clients, {} cores) ===\n", scale.threads, cores);
    if cores < 4 {
        println!("CAVEAT: only {cores} core(s) available. The paper's Figure 6 measures how");
        println!("systems scale with 50 concurrent clients on 32 cores; with so few cores,");
        println!("clients time-slice instead of running in parallel, so throughput mostly");
        println!("mirrors single-client latency and the concurrency contrast (per-table");
        println!("reader-writer locks vs a coarse cache lock) cannot fully materialize.\n");
    }
    for dataset in [Dataset::Small, Dataset::Large] {
        let env = build_env(dataset, scale);
        println!(
            "{} — {} vertices, {} edges, {} queries/client",
            dataset.name(),
            env.data.nodes.len(),
            env.data.links.len(),
            scale.iters / 4 + 1
        );
        let per_client = scale.iters / 4 + 1;
        let mut rows = Vec::new();
        for kind in QueryKind::ALL {
            let mut row = vec![kind.name().to_string()];
            let mut qps = Vec::new();
            for sys in SystemKind::ALL {
                let t = env.measure_throughput(sys, kind, scale.threads, per_client);
                report.push(Json::obj(vec![
                    ("dataset", Json::str(dataset.name())),
                    ("query", Json::str(kind.name())),
                    ("system", Json::str(sys.name())),
                    ("queries_per_sec", Json::num(t)),
                ]));
                qps.push(t);
                row.push(format!("{t:.0} q/s"));
            }
            row.push(format!(
                "db2g/native {:.2}x, db2g/janus {:.2}x",
                qps[0] / qps[1].max(1e-9),
                qps[0] / qps[2].max(1e-9)
            ));
            rows.push(row);
        }
        print_table(
            &["Query", "Db2 Graph", "GDB-X (native sim)", "JanusGraph (sim)", "ratios"],
            &rows,
        );
        env.print_metrics_snapshot();
        env.print_parallel_speedup(scale.iters / 8 + 1);
        let (cold, warm) = env.print_cache_speedup(scale.iters / 8 + 1);
        report.push(Json::obj(vec![
            ("dataset", Json::str(dataset.name())),
            ("query", Json::str("frontier_out_count")),
            ("system", Json::str("db2graph")),
            ("cold_cache_ms", Json::num(cold.as_secs_f64() * 1e3)),
            ("warm_cache_ms", Json::num(warm.as_secs_f64() * 1e3)),
            ("cache_speedup", Json::num(cold.as_secs_f64() / warm.as_secs_f64().max(1e-12))),
        ]));
        println!();
    }
    println!("Paper reference: Db2 Graph is the clear winner in all cases, beating GDB-X up");
    println!("to 1.6x and JanusGraph up to 4.2x, because the RDBMS engine is extremely good");
    println!("at handling concurrent queries.\n");
    report.write();
}
