//! Regenerates **Figure 5**: per-query latency of the three systems on the
//! small and large datasets. Expected shape: the native store wins on the
//! small (cache-resident) dataset but loses past its cache on the large
//! one, where Db2 Graph takes the lead; the Janus-like store is always the
//! slowest.

use bench::harness::{build_env, fmt_duration, print_table, Dataset, Scale, SystemKind};
use bench::report::BenchReport;
use db2graph_core::json::Json;
use linkbench::QueryKind;

fn main() {
    let scale = Scale::from_env();
    let mut report = BenchReport::new("fig5_latency");
    report.meta("iters", Json::u64(scale.iters as u64));
    println!("\n=== Figure 5: Latency of LinkBench queries (Table 1 shapes) ===");
    println!("getNode:     g.V(id).hasLabel(lbl)");
    println!("countLinks:  g.V(id1).outE(lbl).count()");
    println!("getLink:     g.V(id1).outE(lbl).filter(inV().id() == id2)");
    println!("getLinkList: g.V(id1).outE(lbl)\n");
    for dataset in [Dataset::Small, Dataset::Large] {
        let env = build_env(dataset, scale);
        println!(
            "{} — {} vertices, {} edges, {} iters/point",
            dataset.name(),
            env.data.nodes.len(),
            env.data.links.len(),
            scale.iters
        );
        let mut rows = Vec::new();
        for kind in QueryKind::ALL {
            let mut row = vec![kind.name().to_string()];
            let mut lat = Vec::new();
            for sys in SystemKind::ALL {
                let d = env.measure_latency(sys, kind, scale.iters);
                report.push(Json::obj(vec![
                    ("dataset", Json::str(dataset.name())),
                    ("query", Json::str(kind.name())),
                    ("system", Json::str(sys.name())),
                    ("mean_latency_ms", Json::num(d.as_secs_f64() * 1e3)),
                ]));
                lat.push(d);
                row.push(fmt_duration(d));
            }
            // Ratios vs Db2 Graph.
            row.push(format!(
                "native/db2g {:.2}x, janus/db2g {:.2}x",
                lat[1].as_secs_f64() / lat[0].as_secs_f64(),
                lat[2].as_secs_f64() / lat[0].as_secs_f64()
            ));
            rows.push(row);
        }
        print_table(
            &["Query", "Db2 Graph", "GDB-X (native sim)", "JanusGraph (sim)", "ratios"],
            &rows,
        );
        env.print_metrics_snapshot();
        env.print_parallel_speedup(scale.iters / 8 + 1);
        let (cold, warm) = env.print_cache_speedup(scale.iters / 8 + 1);
        report.push(Json::obj(vec![
            ("dataset", Json::str(dataset.name())),
            ("query", Json::str("frontier_out_count")),
            ("system", Json::str("db2graph")),
            ("cold_cache_ms", Json::num(cold.as_secs_f64() * 1e3)),
            ("warm_cache_ms", Json::num(warm.as_secs_f64() * 1e3)),
            ("cache_speedup", Json::num(cold.as_secs_f64() / warm.as_secs_f64().max(1e-12))),
        ]));
        println!();
    }
    println!("Paper reference: on 10M GDB-X leads (Db2 Graph within 1.5x, better on getNode);");
    println!("on 100M Db2 Graph beats GDB-X up to 1.7x; JanusGraph up to 2.7x slower than Db2 Graph.\n");
    report.write();
}
