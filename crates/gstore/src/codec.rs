//! Binary serialization for graph records.
//!
//! Both baseline stores keep their data *serialized* and pay deserialization
//! on access — the cost profile the paper attributes to them: GDB-X's
//! records must be decoded on a cache miss, and the JanusGraph-like store
//! keeps "the entire adjacency list of a vertex in a somewhat encrypted form
//! in one column" that must be decoded wholesale. The format is deliberately
//! self-describing (key names and type tags inline), which is also why the
//! stores' disk usage blows up 6–7× over the relational tables (Table 3).

use gremlin::structure::{Edge, ElementId, GValue, Vertex};

/// Encoding error (corrupt or truncated buffer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}
impl std::error::Error for CodecError {}

pub type CodecResult<T> = Result<T, CodecError>;

/// A read cursor over a byte buffer.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError(format!(
                "truncated buffer: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn read_u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn read_u32(&mut self) -> CodecResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn read_u64(&mut self) -> CodecResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub fn read_i64(&mut self) -> CodecResult<i64> {
        Ok(self.read_u64()? as i64)
    }

    pub fn read_f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    pub fn read_str(&mut self) -> CodecResult<String> {
        let len = self.read_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| CodecError(e.to_string()))
    }
}

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    put_u64(buf, v as u64);
}

pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

// ------------------------------------------------------------ element ids

pub fn put_id(buf: &mut Vec<u8>, id: &ElementId) {
    match id {
        ElementId::Long(v) => {
            put_u8(buf, 0);
            put_i64(buf, *v);
        }
        ElementId::Str(s) => {
            put_u8(buf, 1);
            put_str(buf, s);
        }
    }
}

pub fn read_id(c: &mut Cursor<'_>) -> CodecResult<ElementId> {
    match c.read_u8()? {
        0 => Ok(ElementId::Long(c.read_i64()?)),
        1 => Ok(ElementId::Str(c.read_str()?)),
        t => Err(CodecError(format!("bad id tag {t}"))),
    }
}

// ----------------------------------------------------------------- values

pub fn put_gvalue(buf: &mut Vec<u8>, v: &GValue) -> CodecResult<()> {
    match v {
        GValue::Null => put_u8(buf, 0),
        GValue::Long(x) => {
            put_u8(buf, 1);
            put_i64(buf, *x);
        }
        GValue::Double(x) => {
            put_u8(buf, 2);
            put_f64(buf, *x);
        }
        GValue::Str(s) => {
            put_u8(buf, 3);
            put_str(buf, s);
        }
        GValue::Bool(b) => {
            put_u8(buf, 4);
            put_u8(buf, *b as u8);
        }
        other => {
            return Err(CodecError(format!(
                "only scalar property values are storable, got {other}"
            )))
        }
    }
    Ok(())
}

pub fn read_gvalue(c: &mut Cursor<'_>) -> CodecResult<GValue> {
    Ok(match c.read_u8()? {
        0 => GValue::Null,
        1 => GValue::Long(c.read_i64()?),
        2 => GValue::Double(c.read_f64()?),
        3 => GValue::Str(c.read_str()?),
        4 => GValue::Bool(c.read_u8()? != 0),
        t => return Err(CodecError(format!("bad value tag {t}"))),
    })
}

pub fn put_properties(
    buf: &mut Vec<u8>,
    props: &std::collections::BTreeMap<String, GValue>,
) -> CodecResult<()> {
    put_u32(buf, props.len() as u32);
    for (k, v) in props {
        put_str(buf, k);
        put_gvalue(buf, v)?;
    }
    Ok(())
}

pub fn read_properties(
    c: &mut Cursor<'_>,
) -> CodecResult<std::collections::BTreeMap<String, GValue>> {
    let n = c.read_u32()? as usize;
    let mut out = std::collections::BTreeMap::new();
    for _ in 0..n {
        let k = c.read_str()?;
        let v = read_gvalue(c)?;
        out.insert(k, v);
    }
    Ok(out)
}

// ----------------------------------------------------------------- edges

/// Serialize a full edge record.
pub fn encode_edge(e: &Edge) -> CodecResult<Vec<u8>> {
    let mut buf = Vec::with_capacity(64);
    put_id(&mut buf, &e.id);
    put_str(&mut buf, &e.label);
    put_id(&mut buf, &e.src);
    put_id(&mut buf, &e.dst);
    put_properties(&mut buf, &e.properties)?;
    Ok(buf)
}

pub fn decode_edge(buf: &[u8]) -> CodecResult<Edge> {
    let mut c = Cursor::new(buf);
    let e = read_edge(&mut c)?;
    Ok(e)
}

pub fn read_edge(c: &mut Cursor<'_>) -> CodecResult<Edge> {
    let id = read_id(c)?;
    let label = c.read_str()?;
    let src = read_id(c)?;
    let dst = read_id(c)?;
    let properties = read_properties(c)?;
    let mut e = Edge::new(id, label, src, dst);
    e.properties = properties;
    Ok(e)
}

pub fn put_edge(buf: &mut Vec<u8>, e: &Edge) -> CodecResult<()> {
    put_id(buf, &e.id);
    put_str(buf, &e.label);
    put_id(buf, &e.src);
    put_id(buf, &e.dst);
    put_properties(buf, &e.properties)
}

// --------------------------------------------------------------- vertices

/// Serialize a bare vertex (id, label, properties) without adjacency.
pub fn encode_vertex(v: &Vertex) -> CodecResult<Vec<u8>> {
    let mut buf = Vec::with_capacity(64);
    put_vertex(&mut buf, v)?;
    Ok(buf)
}

pub fn put_vertex(buf: &mut Vec<u8>, v: &Vertex) -> CodecResult<()> {
    put_id(buf, &v.id);
    put_str(buf, &v.label);
    put_properties(buf, &v.properties)
}

pub fn read_vertex(c: &mut Cursor<'_>) -> CodecResult<Vertex> {
    let id = read_id(c)?;
    let label = c.read_str()?;
    let properties = read_properties(c)?;
    let mut v = Vertex::new(id, label);
    v.properties = properties;
    Ok(v)
}

pub fn decode_vertex(buf: &[u8]) -> CodecResult<Vertex> {
    let mut c = Cursor::new(buf);
    read_vertex(&mut c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for v in [
            GValue::Null,
            GValue::Long(-42),
            GValue::Double(3.25),
            GValue::Str("héllo".into()),
            GValue::Bool(true),
        ] {
            let mut buf = Vec::new();
            put_gvalue(&mut buf, &v).unwrap();
            let mut c = Cursor::new(&buf);
            assert_eq!(read_gvalue(&mut c).unwrap(), v);
            assert_eq!(c.remaining(), 0);
        }
        // Non-scalar values are rejected.
        let mut buf = Vec::new();
        assert!(put_gvalue(&mut buf, &GValue::List(vec![])).is_err());
    }

    #[test]
    fn id_roundtrips() {
        for id in [ElementId::Long(7), ElementId::Str("patient::1".into())] {
            let mut buf = Vec::new();
            put_id(&mut buf, &id);
            let mut c = Cursor::new(&buf);
            assert_eq!(read_id(&mut c).unwrap(), id);
        }
    }

    #[test]
    fn vertex_and_edge_roundtrip() {
        let v = Vertex::new("p::1", "patient")
            .with_property("name", "Alice")
            .with_property("age", 30i64);
        let buf = encode_vertex(&v).unwrap();
        let v2 = decode_vertex(&buf).unwrap();
        assert_eq!(v2.id, v.id);
        assert_eq!(v2.label, v.label);
        assert_eq!(v2.properties, v.properties);

        let e = Edge::new(5i64, "knows", "p::1", "p::2").with_property("since", 2019i64);
        let buf = encode_edge(&e).unwrap();
        let e2 = decode_edge(&buf).unwrap();
        assert_eq!(e2.id, e.id);
        assert_eq!(e2.src, e.src);
        assert_eq!(e2.dst, e.dst);
        assert_eq!(e2.properties, e.properties);
    }

    #[test]
    fn truncation_is_detected() {
        let v = Vertex::new(1, "x").with_property("a", 1i64);
        let buf = encode_vertex(&v).unwrap();
        for cut in [1, buf.len() / 2, buf.len() - 1] {
            assert!(decode_vertex(&buf[..cut]).is_err());
        }
        // Bad tags detected.
        let mut c = Cursor::new(&[9u8]);
        assert!(read_gvalue(&mut c).is_err());
    }
}
