//! Export + bulk-load machinery with per-phase timing (drives Table 3).
//!
//! The paper's loading pipeline for the standalone baselines is: export the
//! data out of the relational database (as CSV), load it into the graph
//! database, then open the graph. Each phase is timed separately here.

use std::time::{Duration, Instant};

use gremlin::backend::{BackendOutput, ElementFilter, ElementKind, GraphBackend};
use gremlin::structure::{Edge, Element, GValue, Vertex};
use gremlin::GResult;

use crate::janus::{JanusLikeDb, JanusLoader};
use crate::native::{NativeGraphDb, NativeLoader};

/// A graph exported out of the source database, plus the size of its CSV
/// rendering (Table 2's "CSV File" column).
pub struct ExportedGraph {
    pub vertices: Vec<Vertex>,
    pub edges: Vec<Edge>,
    pub csv_bytes: usize,
}

impl ExportedGraph {
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

fn csv_value(v: &GValue) -> String {
    match v {
        GValue::Str(s) if s.contains(',') || s.contains('"') => {
            format!("\"{}\"", s.replace('"', "\"\""))
        }
        other => other.to_string(),
    }
}

/// Render a vertex as a CSV line (id,label,props...).
fn vertex_csv(v: &Vertex) -> String {
    let mut cells = vec![v.id.to_string(), v.label.clone()];
    for (k, val) in &v.properties {
        cells.push(format!("{k}={}", csv_value(val)));
    }
    cells.join(",")
}

fn edge_csv(e: &Edge) -> String {
    let mut cells = vec![
        e.id.to_string(),
        e.label.clone(),
        e.src.to_string(),
        e.dst.to_string(),
    ];
    for (k, val) in &e.properties {
        cells.push(format!("{k}={}", csv_value(val)));
    }
    cells.join(",")
}

/// Phase 1 of Table 3: export every vertex and edge out of the source
/// database through its graph view, rendering CSV along the way.
pub fn export_graph(backend: &dyn GraphBackend) -> GResult<(ExportedGraph, Duration)> {
    let start = Instant::now();
    let filter = ElementFilter::default();
    let vertices: Vec<Vertex> =
        match backend.graph_elements(ElementKind::Vertices, &filter)? {
            BackendOutput::Elements(es) => es
                .into_iter()
                .filter_map(|e| match e {
                    Element::Vertex(v) => Some(v),
                    Element::Edge(_) => None,
                })
                .collect(),
            _ => Vec::new(),
        };
    let edges: Vec<Edge> = match backend.graph_elements(ElementKind::Edges, &filter)? {
        BackendOutput::Elements(es) => es
            .into_iter()
            .filter_map(|e| match e {
                Element::Edge(e) => Some(e),
                Element::Vertex(_) => None,
            })
            .collect(),
        _ => Vec::new(),
    };
    // CSV rendering (what the paper's export step produces). We count
    // bytes instead of writing to disk.
    let mut csv_bytes = 0usize;
    for v in &vertices {
        csv_bytes += vertex_csv(v).len() + 1;
    }
    for e in &edges {
        csv_bytes += edge_csv(e).len() + 1;
    }
    let elapsed = start.elapsed();
    Ok((ExportedGraph { vertices, edges, csv_bytes }, elapsed))
}

/// Phase 2 of Table 3 (native): bulk-load into the native store.
pub fn load_native(graph: &ExportedGraph, cache_capacity: usize) -> (NativeGraphDb, Duration) {
    let start = Instant::now();
    let mut loader = NativeLoader::new();
    for v in &graph.vertices {
        loader.add_vertex(v.clone());
    }
    for e in &graph.edges {
        loader.add_edge(e.clone());
    }
    let db = loader.build(cache_capacity);
    (db, start.elapsed())
}

/// Phase 3 of Table 3 (native): open the graph — aggressive prefetch.
pub fn open_native(db: &NativeGraphDb) -> Duration {
    let start = Instant::now();
    db.open();
    start.elapsed()
}

/// Phase 2 of Table 3 (janus): bulk-load into the KV-backed store.
pub fn load_janus(graph: &ExportedGraph) -> (JanusLikeDb, Duration) {
    let start = Instant::now();
    let mut loader = JanusLoader::new();
    for v in &graph.vertices {
        loader.add_vertex(v.clone());
    }
    for e in &graph.edges {
        loader.add_edge(e.clone());
    }
    let db = loader.build();
    (db, start.elapsed())
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub system: String,
    pub export: Duration,
    pub load: Duration,
    pub open: Duration,
    pub storage_bytes: usize,
}

impl LoadReport {
    pub fn total(&self) -> Duration {
        self.export + self.load + self.open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin::memgraph::MemGraph;
    use gremlin::ScriptRunner;

    fn source() -> MemGraph {
        let g = MemGraph::new();
        for i in 0..10i64 {
            g.add_vertex(Vertex::new(i, "node").with_property("x", i));
        }
        for i in 0..9i64 {
            g.add_edge(Edge::new(100 + i, "to", i, i + 1).with_property("w", i));
        }
        g
    }

    #[test]
    fn export_counts_and_csv() {
        let src = source();
        let (graph, t) = export_graph(&src).unwrap();
        assert_eq!(graph.vertex_count(), 10);
        assert_eq!(graph.edge_count(), 9);
        assert!(graph.csv_bytes > 100);
        assert!(t.as_nanos() > 0);
    }

    #[test]
    fn loaded_stores_answer_like_the_source() {
        let src = source();
        let (graph, _) = export_graph(&src).unwrap();
        let (native, _) = load_native(&graph, 1000);
        let (janus, _) = load_janus(&graph);
        open_native(&native);
        let qs = [
            "g.V().count()",
            "g.E().count()",
            "g.V(3).out('to').id()",
            "g.V(3).in('to').id()",
            "g.V(0).outE('to').values('w')",
        ];
        let src_runner = ScriptRunner::new(&src);
        let native_runner = ScriptRunner::new(&native);
        let janus_runner = ScriptRunner::new(&janus);
        for q in qs {
            let a = src_runner.run(q).unwrap();
            let b = native_runner.run(q).unwrap();
            let c = janus_runner.run(q).unwrap();
            assert_eq!(a, b, "native differs on {q}");
            assert_eq!(a, c, "janus differs on {q}");
        }
    }

    #[test]
    fn storage_blowup_over_csv_is_visible() {
        let src = source();
        let (graph, _) = export_graph(&src).unwrap();
        let (native, _) = load_native(&graph, 10);
        let (janus, _) = load_janus(&graph);
        // Both stores use more bytes than the CSV rendering of the data.
        assert!(native.storage_bytes() > graph.csv_bytes);
        assert!(janus.storage_bytes() > graph.csv_bytes);
    }

    #[test]
    fn csv_escaping() {
        let v = Vertex::new(1, "x").with_property("name", "a,b\"c");
        let line = vertex_csv(&v);
        assert!(line.contains("\"a,b\"\"c\""), "{line}");
    }
}
