//! The JanusGraph-like baseline: a graph layered on the KV store.
//!
//! Mirrors JanusGraph-on-BerkeleyDB's storage model: each vertex is a "row"
//! in the ordered KV store, holding a serialized property blob plus one
//! *column per incident edge* (the full edge record serialized into the
//! column value, in both directions — each edge stored twice). Reading any
//! part of a vertex means ordered-store range scans and per-edge
//! deserialization on every access; there is no decoded-record cache, and a
//! configurable per-KV-operation overhead models the layered storage stack
//! (transaction scope, serializer framework, store adapter) that makes the
//! real system the uniformly slowest in Figures 5 and 6. The duplicated
//! edge records are a large part of its disk blowup in Table 3. As the
//! paper notes, none of this layout is usable from SQL — "the convoluted
//! schema makes it impossible to decipher what is stored".

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gremlin::backend::{
    finalize_elements, BackendOutput, Direction, EdgeEnd, ElementFilter, ElementKind,
    GraphBackend,
};
use gremlin::structure::{Edge, Element, ElementId, Vertex};
use gremlin::{GremlinError, GResult};

use crate::codec::{self, Cursor};
use crate::kv::KvStore;

fn vkey(id: &ElementId) -> Vec<u8> {
    let mut k = b"v:".to_vec();
    codec::put_id(&mut k, id);
    k
}

/// Adjacency column key: direction prefix + owner id + label + other id.
/// The id encoding is self-delimiting, so prefix scans by owner (and by
/// owner+label) are unambiguous.
fn adj_key(outgoing: bool, owner: &ElementId, label: &str, other: &ElementId) -> Vec<u8> {
    let mut k: Vec<u8> = if outgoing { b"oa:".to_vec() } else { b"ia:".to_vec() };
    codec::put_id(&mut k, owner);
    codec::put_str(&mut k, label);
    codec::put_id(&mut k, other);
    k
}

fn adj_prefix(outgoing: bool, owner: &ElementId, label: Option<&str>) -> Vec<u8> {
    let mut k: Vec<u8> = if outgoing { b"oa:".to_vec() } else { b"ia:".to_vec() };
    codec::put_id(&mut k, owner);
    if let Some(l) = label {
        codec::put_str(&mut k, l);
    }
    k
}

fn ekey(id: &ElementId) -> Vec<u8> {
    let mut k = b"e:".to_vec();
    codec::put_id(&mut k, id);
    k
}

fn vlabel_key(label: &str, id: &ElementId) -> Vec<u8> {
    let mut k = b"lv:".to_vec();
    k.extend_from_slice(label.as_bytes());
    k.push(0);
    codec::put_id(&mut k, id);
    k
}

/// The Janus-like graph store.
pub struct JanusLikeDb {
    kv: KvStore,
    /// Simulated per-KV-operation stack overhead (nanoseconds). Zero by
    /// default; the benchmark harness sets it to model the real system's
    /// layered storage path.
    op_overhead: AtomicU64,
}

/// Staging loader for [`JanusLikeDb`].
#[derive(Default)]
pub struct JanusLoader {
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
}

impl JanusLoader {
    pub fn new() -> JanusLoader {
        JanusLoader::default()
    }

    pub fn add_vertex(&mut self, v: Vertex) {
        self.vertices.push(v);
    }

    pub fn add_edge(&mut self, e: Edge) {
        self.edges.push(e);
    }

    /// Write every vertex property blob, every edge twice (out-column and
    /// in-column), the edge-id pointer index, and the label index — the
    /// slowest loader in Table 3.
    pub fn build(self) -> JanusLikeDb {
        let kv = KvStore::new();
        for e in &self.edges {
            let record = codec::encode_edge(e).expect("scalar properties");
            kv.put(adj_key(true, &e.src, &e.label, &e.dst), record.clone());
            kv.put(adj_key(false, &e.dst, &e.label, &e.src), record);
            // Edge-id index: (src, label, dst) locates the out-column.
            let mut ptr = Vec::new();
            codec::put_id(&mut ptr, &e.src);
            codec::put_str(&mut ptr, &e.label);
            codec::put_id(&mut ptr, &e.dst);
            kv.put(ekey(&e.id), ptr);
        }
        for v in self.vertices {
            kv.put(vlabel_key(&v.label, &v.id), Vec::new());
            kv.put(vkey(&v.id), codec::encode_vertex(&v).expect("scalar properties"));
        }
        JanusLikeDb { kv, op_overhead: AtomicU64::new(0) }
    }
}

impl JanusLikeDb {
    pub fn storage_bytes(&self) -> usize {
        self.kv.total_bytes()
    }

    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// Set the simulated per-KV-operation overhead (models the layered
    /// storage stack of the real system).
    pub fn set_op_overhead(&self, overhead: Duration) {
        self.op_overhead.store(overhead.as_nanos() as u64, Ordering::Relaxed);
    }

    fn pay_op(&self) {
        let ns = self.op_overhead.load(Ordering::Relaxed);
        if ns > 0 {
            // Stack overhead is CPU work in the real system: spin, don't
            // sleep, so it also costs concurrency in Figure 6.
            let start = Instant::now();
            let d = Duration::from_nanos(ns);
            while start.elapsed() < d {
                std::hint::spin_loop();
            }
        }
    }

    fn load_vertex(&self, id: &ElementId) -> GResult<Option<Vertex>> {
        self.pay_op();
        match self.kv.get(&vkey(id)) {
            None => Ok(None),
            Some(bytes) => codec::decode_vertex(&bytes)
                .map(Some)
                .map_err(|e| GremlinError::Backend(e.to_string())),
        }
    }

    /// Range-scan adjacency columns for a vertex (optionally by label),
    /// deserializing every matching edge record — paid on *every* access;
    /// there is no decoded cache.
    fn scan_adjacency(
        &self,
        id: &ElementId,
        outgoing: bool,
        label: Option<&str>,
    ) -> GResult<Vec<Edge>> {
        self.pay_op();
        let prefix = adj_prefix(outgoing, id, label);
        let mut out = Vec::new();
        let mut err: Option<GremlinError> = None;
        self.kv.for_each_prefix(&prefix, |_, v| {
            if err.is_some() {
                return;
            }
            match codec::decode_edge(v) {
                Ok(e) => out.push(e),
                Err(e) => err = Some(GremlinError::Backend(e.to_string())),
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    fn all_vertex_ids(&self) -> Vec<ElementId> {
        self.pay_op();
        let mut out = Vec::new();
        self.kv.for_each_prefix(b"v:", |k, _| {
            let mut c = Cursor::new(&k[2..]);
            if let Ok(id) = codec::read_id(&mut c) {
                out.push(id);
            }
        });
        out
    }

    fn vertex_ids_for_labels(&self, labels: &[String]) -> Vec<ElementId> {
        self.pay_op();
        let mut out = Vec::new();
        for l in labels {
            let mut prefix = b"lv:".to_vec();
            prefix.extend_from_slice(l.as_bytes());
            prefix.push(0);
            self.kv.for_each_prefix(&prefix, |k, _| {
                let mut c = Cursor::new(&k[prefix.len()..]);
                if let Ok(id) = codec::read_id(&mut c) {
                    out.push(id);
                }
            });
        }
        out
    }

    /// Scan adjacency for several labels (or all).
    fn adjacency_for(
        &self,
        id: &ElementId,
        outgoing: bool,
        labels: &Option<Vec<String>>,
    ) -> GResult<Vec<Edge>> {
        match labels {
            None => self.scan_adjacency(id, outgoing, None),
            Some(ls) => {
                let mut out = Vec::new();
                for l in ls {
                    out.extend(self.scan_adjacency(id, outgoing, Some(l))?);
                }
                Ok(out)
            }
        }
    }
}

impl GraphBackend for JanusLikeDb {
    fn graph_elements(&self, kind: ElementKind, filter: &ElementFilter) -> GResult<BackendOutput> {
        let elements = match kind {
            ElementKind::Vertices => {
                let ids: Vec<ElementId> = if let Some(ids) = &filter.ids {
                    ids.clone()
                } else if let Some(labels) = &filter.labels {
                    self.vertex_ids_for_labels(labels)
                } else {
                    self.all_vertex_ids()
                };
                let mut out = Vec::with_capacity(ids.len());
                for id in ids {
                    if let Some(v) = self.load_vertex(&id)? {
                        let el = Element::Vertex(v);
                        if filter.matches(&el) {
                            out.push(el);
                        }
                    }
                }
                out
            }
            ElementKind::Edges => {
                if let Some(src_ids) = &filter.src_ids {
                    let mut out = Vec::new();
                    for id in src_ids {
                        for e in self.adjacency_for(id, true, &filter.labels)? {
                            let el = Element::Edge(e);
                            if filter.matches(&el) {
                                out.push(el);
                            }
                        }
                    }
                    out
                } else if let Some(dst_ids) = &filter.dst_ids {
                    let mut out = Vec::new();
                    for id in dst_ids {
                        for e in self.adjacency_for(id, false, &filter.labels)? {
                            let el = Element::Edge(e);
                            if filter.matches(&el) {
                                out.push(el);
                            }
                        }
                    }
                    out
                } else if let Some(ids) = &filter.ids {
                    // Edge id -> (src, label, dst) pointer -> exact column.
                    let mut out = Vec::new();
                    for id in ids {
                        self.pay_op();
                        if let Some(ptr) = self.kv.get(&ekey(id)) {
                            let mut c = Cursor::new(&ptr);
                            let src = codec::read_id(&mut c)
                                .map_err(|e| GremlinError::Backend(e.to_string()))?;
                            let label = c
                                .read_str()
                                .map_err(|e| GremlinError::Backend(e.to_string()))?;
                            let dst = codec::read_id(&mut c)
                                .map_err(|e| GremlinError::Backend(e.to_string()))?;
                            self.pay_op();
                            if let Some(bytes) = self.kv.get(&adj_key(true, &src, &label, &dst)) {
                                let e = codec::decode_edge(&bytes)
                                    .map_err(|e| GremlinError::Backend(e.to_string()))?;
                                let el = Element::Edge(e);
                                if filter.matches(&el) {
                                    out.push(el);
                                }
                            }
                        }
                    }
                    out
                } else {
                    // Full scan: decode every out-column of every vertex.
                    let mut out = Vec::new();
                    for id in self.all_vertex_ids() {
                        for e in self.adjacency_for(&id, true, &filter.labels)? {
                            let el = Element::Edge(e);
                            if filter.matches(&el) {
                                out.push(el);
                            }
                        }
                    }
                    out
                }
            }
        };
        Ok(finalize_elements(elements, filter))
    }

    fn adjacent(
        &self,
        sources: &[Element],
        direction: Direction,
        edge_labels: &[String],
        to: ElementKind,
        filter: &ElementFilter,
    ) -> GResult<Vec<Vec<Element>>> {
        let labels: Option<Vec<String>> =
            if edge_labels.is_empty() { None } else { Some(edge_labels.to_vec()) };
        let mut groups = Vec::with_capacity(sources.len());
        for src in sources {
            let mut group = Vec::new();
            let walk = |edges: Vec<Edge>, outgoing: bool, group: &mut Vec<Element>| -> GResult<()> {
                for e in edges {
                    match to {
                        ElementKind::Edges => {
                            let el = Element::Edge(e);
                            if filter.matches(&el) {
                                group.push(el);
                            }
                        }
                        ElementKind::Vertices => {
                            let nid = if outgoing { &e.dst } else { &e.src };
                            if let Some(v) = self.load_vertex(nid)? {
                                let el = Element::Vertex(v);
                                if filter.matches(&el) {
                                    group.push(el);
                                }
                            }
                        }
                    }
                }
                Ok(())
            };
            match direction {
                Direction::Out => {
                    walk(self.adjacency_for(src.id(), true, &labels)?, true, &mut group)?
                }
                Direction::In => {
                    walk(self.adjacency_for(src.id(), false, &labels)?, false, &mut group)?
                }
                Direction::Both => {
                    walk(self.adjacency_for(src.id(), true, &labels)?, true, &mut group)?;
                    walk(self.adjacency_for(src.id(), false, &labels)?, false, &mut group)?;
                }
            }
            groups.push(group);
        }
        Ok(groups)
    }

    fn edge_endpoints(
        &self,
        edges: &[Edge],
        end: EdgeEnd,
        came_from: &[Option<ElementId>],
        filter: &ElementFilter,
    ) -> GResult<Vec<Vec<Element>>> {
        let mut out = Vec::with_capacity(edges.len());
        for (i, e) in edges.iter().enumerate() {
            let ids: Vec<&ElementId> = match end {
                EdgeEnd::Out => vec![&e.src],
                EdgeEnd::In => vec![&e.dst],
                EdgeEnd::Both => vec![&e.src, &e.dst],
                EdgeEnd::Other => match came_from.get(i).and_then(|o| o.as_ref()) {
                    Some(f) if *f == e.src => vec![&e.dst],
                    Some(f) if *f == e.dst => vec![&e.src],
                    _ => vec![&e.dst],
                },
            };
            let mut group = Vec::new();
            for id in ids {
                if let Some(v) = self.load_vertex(id)? {
                    let el = Element::Vertex(v);
                    if filter.matches(&el) {
                        group.push(el);
                    }
                }
            }
            out.push(group);
        }
        Ok(out)
    }

    fn backend_name(&self) -> &str {
        "janus-like"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin::structure::GValue;
    use gremlin::ScriptRunner;

    fn diamond() -> JanusLikeDb {
        let mut l = JanusLoader::new();
        for (id, w) in [(1i64, 1.0f64), (2, 2.0), (3, 3.0), (4, 4.0)] {
            l.add_vertex(Vertex::new(id, "node").with_property("w", w));
        }
        l.add_edge(Edge::new(100i64, "to", 1i64, 2i64).with_property("len", 5i64));
        l.add_edge(Edge::new(101i64, "to", 1i64, 3i64).with_property("len", 7i64));
        l.add_edge(Edge::new(102i64, "to", 2i64, 4i64).with_property("len", 1i64));
        l.add_edge(Edge::new(103i64, "to", 3i64, 4i64).with_property("len", 2i64));
        l.add_edge(Edge::new(104i64, "likes", 1i64, 4i64));
        l.build()
    }

    #[test]
    fn traversals_match_expected() {
        let g = diamond();
        let r = ScriptRunner::new(&g);
        assert_eq!(r.run("g.V().count()").unwrap(), vec![GValue::Long(4)]);
        assert_eq!(r.run("g.E().count()").unwrap(), vec![GValue::Long(5)]);
        let out = r.run("g.V(1).out('to').out('to').dedup().id()").unwrap();
        assert_eq!(out, vec![GValue::Long(4)]);
        let out = r.run("g.V(1).outE('to').has('len', gt(5)).inV().id()").unwrap();
        assert_eq!(out, vec![GValue::Long(3)]);
        // Edge lookup through the pointer index.
        let out = r.run("g.E(102).outV().id()").unwrap();
        assert_eq!(out, vec![GValue::Long(2)]);
        // In-direction through the in-columns.
        let out = r.run("g.V(4).in('to').order().by('w').values('w')").unwrap();
        assert_eq!(out, vec![GValue::Double(2.0), GValue::Double(3.0)]);
        // Label slicing works.
        let out = r.run("g.V(1).out('likes').id()").unwrap();
        assert_eq!(out, vec![GValue::Long(4)]);
    }

    #[test]
    fn label_index_lookup() {
        let g = diamond();
        let mut f = ElementFilter { labels: Some(vec!["node".into()]), ..Default::default() };
        match g.graph_elements(ElementKind::Vertices, &f).unwrap() {
            BackendOutput::Elements(es) => assert_eq!(es.len(), 4),
            other => panic!("{other:?}"),
        }
        f.labels = Some(vec!["ghost".into()]);
        match g.graph_elements(ElementKind::Vertices, &f).unwrap() {
            BackendOutput::Elements(es) => assert!(es.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn storage_duplicates_edges() {
        let g = diamond();
        // Both-direction duplication: stored bytes exceed a single copy of
        // all records by a wide margin.
        assert!(g.storage_bytes() > 5 * 40);
    }

    #[test]
    fn op_overhead_slows_queries() {
        let g = diamond();
        let r = ScriptRunner::new(&g);
        let fast = {
            let t = Instant::now();
            for _ in 0..20 {
                r.run("g.V(1).out('to')").unwrap();
            }
            t.elapsed()
        };
        g.set_op_overhead(Duration::from_micros(200));
        let slow = {
            let t = Instant::now();
            for _ in 0..20 {
                r.run("g.V(1).out('to')").unwrap();
            }
            t.elapsed()
        };
        assert!(slow > fast * 2, "overhead must be visible: {fast:?} vs {slow:?}");
    }

    #[test]
    fn prefix_keys_do_not_collide_across_ids() {
        // Vertex 1 and vertex 10 must have disjoint adjacency prefixes.
        let g = {
            let mut l = JanusLoader::new();
            l.add_vertex(Vertex::new(1i64, "n"));
            l.add_vertex(Vertex::new(10i64, "n"));
            l.add_vertex(Vertex::new(2i64, "n"));
            l.add_edge(Edge::new(100i64, "to", 1i64, 2i64));
            l.add_edge(Edge::new(101i64, "to", 10i64, 2i64));
            l.build()
        };
        let r = ScriptRunner::new(&g);
        assert_eq!(r.run("g.V(1).outE('to').count()").unwrap(), vec![GValue::Long(1)]);
        assert_eq!(r.run("g.V(10).outE('to').count()").unwrap(), vec![GValue::Long(1)]);
    }
}
