//! The native graph database baseline ("GDB-X" in the paper's evaluation).
//!
//! Models a commercial native graph store's architecture:
//!
//! * **index-free adjacency, grouped by edge label** — each vertex record
//!   carries per-label adjacency entries `(label, neighbour id, edge slot)`,
//!   so a labelled hop or a degree-by-label count touches no index and no
//!   edge record at all (how Neo4j-style relationship groups behave);
//! * **serialized storage with an in-memory record cache** — records live
//!   serialized ("on disk"); a bounded cache holds deserialized records.
//!   While the graph fits the cache, queries are very fast; past capacity,
//!   every miss pays real deserialization work proportional to the record's
//!   adjacency size. This reproduces Figure 5's crossover: GDB-X wins on
//!   the small dataset and loses on the large one;
//! * **a coarse cache lock** — all queries funnel through one mutex, which
//!   is why the native store "cannot keep up with the large amount of
//!   concurrency" in Figure 6;
//! * **denormalized loading** — bulk load serializes every vertex with both
//!   adjacency directions and builds id and label indexes, inflating disk
//!   usage over the relational source (Table 3) and making loads slow.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gremlin::backend::{
    finalize_elements, AggOp, BackendOutput, Direction, EdgeEnd, ElementFilter, ElementKind,
    GraphBackend,
};
use gremlin::structure::{Edge, Element, ElementId, GValue, Vertex};
use gremlin::{GremlinError, GResult};
use parking_lot::Mutex;

use crate::codec::{self, Cursor};

/// One adjacency entry: interned edge label, the neighbour's id, and the
/// slot of the full edge record.
#[derive(Debug, Clone, PartialEq)]
pub struct AdjEntry {
    pub label: u32,
    pub other: ElementId,
    pub edge_slot: u64,
}

/// A deserialized vertex record: the vertex plus label-grouped adjacency.
#[derive(Debug, Clone)]
pub struct VertexRec {
    pub vertex: Vertex,
    pub out: Vec<AdjEntry>,
    pub inc: Vec<AdjEntry>,
}

fn put_adj(buf: &mut Vec<u8>, entries: &[AdjEntry]) {
    codec::put_u32(buf, entries.len() as u32);
    for e in entries {
        codec::put_u32(buf, e.label);
        codec::put_id(buf, &e.other);
        codec::put_u64(buf, e.edge_slot);
    }
}

fn read_adj(c: &mut Cursor<'_>) -> Result<Vec<AdjEntry>, codec::CodecError> {
    let n = c.read_u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let label = c.read_u32()?;
        let other = codec::read_id(c)?;
        let edge_slot = c.read_u64()?;
        out.push(AdjEntry { label, other, edge_slot });
    }
    Ok(out)
}

fn encode_vertex_rec(rec: &VertexRec) -> Vec<u8> {
    let mut buf = Vec::with_capacity(96 + 24 * (rec.out.len() + rec.inc.len()));
    codec::put_vertex(&mut buf, &rec.vertex).expect("scalar vertex properties");
    put_adj(&mut buf, &rec.out);
    put_adj(&mut buf, &rec.inc);
    buf
}

fn decode_vertex_rec(buf: &[u8]) -> Result<VertexRec, codec::CodecError> {
    let mut c = Cursor::new(buf);
    let vertex = codec::read_vertex(&mut c)?;
    let out = read_adj(&mut c)?;
    let inc = read_adj(&mut c)?;
    Ok(VertexRec { vertex, out, inc })
}

/// Bounded FIFO record cache.
struct Cache {
    vertices: HashMap<usize, Arc<VertexRec>>,
    edges: HashMap<usize, Arc<Edge>>,
    order: VecDeque<(bool, usize)>, // (is_vertex, slot)
    capacity: usize,
}

impl Cache {
    fn new(capacity: usize) -> Cache {
        Cache { vertices: HashMap::new(), edges: HashMap::new(), order: VecDeque::new(), capacity }
    }

    fn evict_to_fit(&mut self) {
        while self.vertices.len() + self.edges.len() > self.capacity {
            match self.order.pop_front() {
                Some((true, slot)) => {
                    self.vertices.remove(&slot);
                }
                Some((false, slot)) => {
                    self.edges.remove(&slot);
                }
                None => break,
            }
        }
    }
}

/// Cache behaviour counters.
#[derive(Debug, Default)]
pub struct NativeStats {
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
}

/// The native graph store.
pub struct NativeGraphDb {
    vertex_slots: Vec<Vec<u8>>,
    edge_slots: Vec<Vec<u8>>,
    v_index: HashMap<ElementId, usize>,
    e_index: HashMap<ElementId, usize>,
    v_label_index: HashMap<String, Vec<usize>>,
    e_label_index: HashMap<String, Vec<usize>>,
    /// Interned edge-label strings (AdjEntry.label indexes into this).
    edge_labels: Vec<String>,
    cache: Mutex<Cache>,
    stats: NativeStats,
    /// Simulated storage-read latency paid on every cache miss. Zero by
    /// default (pure in-memory); the benchmark harness sets it for the
    /// large dataset, where the paper's GDB-X data (327 GB) no longer fit
    /// its cache and every miss became a disk read.
    miss_penalty: std::sync::atomic::AtomicU64,
}

/// Staging area for bulk loading.
#[derive(Default)]
pub struct NativeLoader {
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
}

impl NativeLoader {
    pub fn new() -> NativeLoader {
        NativeLoader::default()
    }

    pub fn add_vertex(&mut self, v: Vertex) {
        self.vertices.push(v);
    }

    pub fn add_edge(&mut self, e: Edge) {
        self.edges.push(e);
    }

    /// Serialize everything, build label-grouped adjacency and indexes.
    /// This is the slow "Load Data" phase of Table 3.
    pub fn build(self, cache_capacity: usize) -> NativeGraphDb {
        let mut v_index = HashMap::with_capacity(self.vertices.len());
        for (i, v) in self.vertices.iter().enumerate() {
            v_index.insert(v.id.clone(), i);
        }
        let mut edge_labels: Vec<String> = Vec::new();
        let mut label_ids: HashMap<String, u32> = HashMap::new();
        let mut intern = |label: &str, edge_labels: &mut Vec<String>| -> u32 {
            match label_ids.get(label) {
                Some(&i) => i,
                None => {
                    let i = edge_labels.len() as u32;
                    edge_labels.push(label.to_string());
                    label_ids.insert(label.to_string(), i);
                    i
                }
            }
        };
        let mut out_adj: Vec<Vec<AdjEntry>> = vec![Vec::new(); self.vertices.len()];
        let mut in_adj: Vec<Vec<AdjEntry>> = vec![Vec::new(); self.vertices.len()];
        let mut e_index = HashMap::with_capacity(self.edges.len());
        let mut edge_slots = Vec::with_capacity(self.edges.len());
        let mut e_label_index: HashMap<String, Vec<usize>> = HashMap::new();
        for (ei, e) in self.edges.iter().enumerate() {
            let li = intern(&e.label, &mut edge_labels);
            e_index.insert(e.id.clone(), ei);
            e_label_index.entry(e.label.clone()).or_default().push(ei);
            if let Some(&s) = v_index.get(&e.src) {
                out_adj[s].push(AdjEntry { label: li, other: e.dst.clone(), edge_slot: ei as u64 });
            }
            if let Some(&d) = v_index.get(&e.dst) {
                in_adj[d].push(AdjEntry { label: li, other: e.src.clone(), edge_slot: ei as u64 });
            }
            edge_slots.push(codec::encode_edge(e).expect("scalar edge properties"));
        }
        // Group adjacency by label (relationship-group layout).
        for adj in out_adj.iter_mut().chain(in_adj.iter_mut()) {
            adj.sort_by_key(|e| e.label);
        }
        let mut vertex_slots = Vec::with_capacity(self.vertices.len());
        let mut v_label_index: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, v) in self.vertices.into_iter().enumerate() {
            v_label_index.entry(v.label.clone()).or_default().push(i);
            let rec = VertexRec {
                vertex: v,
                out: std::mem::take(&mut out_adj[i]),
                inc: std::mem::take(&mut in_adj[i]),
            };
            vertex_slots.push(encode_vertex_rec(&rec));
        }
        NativeGraphDb {
            vertex_slots,
            edge_slots,
            v_index,
            e_index,
            v_label_index,
            e_label_index,
            edge_labels,
            cache: Mutex::new(Cache::new(cache_capacity)),
            stats: NativeStats::default(),
            miss_penalty: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl NativeGraphDb {
    pub fn vertex_count(&self) -> usize {
        self.vertex_slots.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edge_slots.len()
    }

    pub fn stats(&self) -> &NativeStats {
        &self.stats
    }

    /// Set the simulated per-miss storage latency (models the disk reads
    /// GDB-X pays once the graph exceeds its in-memory cache).
    pub fn set_miss_penalty(&self, penalty: std::time::Duration) {
        self.miss_penalty
            .store(penalty.as_nanos() as u64, Ordering::Relaxed);
    }

    fn pay_miss(&self) {
        let ns = self.miss_penalty.load(Ordering::Relaxed);
        if ns > 0 {
            // One simulated storage read. Spin-wait for precision at the
            // microsecond scale (thread::sleep cannot time this reliably).
            let start = std::time::Instant::now();
            let d = std::time::Duration::from_nanos(ns);
            while start.elapsed() < d {
                std::hint::spin_loop();
            }
        }
    }

    /// Storage footprint: serialized records plus index overhead (Table 3
    /// "Disk Usage").
    pub fn storage_bytes(&self) -> usize {
        let data: usize = self.vertex_slots.iter().map(Vec::len).sum::<usize>()
            + self.edge_slots.iter().map(Vec::len).sum::<usize>();
        let idx = (self.v_index.len() + self.e_index.len()) * 48
            + self
                .v_label_index
                .values()
                .chain(self.e_label_index.values())
                .map(|v| v.len() * 8 + 32)
                .sum::<usize>();
        data + idx
    }

    /// Resolve interned label ids for a label-name filter; `None` when the
    /// filter is empty (all labels pass).
    fn label_ids(&self, labels: &[String]) -> Option<Vec<u32>> {
        if labels.is_empty() {
            return None;
        }
        Some(
            self.edge_labels
                .iter()
                .enumerate()
                .filter(|(_, l)| labels.iter().any(|x| x == *l))
                .map(|(i, _)| i as u32)
                .collect(),
        )
    }

    /// "Open Graph": aggressively prefetch records into the cache, like
    /// GDB-X's slow open (Table 3 attributes its 14-15 s open time to
    /// "aggressive prefetching and caching strategies").
    pub fn open(&self) {
        let mut cache = self.cache.lock();
        let budget = cache.capacity;
        for slot in 0..self.vertex_slots.len().min(budget / 2) {
            let rec = decode_vertex_rec(&self.vertex_slots[slot]).expect("stored records decode");
            cache.vertices.insert(slot, Arc::new(rec));
            cache.order.push_back((true, slot));
        }
        let remaining = budget.saturating_sub(cache.vertices.len());
        for slot in 0..self.edge_slots.len().min(remaining) {
            let e = codec::decode_edge(&self.edge_slots[slot]).expect("stored records decode");
            cache.edges.insert(slot, Arc::new(e));
            cache.order.push_back((false, slot));
        }
    }

    fn fetch_vertex(&self, slot: usize) -> GResult<Arc<VertexRec>> {
        {
            let cache = self.cache.lock();
            if let Some(rec) = cache.vertices.get(&slot) {
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(rec.clone());
            }
        }
        // Miss: pay the storage read and decode outside the lock so
        // concurrent clients are not serialized behind one miss.
        self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.pay_miss();
        let rec = Arc::new(
            decode_vertex_rec(&self.vertex_slots[slot])
                .map_err(|e| GremlinError::Backend(e.to_string()))?,
        );
        let mut cache = self.cache.lock();
        cache.vertices.insert(slot, rec.clone());
        cache.order.push_back((true, slot));
        cache.evict_to_fit();
        Ok(rec)
    }

    fn fetch_edge(&self, slot: usize) -> GResult<Arc<Edge>> {
        Ok(self.fetch_edges_bulk(&[slot as u64])?.remove(0))
    }

    /// Fetch several edge records of one vertex. Edges of a vertex are laid
    /// out contiguously on storage, so a group fetch pays at most ONE
    /// simulated storage read regardless of how many records miss; each
    /// missing record still pays its real decode cost.
    fn fetch_edges_bulk(&self, slots: &[u64]) -> GResult<Vec<Arc<Edge>>> {
        let mut out: Vec<Option<Arc<Edge>>> = vec![None; slots.len()];
        let mut missing: Vec<(usize, u64)> = Vec::new();
        {
            let cache = self.cache.lock();
            for (i, &slot) in slots.iter().enumerate() {
                if let Some(e) = cache.edges.get(&(slot as usize)) {
                    out[i] = Some(e.clone());
                } else {
                    missing.push((i, slot));
                }
            }
        }
        self.stats.cache_hits.fetch_add((slots.len() - missing.len()) as u64, Ordering::Relaxed);
        if !missing.is_empty() {
            self.stats.cache_misses.fetch_add(missing.len() as u64, Ordering::Relaxed);
            // One block read for the whole group.
            self.pay_miss();
            let mut decoded: Vec<(u64, Arc<Edge>)> = Vec::with_capacity(missing.len());
            for &(i, slot) in &missing {
                let e = Arc::new(
                    codec::decode_edge(&self.edge_slots[slot as usize])
                        .map_err(|e| GremlinError::Backend(e.to_string()))?,
                );
                out[i] = Some(e.clone());
                decoded.push((slot, e));
            }
            let mut cache = self.cache.lock();
            for (slot, e) in decoded {
                cache.edges.insert(slot as usize, e);
                cache.order.push_back((false, slot as usize));
            }
            cache.evict_to_fit();
        }
        Ok(out.into_iter().map(|o| o.expect("filled above")).collect())
    }

    fn vertices_by_filter(&self, filter: &ElementFilter) -> GResult<Vec<Element>> {
        let slots: Vec<usize> = if let Some(ids) = &filter.ids {
            ids.iter().filter_map(|id| self.v_index.get(id).copied()).collect()
        } else if let Some(labels) = &filter.labels {
            labels
                .iter()
                .flat_map(|l| self.v_label_index.get(l).cloned().unwrap_or_default())
                .collect()
        } else {
            (0..self.vertex_slots.len()).collect()
        };
        let mut out = Vec::with_capacity(slots.len());
        for s in slots {
            let rec = self.fetch_vertex(s)?;
            let el = Element::Vertex(rec.vertex.clone());
            if filter.matches(&el) {
                out.push(el);
            }
        }
        Ok(out)
    }

    /// Degree-by-label count straight from adjacency entries — no edge
    /// record is touched (the native-store fast path for countLinks).
    fn try_adjacency_count(&self, filter: &ElementFilter) -> GResult<Option<i64>> {
        if filter.aggregate != Some(AggOp::Count)
            || !filter.predicates.is_empty()
            || filter.ids.is_some()
            || filter.projection.is_some()
        {
            return Ok(None);
        }
        let (ids, outgoing) = match (&filter.src_ids, &filter.dst_ids) {
            (Some(ids), None) => (ids, true),
            (None, Some(ids)) => (ids, false),
            _ => return Ok(None),
        };
        let wanted = filter.labels.as_ref().and_then(|ls| self.label_ids(ls));
        let mut n = 0i64;
        for id in ids {
            if let Some(&slot) = self.v_index.get(id) {
                let rec = self.fetch_vertex(slot)?;
                let entries = if outgoing { &rec.out } else { &rec.inc };
                n += match &wanted {
                    None => entries.len() as i64,
                    Some(ls) => entries.iter().filter(|e| ls.contains(&e.label)).count() as i64,
                };
            }
        }
        Ok(Some(n))
    }

    fn edges_by_filter(&self, filter: &ElementFilter) -> GResult<Vec<Element>> {
        // src/dst constraints route through adjacency (index-free!).
        let adjacency = match (&filter.src_ids, &filter.dst_ids) {
            (Some(ids), _) => Some((ids, true)),
            (None, Some(ids)) => Some((ids, false)),
            _ => None,
        };
        if let Some((ids, outgoing)) = adjacency {
            let wanted = filter.labels.as_ref().and_then(|ls| self.label_ids(ls));
            let mut out = Vec::new();
            for id in ids {
                let Some(&slot) = self.v_index.get(id) else { continue };
                let rec = self.fetch_vertex(slot)?;
                let entries = if outgoing { &rec.out } else { &rec.inc };
                let mut group: Vec<u64> = Vec::new();
                for entry in entries {
                    if let Some(ls) = &wanted {
                        if !ls.contains(&entry.label) {
                            continue;
                        }
                    }
                    // Opposite-end constraint checked on the entry, before
                    // fetching the edge record.
                    let opposite = if outgoing { &filter.dst_ids } else { &filter.src_ids };
                    if let Some(opp) = opposite {
                        if !opp.iter().any(|i| i == &entry.other) {
                            continue;
                        }
                    }
                    group.push(entry.edge_slot);
                }
                for e in self.fetch_edges_bulk(&group)? {
                    let el = Element::Edge((*e).clone());
                    if filter.matches(&el) {
                        out.push(el);
                    }
                }
            }
            return Ok(out);
        }
        let slots: Vec<usize> = if let Some(ids) = &filter.ids {
            ids.iter().filter_map(|id| self.e_index.get(id).copied()).collect()
        } else if let Some(labels) = &filter.labels {
            labels
                .iter()
                .flat_map(|l| self.e_label_index.get(l).cloned().unwrap_or_default())
                .collect()
        } else {
            (0..self.edge_slots.len()).collect()
        };
        let mut out = Vec::with_capacity(slots.len());
        for s in slots {
            let e = self.fetch_edge(s)?;
            let el = Element::Edge((*e).clone());
            if filter.matches(&el) {
                out.push(el);
            }
        }
        Ok(out)
    }
}

impl GraphBackend for NativeGraphDb {
    fn graph_elements(&self, kind: ElementKind, filter: &ElementFilter) -> GResult<BackendOutput> {
        if kind == ElementKind::Edges {
            if let Some(n) = self.try_adjacency_count(filter)? {
                return Ok(BackendOutput::Aggregate(GValue::Long(n)));
            }
        }
        let elements = match kind {
            ElementKind::Vertices => self.vertices_by_filter(filter)?,
            ElementKind::Edges => self.edges_by_filter(filter)?,
        };
        Ok(finalize_elements(elements, filter))
    }

    fn adjacent(
        &self,
        sources: &[Element],
        direction: Direction,
        edge_labels: &[String],
        to: ElementKind,
        filter: &ElementFilter,
    ) -> GResult<Vec<Vec<Element>>> {
        let wanted = self.label_ids(edge_labels);
        let mut groups = Vec::with_capacity(sources.len());
        for src in sources {
            let mut group = Vec::new();
            let Some(&slot) = self.v_index.get(src.id()) else {
                groups.push(group);
                continue;
            };
            let rec = self.fetch_vertex(slot)?;
            let mut walk = |entries: &[AdjEntry]| -> GResult<()> {
                let matching: Vec<&AdjEntry> = entries
                    .iter()
                    .filter(|entry| wanted.as_ref().map(|ls| ls.contains(&entry.label)).unwrap_or(true))
                    .collect();
                match to {
                    ElementKind::Edges => {
                        // Block fetch of the vertex's matching edge records.
                        let slots: Vec<u64> = matching.iter().map(|e| e.edge_slot).collect();
                        for e in self.fetch_edges_bulk(&slots)? {
                            let el = Element::Edge((*e).clone());
                            if filter.matches(&el) {
                                group.push(el);
                            }
                        }
                    }
                    ElementKind::Vertices => {
                        // True index-free adjacency: jump straight to the
                        // neighbour records.
                        for entry in matching {
                            if let Some(&ns) = self.v_index.get(&entry.other) {
                                let nrec = self.fetch_vertex(ns)?;
                                let el = Element::Vertex(nrec.vertex.clone());
                                if filter.matches(&el) {
                                    group.push(el);
                                }
                            }
                        }
                    }
                }
                Ok(())
            };
            match direction {
                Direction::Out => walk(&rec.out)?,
                Direction::In => walk(&rec.inc)?,
                Direction::Both => {
                    walk(&rec.out)?;
                    walk(&rec.inc)?;
                }
            }
            groups.push(group);
        }
        Ok(groups)
    }

    fn edge_endpoints(
        &self,
        edges: &[Edge],
        end: EdgeEnd,
        came_from: &[Option<ElementId>],
        filter: &ElementFilter,
    ) -> GResult<Vec<Vec<Element>>> {
        let mut out = Vec::with_capacity(edges.len());
        for (i, e) in edges.iter().enumerate() {
            let ids: Vec<&ElementId> = match end {
                EdgeEnd::Out => vec![&e.src],
                EdgeEnd::In => vec![&e.dst],
                EdgeEnd::Both => vec![&e.src, &e.dst],
                EdgeEnd::Other => match came_from.get(i).and_then(|o| o.as_ref()) {
                    Some(f) if *f == e.src => vec![&e.dst],
                    Some(f) if *f == e.dst => vec![&e.src],
                    _ => vec![&e.dst],
                },
            };
            let mut group = Vec::new();
            for id in ids {
                if let Some(&slot) = self.v_index.get(id) {
                    let rec = self.fetch_vertex(slot)?;
                    let el = Element::Vertex(rec.vertex.clone());
                    if filter.matches(&el) {
                        group.push(el);
                    }
                }
            }
            out.push(group);
        }
        Ok(out)
    }

    fn backend_name(&self) -> &str {
        "native"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gremlin::structure::GValue;
    use gremlin::ScriptRunner;

    fn diamond(cache: usize) -> NativeGraphDb {
        let mut l = NativeLoader::new();
        for (id, w) in [(1i64, 1.0f64), (2, 2.0), (3, 3.0), (4, 4.0)] {
            l.add_vertex(Vertex::new(id, "node").with_property("w", w));
        }
        l.add_edge(Edge::new(100i64, "to", 1i64, 2i64).with_property("len", 5i64));
        l.add_edge(Edge::new(101i64, "to", 1i64, 3i64).with_property("len", 7i64));
        l.add_edge(Edge::new(102i64, "to", 2i64, 4i64).with_property("len", 1i64));
        l.add_edge(Edge::new(103i64, "to", 3i64, 4i64).with_property("len", 2i64));
        l.add_edge(Edge::new(104i64, "likes", 1i64, 4i64));
        l.build(cache)
    }

    #[test]
    fn vertex_rec_roundtrip() {
        let rec = VertexRec {
            vertex: Vertex::new("a::1", "x").with_property("p", 5i64),
            out: vec![AdjEntry { label: 0, other: ElementId::Long(2), edge_slot: 1 }],
            inc: vec![AdjEntry { label: 1, other: ElementId::Str("z".into()), edge_slot: 9 }],
        };
        let buf = encode_vertex_rec(&rec);
        let rec2 = decode_vertex_rec(&buf).unwrap();
        assert_eq!(rec2.vertex.id, rec.vertex.id);
        assert_eq!(rec2.out, rec.out);
        assert_eq!(rec2.inc, rec.inc);
    }

    #[test]
    fn traversals_match_expected() {
        let g = diamond(100);
        let r = ScriptRunner::new(&g);
        assert_eq!(r.run("g.V().count()").unwrap(), vec![GValue::Long(4)]);
        assert_eq!(r.run("g.E().count()").unwrap(), vec![GValue::Long(5)]);
        let out = r.run("g.V(1).out('to').out('to').dedup().id()").unwrap();
        assert_eq!(out, vec![GValue::Long(4)]);
        let out = r.run("g.V(1).outE('to').has('len', gt(5)).inV().id()").unwrap();
        assert_eq!(out, vec![GValue::Long(3)]);
        let out = r.run("g.V(4).in('to').order().by('w').values('w')").unwrap();
        assert_eq!(out, vec![GValue::Double(2.0), GValue::Double(3.0)]);
        // Label-grouped adjacency respects labels.
        let out = r.run("g.V(1).out('likes').id()").unwrap();
        assert_eq!(out, vec![GValue::Long(4)]);
    }

    #[test]
    fn adjacency_count_shortcut() {
        let g = diamond(100);
        let f = ElementFilter {
            src_ids: Some(vec![ElementId::Long(1)]),
            labels: Some(vec!["to".into()]),
            aggregate: Some(AggOp::Count),
            ..Default::default()
        };
        let before = g.stats().cache_hits.load(Ordering::Relaxed)
            + g.stats().cache_misses.load(Ordering::Relaxed);
        match g.graph_elements(ElementKind::Edges, &f).unwrap() {
            BackendOutput::Aggregate(GValue::Long(2)) => {}
            other => panic!("{other:?}"),
        }
        let after = g.stats().cache_hits.load(Ordering::Relaxed)
            + g.stats().cache_misses.load(Ordering::Relaxed);
        // Only the vertex record was touched, no edge records.
        assert_eq!(after - before, 1);
    }

    #[test]
    fn tiny_cache_still_correct_but_misses() {
        let g = diamond(2);
        let r = ScriptRunner::new(&g);
        for _ in 0..3 {
            assert_eq!(
                r.run("g.V(1).out('to').out('to').dedup().count()").unwrap(),
                vec![GValue::Long(1)]
            );
        }
        let misses = g.stats().cache_misses.load(Ordering::Relaxed);
        assert!(misses > 4, "tiny cache must keep missing, got {misses}");
        let g2 = diamond(1000);
        let r2 = ScriptRunner::new(&g2);
        for _ in 0..3 {
            r2.run("g.V(1).out('to').out('to').dedup().count()").unwrap();
        }
        let h = g2.stats().cache_hits.load(Ordering::Relaxed);
        let m = g2.stats().cache_misses.load(Ordering::Relaxed);
        assert!(h > m, "warm cache should mostly hit: hits={h} misses={m}");
    }

    #[test]
    fn open_prefetches() {
        let g = diamond(100);
        g.open();
        let r = ScriptRunner::new(&g);
        r.run("g.V(1).out('to')").unwrap();
        assert!(g.stats().cache_hits.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn storage_accounting_positive() {
        let g = diamond(10);
        assert!(g.storage_bytes() > 0);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn label_index_and_src_constraints() {
        let g = diamond(100);
        let f = ElementFilter { labels: Some(vec!["node".into()]), ..Default::default() };
        match g.graph_elements(ElementKind::Vertices, &f).unwrap() {
            BackendOutput::Elements(es) => assert_eq!(es.len(), 4),
            other => panic!("{other:?}"),
        }
        let f = ElementFilter { src_ids: Some(vec![ElementId::Long(1)]), ..Default::default() };
        match g.graph_elements(ElementKind::Edges, &f).unwrap() {
            BackendOutput::Elements(es) => assert_eq!(es.len(), 3),
            other => panic!("{other:?}"),
        }
        // getLink shape: src + dst constraint checked on entries.
        let f = ElementFilter {
            src_ids: Some(vec![ElementId::Long(1)]),
            dst_ids: Some(vec![ElementId::Long(3)]),
            ..Default::default()
        };
        match g.graph_elements(ElementKind::Edges, &f).unwrap() {
            BackendOutput::Elements(es) => {
                assert_eq!(es.len(), 1);
                assert_eq!(es[0].id(), &ElementId::Long(101));
            }
            other => panic!("{other:?}"),
        }
    }
}
