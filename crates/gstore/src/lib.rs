//! # gstore — baseline graph stores for the evaluation
//!
//! The paper's evaluation (Section 8) compares Db2 Graph against two
//! standalone graph databases: **GDB-X**, an anonymous commercial native
//! graph database, and **JanusGraph** backed by Berkeley DB. Neither is
//! available here, so this crate implements architectural stand-ins that
//! reproduce their qualitative behaviour (see DESIGN.md §2 for the
//! substitution argument):
//!
//! * [`native`] — index-free adjacency + bounded deserialized-record cache
//!   behind a coarse lock (fast when the graph fits the cache, degrades
//!   past it, poor concurrency scaling);
//! * [`janus`] — one serialized adjacency blob per vertex on an ordered
//!   [`kv`] store (every access deserializes a whole blob; uniformly the
//!   slowest; largest load times);
//! * [`loader`] — export-from-source + bulk load with per-phase timing
//!   (Table 3) and storage accounting;
//! * [`codec`] — the deliberately verbose record serialization both stores
//!   pay for.
//!
//! Both stores implement `gremlin::GraphBackend`, so the same Gremlin
//! engine and queries run on them unchanged — exactly how TinkerPop hosts
//! multiple providers.

pub mod codec;
pub mod janus;
pub mod kv;
pub mod loader;
pub mod native;

pub use janus::{JanusLikeDb, JanusLoader};
pub use kv::KvStore;
pub use loader::{export_graph, load_janus, load_native, open_native, ExportedGraph, LoadReport};
pub use native::{NativeGraphDb, NativeLoader};
