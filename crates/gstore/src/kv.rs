//! An ordered key-value store substrate.
//!
//! Plays the role Berkeley DB plays under JanusGraph in the paper's
//! evaluation: an ordered map from byte keys to byte values with prefix
//! scans. In-memory, guarded by a single reader-writer lock (one lock for
//! the whole store — part of why the Janus-like baseline scales poorly
//! under concurrency in Figure 6).

use std::collections::BTreeMap;
use std::ops::Bound;

use parking_lot::RwLock;

/// An ordered byte-key/byte-value store.
#[derive(Debug, Default)]
pub struct KvStore {
    map: RwLock<BTreeMap<Vec<u8>, Vec<u8>>>,
}

impl KvStore {
    pub fn new() -> KvStore {
        KvStore::default()
    }

    pub fn put(&self, key: Vec<u8>, value: Vec<u8>) {
        self.map.write().insert(key, value);
    }

    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.read().get(key).cloned()
    }

    pub fn delete(&self, key: &[u8]) -> bool {
        self.map.write().remove(key).is_some()
    }

    pub fn contains(&self, key: &[u8]) -> bool {
        self.map.read().contains_key(key)
    }

    /// All `(key, value)` pairs whose key starts with `prefix`, in key
    /// order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let map = self.map.read();
        map.range((Bound::Included(prefix.to_vec()), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Visit values under a prefix without materializing keys.
    pub fn for_each_prefix(&self, prefix: &[u8], mut f: impl FnMut(&[u8], &[u8])) {
        let map = self.map.read();
        for (k, v) in map
            .range((Bound::Included(prefix.to_vec()), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
        {
            f(k, v);
        }
    }

    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Total bytes stored (keys + values) — the "disk usage" accounting for
    /// Table 3.
    pub fn total_bytes(&self) -> usize {
        let map = self.map.read();
        map.iter().map(|(k, v)| k.len() + v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let kv = KvStore::new();
        kv.put(b"a".to_vec(), b"1".to_vec());
        kv.put(b"b".to_vec(), b"2".to_vec());
        assert_eq!(kv.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(kv.get(b"z"), None);
        assert!(kv.contains(b"b"));
        assert!(kv.delete(b"a"));
        assert!(!kv.delete(b"a"));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn overwrite_replaces() {
        let kv = KvStore::new();
        kv.put(b"k".to_vec(), b"v1".to_vec());
        kv.put(b"k".to_vec(), b"v2".to_vec());
        assert_eq!(kv.get(b"k"), Some(b"v2".to_vec()));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn prefix_scans_are_bounded() {
        let kv = KvStore::new();
        kv.put(b"v:1".to_vec(), b"a".to_vec());
        kv.put(b"v:2".to_vec(), b"b".to_vec());
        kv.put(b"w:1".to_vec(), b"c".to_vec());
        let hits = kv.scan_prefix(b"v:");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, b"v:1".to_vec());
        let mut n = 0;
        kv.for_each_prefix(b"w:", |_, _| n += 1);
        assert_eq!(n, 1);
        assert!(kv.scan_prefix(b"x:").is_empty());
    }

    #[test]
    fn byte_accounting() {
        let kv = KvStore::new();
        kv.put(b"ab".to_vec(), b"cdef".to_vec());
        assert_eq!(kv.total_bytes(), 6);
    }
}
