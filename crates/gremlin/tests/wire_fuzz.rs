//! Adversarial wire-input corpus for the Gremlin parser.
//!
//! The HTTP serving layer feeds whatever bytes arrive on a socket straight
//! into `parse` and promises a structured 400 — never a panic, never a
//! stack overflow — for anything malformed. This suite hammers the parser
//! with the inputs a hostile or broken client would send: truncations of
//! valid scripts, random byte mutations, pathological nesting, huge
//! tokens, and raw garbage. Every call must return `Ok` or `Err`;
//! a panic fails the test and a stack overflow aborts the harness.

use gremlin::parser::parse;

/// Deterministic xorshift PRNG — no external crates, same corpus on every
/// run and every platform.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const SEEDS: &[&str] = &[
    "g.V().hasLabel('patient').has('name', 'Alice').out('hasDisease').values('name')",
    "g.V(1, 2, -3).has('score', 4.5).order().by('name', desc).limit(5)",
    "xs = g.V().hasLabel('d').store('x').cap('x').next(); g.V(xs).in('hasDisease').dedup()",
    "g.V(1).repeat(out('isa').dedup().store('x')).times(2).cap('x')",
    "g.V().has('age', gt(30)).has('tag', within('a', 'b')).count()",
    "g.V(7).outE('follows').filter(outV().id() == 9)",
    "g.V().where(__.out('isa').hasLabel('disease')).values('name')",
    r"g.V().has('name', 'O\'Brien \n \t \\ \'')",
    "g.E().hasLabel('child').inV().path() // trailing comment",
];

/// Every byte-prefix of every seed script: what a connection dropped
/// mid-request delivers. Prefixes may split multi-byte UTF-8 sequences,
/// which the server rejects before parse; here we only feed valid UTF-8
/// boundaries, as `parse` takes `&str`.
#[test]
fn truncated_scripts_never_panic() {
    for seed in SEEDS {
        for end in 0..=seed.len() {
            if seed.is_char_boundary(end) {
                let _ = parse(&seed[..end]);
            }
        }
    }
}

/// Random single- and multi-byte mutations of valid scripts.
#[test]
fn mutated_scripts_never_panic() {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    for seed in SEEDS {
        for _ in 0..200 {
            let mut bytes = seed.as_bytes().to_vec();
            for _ in 0..=rng.below(4) {
                let pos = rng.below(bytes.len());
                match rng.below(3) {
                    0 => bytes[pos] = rng.next() as u8,
                    1 => {
                        bytes.remove(pos);
                        if bytes.is_empty() {
                            bytes.push(b'g');
                        }
                    }
                    _ => bytes.insert(pos, rng.next() as u8),
                }
            }
            if let Ok(s) = std::str::from_utf8(&bytes) {
                let _ = parse(s);
            }
        }
    }
}

/// Pure garbage: random printable-and-not byte soup.
#[test]
fn random_garbage_never_panics() {
    let mut rng = Rng(0x2545f4914f6cdd1d);
    for _ in 0..500 {
        let len = rng.below(120);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = parse(s);
        }
        // ASCII-only soup always parses as a &str.
        let ascii: String = (0..len).map(|_| (rng.below(95) as u8 + 32) as char).collect();
        let _ = parse(&ascii);
    }
}

/// Pathologically nested input must come back as a parse error — the
/// recursive descent has a depth guard, so no stack overflow.
#[test]
fn deep_nesting_returns_an_error() {
    for n in [100usize, 10_000, 100_000] {
        let deep = format!("g.V().where({}out(){}", "not(".repeat(n), ")".repeat(n));
        assert!(parse(&deep).is_err(), "nesting {n} should be rejected");
        let dunder = format!("g.V().where({}out()", "__.where(".repeat(n));
        assert!(parse(&dunder).is_err(), "dunder nesting {n} should be rejected");
    }
    // Long flat chains are iterative, not recursive: they still parse.
    let flat = format!("g.V(){}", ".out('x')".repeat(10_000));
    assert!(parse(&flat).is_ok());
}

/// Oversized and boundary-value tokens.
#[test]
fn huge_tokens_never_panic() {
    let long_str = format!("g.V().has('k', '{}')", "a".repeat(1 << 20));
    assert!(parse(&long_str).is_ok());
    let long_ident = format!("g.V().{}()", "x".repeat(1 << 16));
    let _ = parse(&long_ident);
    // Integer overflow must be a parse error, not a panic; float overflow
    // saturates to infinity (std semantics) — either way, no panic.
    assert!(parse("g.V(99999999999999999999999999999)").is_err());
    assert!(parse("g.V(-99999999999999999999999999999)").is_err());
    let _ = parse(&format!("g.V().limit(1e{})", "9".repeat(100)));
    // i64::MIN round-trips.
    assert!(parse("g.V(-9223372036854775808)").is_ok());
}

/// Handwritten edge cases: unterminated constructs, stray operators,
/// unicode, escapes at end-of-input, empty everything.
#[test]
fn handwritten_edge_cases_never_panic() {
    let cases = [
        "",
        ";",
        ";;;;",
        "g",
        "g.",
        "g.V",
        "g.V(",
        "g.V()",
        "g.V().",
        "g.V().has(",
        "g.V().has('a',",
        "g.V((((((((((",
        "g.V()))))",
        "g.V().has('unterminated",
        "g.V().has(\"unterminated",
        "g.V().has('dangling\\",
        "g.V().has('\\'",
        "'lonely string'",
        "g.V().has('a', )",
        "g.V().has(,)",
        "g.V()..out()",
        "g..V()",
        "g.V().out().",
        "x = ",
        "x = g",
        "= g.V()",
        "g.V() extra tokens here",
        "g.V().filter(out() ==)",
        "g.V().filter(== 9)",
        "g.V().has('a', gt())",
        "g.V(1).out()💥",
        "g.V().has('ключ', 'значение')",
        "g.V().has('\u{0}')",
        "g.\u{7f}V()",
        "-",
        "--",
        "g.V(-)",
        "g.V(1.2.3)",
        "g.V(1e)",
        "//only a comment",
        "g.V() // comment then nothing",
        "g.V().__()",
        "g.V().where(__.)",
        "g.V().where(__)",
        "__.out()",
    ];
    for c in cases {
        let _ = parse(c);
    }
}
