//! Lexer and recursive-descent parser for the Gremlin subset.

use crate::ast::*;
use crate::error::{GremlinError, GResult};
use crate::step::CompareOp;
use crate::structure::GValue;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Assign,
    EqEq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

fn tokenize(input: &str) -> GResult<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' if !bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) => {
                out.push(Token::Dot);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::EqEq);
                    i += 2;
                } else {
                    out.push(Token::Assign);
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::LtEq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    if j >= bytes.len() {
                        return Err(GremlinError::Parse("unterminated string".into()));
                    }
                    let ch = input[j..].chars().next().unwrap();
                    if ch == '\\' {
                        // Escapes: \' \" \\ \n \t
                        let next = input[j + 1..].chars().next().ok_or_else(|| {
                            GremlinError::Parse("dangling escape in string".into())
                        })?;
                        s.push(match next {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                        j += 1 + next.len_utf8();
                    } else if ch == quote {
                        j += 1;
                        break;
                    } else {
                        s.push(ch);
                        j += ch.len_utf8();
                    }
                }
                out.push(Token::Str(s));
                i = j;
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !is_float && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) => {
                            is_float = true;
                            i += 1;
                        }
                        b'e' | b'E' if i > start => {
                            is_float = true;
                            i += 1;
                            if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &input[start..i];
                if text == "-" {
                    return Err(GremlinError::Parse("stray '-'".into()));
                }
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        GremlinError::Parse(format!("bad float '{text}'"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        GremlinError::Parse(format!("bad integer '{text}'"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(GremlinError::Parse(format!(
                    "unexpected character '{other}' at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

/// Maximum nesting depth of step calls (anonymous traversals, predicates)
/// the parser accepts. The recursive descent otherwise recurses once per
/// nesting level, so adversarial input like `f(f(f(…)))` would overflow
/// the stack — an abort, not an error a server can map to 400. Real
/// queries nest a handful of levels; 64 is far beyond any of them.
pub const MAX_NESTING_DEPTH: usize = 64;

/// Parse a Gremlin script (one or more `;`-separated statements).
pub fn parse(input: &str) -> GResult<Script> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0, depth: 0 };
    let mut statements = Vec::new();
    while !p.at_end() {
        if p.eat(&Token::Semicolon) {
            continue;
        }
        statements.push(p.statement()?);
    }
    if statements.is_empty() {
        return Err(GremlinError::Parse("empty script".into()));
    }
    Ok(Script { statements })
}

/// Predicate function names (TinkerPop `P`).
fn is_pred_name(name: &str) -> bool {
    matches!(
        name,
        "eq" | "neq" | "gt" | "gte" | "lt" | "lte" | "within" | "without" | "between" | "inside"
    )
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current step-call nesting depth (see [`MAX_NESTING_DEPTH`]).
    depth: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> GResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(GremlinError::Parse(format!("expected {:?}, found {:?}", t, self.peek())))
        }
    }

    fn statement(&mut self) -> GResult<Statement> {
        // Optional `name =` assignment.
        let assign = if let (Some(Token::Ident(name)), Some(Token::Assign)) =
            (self.tokens.get(self.pos), self.tokens.get(self.pos + 1))
        {
            if name != "g" {
                let name = name.clone();
                self.pos += 2;
                Some(name)
            } else {
                None
            }
        } else {
            None
        };

        // Must start with `g`.
        match self.next() {
            Some(Token::Ident(g)) if g == "g" => {}
            other => {
                return Err(GremlinError::Parse(format!(
                    "traversal must start with 'g', found {other:?}"
                )))
            }
        }
        self.expect(&Token::Dot)?;
        let start = self.step_call()?;
        if start.name != "V" && start.name != "E" {
            return Err(GremlinError::Parse(format!(
                "traversal source must be g.V(...) or g.E(...), found g.{}",
                start.name
            )));
        }
        let mut steps = Vec::new();
        let mut terminal = None;
        while self.eat(&Token::Dot) {
            let call = self.step_call()?;
            match call.name.as_str() {
                "next" => {
                    terminal = Some(Terminal::Next);
                    break;
                }
                "toList" => {
                    terminal = Some(Terminal::ToList);
                    break;
                }
                "iterate" => {
                    terminal = Some(Terminal::Iterate);
                    break;
                }
                "explain" => {
                    terminal = Some(Terminal::Explain);
                    break;
                }
                "profile" => {
                    terminal = Some(Terminal::Profile);
                    break;
                }
                _ => steps.push(call),
            }
        }
        Ok(Statement { assign, traversal: SourceCall { start, steps }, terminal })
    }

    fn step_call(&mut self) -> GResult<StepCall> {
        if self.depth >= MAX_NESTING_DEPTH {
            return Err(GremlinError::Parse(format!(
                "query nesting exceeds the maximum depth of {MAX_NESTING_DEPTH}"
            )));
        }
        self.depth += 1;
        let out = self.step_call_inner();
        self.depth -= 1;
        out
    }

    fn step_call_inner(&mut self) -> GResult<StepCall> {
        let name = match self.next() {
            Some(Token::Ident(n)) => n,
            other => return Err(GremlinError::Parse(format!("expected step name, found {other:?}"))),
        };
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            args.push(self.arg()?);
            while self.eat(&Token::Comma) {
                args.push(self.arg()?);
            }
        }
        self.expect(&Token::RParen)?;
        Ok(StepCall { name, args })
    }

    fn arg(&mut self) -> GResult<Arg> {
        let base = self.arg_base()?;
        // Comparison sugar after an anonymous traversal.
        if let Arg::Anon(trav) = &base {
            let op = match self.peek() {
                Some(Token::EqEq) => Some(CompareOp::Eq),
                Some(Token::NotEq) => Some(CompareOp::Neq),
                Some(Token::Lt) => Some(CompareOp::Lt),
                Some(Token::LtEq) => Some(CompareOp::Lte),
                Some(Token::Gt) => Some(CompareOp::Gt),
                Some(Token::GtEq) => Some(CompareOp::Gte),
                _ => None,
            };
            if let Some(op) = op {
                self.next();
                let value = self.arg_base()?;
                return Ok(Arg::Compare {
                    traversal: trav.clone(),
                    op,
                    value: Box::new(value),
                });
            }
        }
        Ok(base)
    }

    fn arg_base(&mut self) -> GResult<Arg> {
        match self.peek().cloned() {
            Some(Token::Str(s)) => {
                self.next();
                Ok(Arg::Value(GValue::Str(s)))
            }
            Some(Token::Int(v)) => {
                self.next();
                Ok(Arg::Value(GValue::Long(v)))
            }
            Some(Token::Float(v)) => {
                self.next();
                Ok(Arg::Value(GValue::Double(v)))
            }
            Some(Token::Ident(name)) => {
                self.next();
                match name.as_str() {
                    "true" => return Ok(Arg::Value(GValue::Bool(true))),
                    "false" => return Ok(Arg::Value(GValue::Bool(false))),
                    "null" => return Ok(Arg::Value(GValue::Null)),
                    _ => {}
                }
                // `__` prefix for anonymous traversals: `__.out(...)`.
                if name == "__" {
                    self.expect(&Token::Dot)?;
                    let mut steps = vec![self.step_call()?];
                    while self.eat(&Token::Dot) {
                        steps.push(self.step_call()?);
                    }
                    return Ok(Arg::Anon(steps));
                }
                if self.peek() == Some(&Token::LParen) {
                    // Either a predicate or an anonymous traversal step.
                    self.pos -= 1; // rewind to re-parse as a call
                    let call = self.step_call()?;
                    if is_pred_name(&call.name) {
                        return Ok(Arg::Pred(PredArg { name: call.name, args: call.args }));
                    }
                    let mut steps = vec![call];
                    while self.eat(&Token::Dot) {
                        steps.push(self.step_call()?);
                    }
                    return Ok(Arg::Anon(steps));
                }
                // Bare identifier: a script variable (or order modulators
                // `asc`/`desc`, passed through as strings).
                if name == "asc" || name == "desc" || name == "incr" || name == "decr" {
                    return Ok(Arg::Value(GValue::Str(name)));
                }
                Ok(Arg::Var(name))
            }
            other => Err(GremlinError::Parse(format!("unexpected token in argument: {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_chain() {
        let s = parse("g.V().hasLabel('patient').has('name', 'Alice').outE()").unwrap();
        assert_eq!(s.statements.len(), 1);
        let st = &s.statements[0];
        assert_eq!(st.traversal.start.name, "V");
        let names: Vec<&str> = st.traversal.steps.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["hasLabel", "has", "outE"]);
        assert!(st.terminal.is_none());
        assert!(st.assign.is_none());
    }

    #[test]
    fn parse_ids_and_numbers() {
        let s = parse("g.V(1, 2, -3).has('score', 4.5)").unwrap();
        let st = &s.statements[0];
        assert_eq!(
            st.traversal.start.args,
            vec![
                Arg::Value(GValue::Long(1)),
                Arg::Value(GValue::Long(2)),
                Arg::Value(GValue::Long(-3))
            ]
        );
        assert_eq!(st.traversal.steps[0].args[1], Arg::Value(GValue::Double(4.5)));
    }

    #[test]
    fn parse_assignment_and_multi_statement() {
        let s = parse(
            "xs = g.V().hasLabel('d').store('x').cap('x').next(); g.V(xs).in('hasDisease').dedup()",
        )
        .unwrap();
        assert_eq!(s.statements.len(), 2);
        assert_eq!(s.statements[0].assign.as_deref(), Some("xs"));
        assert_eq!(s.statements[0].terminal, Some(Terminal::Next));
        assert_eq!(s.statements[1].traversal.start.args, vec![Arg::Var("xs".into())]);
    }

    #[test]
    fn parse_repeat_with_anonymous_traversal() {
        let s = parse("g.V(1).repeat(out('isa').dedup().store('x')).times(2).cap('x')").unwrap();
        let st = &s.statements[0];
        assert_eq!(st.traversal.steps[0].name, "repeat");
        match &st.traversal.steps[0].args[0] {
            Arg::Anon(steps) => {
                let names: Vec<&str> = steps.iter().map(|c| c.name.as_str()).collect();
                assert_eq!(names, vec!["out", "dedup", "store"]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(st.traversal.steps[1].name, "times");
    }

    #[test]
    fn parse_predicates() {
        let s = parse("g.V().has('age', gt(30)).has('tag', within('a', 'b'))").unwrap();
        let st = &s.statements[0];
        match &st.traversal.steps[0].args[1] {
            Arg::Pred(p) => {
                assert_eq!(p.name, "gt");
                assert_eq!(p.args, vec![Arg::Value(GValue::Long(30))]);
            }
            other => panic!("{other:?}"),
        }
        match &st.traversal.steps[1].args[1] {
            Arg::Pred(p) => assert_eq!(p.name, "within"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_comparison_filter() {
        // The LinkBench getLink query shape from Table 1.
        let s = parse("g.V(7).outE('follows').filter(outV().id() == 9)").unwrap();
        let st = &s.statements[0];
        match &st.traversal.steps[1].args[0] {
            Arg::Compare { traversal, op, value } => {
                assert_eq!(traversal.len(), 2);
                assert_eq!(*op, CompareOp::Eq);
                assert_eq!(**value, Arg::Value(GValue::Long(9)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_dunder_anonymous() {
        let s = parse("g.V().where(__.out('isa').hasLabel('disease'))").unwrap();
        match &s.statements[0].traversal.steps[0].args[0] {
            Arg::Anon(steps) => assert_eq!(steps[0].name, "out"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_escaped_strings() {
        let s = parse(r"g.V().has('name', 'O\'Brien')").unwrap();
        match &s.statements[0].traversal.steps[0].args[1] {
            Arg::Value(GValue::Str(v)) => assert_eq!(v, "O'Brien"),
            other => panic!("{other:?}"),
        }
        // Double-quoted strings also accepted.
        let s = parse(r#"g.V().has("name", "Alice")"#).unwrap();
        assert_eq!(s.statements.len(), 1);
    }

    #[test]
    fn parse_rejects_bad_sources() {
        assert!(parse("h.V()").is_err());
        assert!(parse("g.addV('x')").is_err());
        assert!(parse("").is_err());
        assert!(parse("g.V(").is_err());
        assert!(parse("g.V().has('unterminated").is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // f(f(f(…))) used to recurse once per level; past the guard it is
        // a structured parse error a server can turn into a 400.
        let deep = format!("g.V().where({}out(){}", "not(".repeat(10_000), ")".repeat(10_000));
        match parse(&deep) {
            Err(GremlinError::Parse(m)) => assert!(m.contains("nesting"), "{m}"),
            other => panic!("expected nesting error, got {other:?}"),
        }
        // Nesting below the limit still parses.
        let ok = format!("g.V().where({}out(){})", "not(".repeat(20), ")".repeat(20));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn parse_order_modulators() {
        let s = parse("g.V().order().by('name', desc).limit(5)").unwrap();
        let st = &s.statements[0];
        assert_eq!(st.traversal.steps[1].name, "by");
        assert_eq!(st.traversal.steps[1].args[1], Arg::Value(GValue::Str("desc".into())));
    }
}
