//! The traversal interpreter.
//!
//! Executes a compiled [`Traversal`] against a [`GraphBackend`]. Traversers
//! flow step to step in batches so that each GSA step makes *one* backend
//! call for the whole frontier — which, for the SQL overlay backend, is what
//! turns a traversal hop into a single `... WHERE src_v IN (...)` query
//! instead of a query per vertex.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::backend::{
    element_property, AggOp, BackendOutput, ElementKind, GraphBackend, Pred,
};
use crate::error::{GremlinError, GResult};
use crate::observe::TraversalObserver;
use crate::step::{CompareOp, FilterSpec, OrderKey, Step, Traversal};
use crate::structure::{Element, ElementId, GValue};

/// Side-effect collections (`store`, `aggregate`, `cap`).
#[derive(Debug, Clone, Default)]
pub struct SideEffects {
    map: HashMap<String, Vec<GValue>>,
}

impl SideEffects {
    pub fn push(&mut self, key: &str, value: GValue) {
        self.map.entry(key.to_string()).or_default().push(value);
    }

    pub fn get(&self, key: &str) -> &[GValue] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// One unit of traversal state.
#[derive(Debug, Clone)]
pub struct Traverser {
    pub value: GValue,
    /// Visited objects, populated only when the traversal needs paths.
    pub path: Vec<GValue>,
    /// `as(...)` labels.
    pub labels: HashMap<String, GValue>,
    /// Id of the vertex this traverser's current edge was reached from
    /// (needed by `otherV()`).
    pub prev_vertex: Option<ElementId>,
}

impl Traverser {
    fn new(value: GValue, track_paths: bool) -> Traverser {
        let path = if track_paths { vec![value.clone()] } else { Vec::new() };
        Traverser { value, path, labels: HashMap::new(), prev_vertex: None }
    }

    fn advance(&self, value: GValue, track_paths: bool) -> Traverser {
        let mut t = self.clone();
        if track_paths {
            t.path.push(value.clone());
        }
        t.value = value;
        t
    }
}

/// Execution limits and switches.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Track paths even when no step requires them.
    pub always_track_paths: bool,
    /// Hard cap on repeat() iterations to guard against unbounded loops.
    pub max_repeat_iterations: u32,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { always_track_paths: false, max_repeat_iterations: 64 }
    }
}

/// Interpreter over a graph backend.
pub struct Executor<'a> {
    backend: &'a dyn GraphBackend,
    opts: ExecOptions,
    observer: Option<&'a dyn TraversalObserver>,
}

struct Ctx {
    side_effects: SideEffects,
    track_paths: bool,
}

impl<'a> Executor<'a> {
    pub fn new(backend: &'a dyn GraphBackend) -> Executor<'a> {
        Executor { backend, opts: ExecOptions::default(), observer: None }
    }

    pub fn with_options(backend: &'a dyn GraphBackend, opts: ExecOptions) -> Executor<'a> {
        Executor { backend, opts, observer: None }
    }

    /// Attach an observer receiving per-step timing events for top-level
    /// steps. Without one, execution takes no timestamps at all.
    pub fn with_observer(mut self, observer: &'a dyn TraversalObserver) -> Executor<'a> {
        self.observer = Some(observer);
        self
    }

    /// Run a traversal from the graph source; returns final values and the
    /// side-effect store.
    pub fn run(&self, traversal: &Traversal) -> GResult<(Vec<GValue>, SideEffects)> {
        let mut ctx = Ctx {
            side_effects: SideEffects::default(),
            track_paths: self.opts.always_track_paths || traversal.needs_paths(),
        };
        let out = match self.observer {
            None => self.run_steps(&traversal.steps, Vec::new(), &mut ctx)?,
            Some(obs) => {
                // Observed variant: time each top-level step. Nested
                // traversals (repeat bodies, union branches) stay inside
                // their enclosing step's measurement.
                let mut current = Vec::new();
                for (i, step) in traversal.steps.iter().enumerate() {
                    let in_count = current.len();
                    let desc = step.describe();
                    obs.step_started(i, &desc);
                    let start = std::time::Instant::now();
                    current = self.run_step(step, current, &mut ctx)?;
                    obs.step_finished(
                        i,
                        &desc,
                        in_count,
                        current.len(),
                        start.elapsed().as_nanos() as u64,
                    );
                }
                current
            }
        };
        Ok((out.into_iter().map(|t| t.value).collect(), ctx.side_effects))
    }

    fn run_steps(
        &self,
        steps: &[Step],
        mut current: Vec<Traverser>,
        ctx: &mut Ctx,
    ) -> GResult<Vec<Traverser>> {
        for step in steps {
            current = self.run_step(step, current, ctx)?;
        }
        Ok(current)
    }

    fn run_step(&self, step: &Step, current: Vec<Traverser>, ctx: &mut Ctx) -> GResult<Vec<Traverser>> {
        match step {
            Step::Graph(g) => {
                let output = self.backend.graph_elements(g.kind, &g.filter)?;
                let values: Vec<GValue> = match output {
                    BackendOutput::Elements(es) => {
                        es.into_iter().map(GValue::from_element).collect()
                    }
                    BackendOutput::Values(vs) => vs,
                    BackendOutput::Aggregate(v) => vec![v],
                };
                if current.is_empty() {
                    Ok(values
                        .into_iter()
                        .map(|v| Traverser::new(v, ctx.track_paths))
                        .collect())
                } else {
                    // Mid-traversal V(ids): flat-map per incoming traverser.
                    let mut out = Vec::with_capacity(current.len() * values.len());
                    for t in &current {
                        for v in &values {
                            out.push(t.advance(v.clone(), ctx.track_paths));
                        }
                    }
                    Ok(out)
                }
            }
            Step::Vertex(v) => {
                let sources: Vec<Element> = current
                    .iter()
                    .map(|t| {
                        t.value.as_element().ok_or_else(|| {
                            GremlinError::Execution(format!(
                                "vertex step applied to non-element {}",
                                t.value
                            ))
                        })
                    })
                    .collect::<GResult<_>>()?;
                let groups =
                    self.backend.adjacent(&sources, v.direction, &v.edge_labels, v.to, &v.filter)?;
                if groups.len() != sources.len() {
                    return Err(GremlinError::Backend(format!(
                        "backend returned {} adjacency groups for {} sources",
                        groups.len(),
                        sources.len()
                    )));
                }
                let mut out = Vec::new();
                for ((t, src), group) in current.iter().zip(&sources).zip(groups) {
                    for e in group {
                        let mut nt = t.advance(GValue::from_element(e), ctx.track_paths);
                        if v.to == ElementKind::Edges {
                            nt.prev_vertex = Some(src.id().clone());
                        }
                        out.push(nt);
                    }
                }
                Ok(out)
            }
            Step::EdgeVertex(ev) => {
                let mut edges = Vec::with_capacity(current.len());
                let mut came_from = Vec::with_capacity(current.len());
                for t in &current {
                    match &t.value {
                        GValue::Edge(e) => {
                            edges.push(e.clone());
                            came_from.push(t.prev_vertex.clone());
                        }
                        other => {
                            return Err(GremlinError::Execution(format!(
                                "edge-vertex step applied to non-edge {other}"
                            )))
                        }
                    }
                }
                let groups = self.backend.edge_endpoints(&edges, ev.end, &came_from, &ev.filter)?;
                if groups.len() != edges.len() {
                    return Err(GremlinError::Backend(
                        "backend returned wrong number of endpoint groups".into(),
                    ));
                }
                let mut out = Vec::new();
                for (t, group) in current.iter().zip(groups) {
                    for e in group {
                        out.push(t.advance(GValue::from_element(e), ctx.track_paths));
                    }
                }
                Ok(out)
            }
            Step::Has(preds) => Ok(current
                .into_iter()
                .filter(|t| match t.value.as_element() {
                    Some(e) => preds.iter().all(|p| {
                        let v = element_property(&e, &p.key);
                        p.pred.test(v.as_ref())
                    }),
                    None => false,
                })
                .collect()),
            Step::Values(keys) => {
                let mut out = Vec::new();
                for t in &current {
                    let Some(e) = t.value.as_element() else { continue };
                    if keys.is_empty() {
                        for v in e.properties().values() {
                            if !matches!(v, GValue::Null) {
                                out.push(t.advance(v.clone(), ctx.track_paths));
                            }
                        }
                    } else {
                        for k in keys {
                            if let Some(v) = e.properties().get(k) {
                                if !matches!(v, GValue::Null) {
                                    out.push(t.advance(v.clone(), ctx.track_paths));
                                }
                            }
                        }
                    }
                }
                Ok(out)
            }
            Step::ValueMap(keys) => Ok(current
                .into_iter()
                .filter_map(|t| {
                    let e = t.value.as_element()?;
                    let mut m = BTreeMap::new();
                    let props = e.properties();
                    if keys.is_empty() {
                        for (k, v) in props {
                            m.insert(k.clone(), v.clone());
                        }
                    } else {
                        for k in keys {
                            if let Some(v) = props.get(k) {
                                m.insert(k.clone(), v.clone());
                            }
                        }
                    }
                    Some(t.advance(GValue::Map(m), ctx.track_paths))
                })
                .collect()),
            Step::Properties(keys) => {
                let mut out = Vec::new();
                for t in &current {
                    let Some(e) = t.value.as_element() else { continue };
                    for (k, v) in e.properties() {
                        if keys.is_empty() || keys.iter().any(|x| x == k) {
                            let mut m = BTreeMap::new();
                            m.insert("key".to_string(), GValue::Str(k.clone()));
                            m.insert("value".to_string(), v.clone());
                            out.push(t.advance(GValue::Map(m), ctx.track_paths));
                        }
                    }
                }
                Ok(out)
            }
            Step::Id => Ok(current
                .into_iter()
                .filter_map(|t| {
                    let e = t.value.as_element()?;
                    Some(t.advance(crate::structure::id_value(e.id()), ctx.track_paths))
                })
                .collect()),
            Step::Label => Ok(current
                .into_iter()
                .filter_map(|t| {
                    let e = t.value.as_element()?;
                    Some(t.advance(GValue::Str(e.label().to_string()), ctx.track_paths))
                })
                .collect()),
            Step::Aggregate(op) => {
                let v = compute_aggregate(*op, &current)?;
                Ok(match v {
                    Some(v) => vec![Traverser::new(v, ctx.track_paths)],
                    None => Vec::new(),
                })
            }
            Step::Dedup => {
                let mut seen: HashSet<GValue> = HashSet::with_capacity(current.len());
                Ok(current
                    .into_iter()
                    .filter(|t| seen.insert(t.value.dedup_key()))
                    .collect())
            }
            Step::Limit(n) => {
                let mut c = current;
                c.truncate(*n as usize);
                Ok(c)
            }
            Step::Range(lo, hi) => {
                let lo = *lo as usize;
                let hi = (*hi as usize).min(current.len());
                if lo >= current.len() {
                    return Ok(Vec::new());
                }
                Ok(current[lo..hi].to_vec())
            }
            Step::Order(keys) => {
                let mut c = current;
                c.sort_by(|a, b| {
                    for (key, desc) in keys {
                        let ka = order_value(key, &a.value);
                        let kb = order_value(key, &b.value);
                        let ord = ka.total_cmp(&kb);
                        let ord = if *desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(c)
            }
            Step::Repeat { body, times, until, emit } => {
                self.run_repeat(body, *times, until.as_ref(), *emit, current, ctx)
            }
            Step::Store(key) | Step::AggregateSE(key) => {
                for t in &current {
                    ctx.side_effects.push(key, t.value.clone());
                }
                Ok(current)
            }
            Step::Cap(key) => {
                let list = GValue::List(ctx.side_effects.get(key).to_vec());
                Ok(vec![Traverser::new(list, ctx.track_paths)])
            }
            Step::Filter(spec) | Step::Where(spec) => {
                let mut out = Vec::new();
                for t in current {
                    if self.filter_passes(spec, &t, ctx)? {
                        out.push(t);
                    }
                }
                Ok(out)
            }
            Step::Not(inner) => {
                let mut out = Vec::new();
                for t in current {
                    let results = self.run_sub(inner, &t, ctx)?;
                    if results.is_empty() {
                        out.push(t);
                    }
                }
                Ok(out)
            }
            Step::Is(pred) => Ok(current
                .into_iter()
                .filter(|t| pred.test(Some(&t.value)))
                .collect()),
            Step::Union(branches) => {
                let mut out = Vec::new();
                for t in &current {
                    for b in branches {
                        out.extend(self.run_sub_traversers(b, t, ctx)?);
                    }
                }
                Ok(out)
            }
            Step::Coalesce(branches) => {
                let mut out = Vec::new();
                for t in &current {
                    for b in branches {
                        let results = self.run_sub_traversers(b, t, ctx)?;
                        if !results.is_empty() {
                            out.extend(results);
                            break;
                        }
                    }
                }
                Ok(out)
            }
            Step::Path => Ok(current
                .into_iter()
                .map(|t| {
                    let p = GValue::Path(t.path.clone());
                    t.advance(p, false)
                })
                .collect()),
            Step::SimplePath => Ok(current
                .into_iter()
                .filter(|t| {
                    let mut seen = HashSet::with_capacity(t.path.len());
                    t.path.iter().all(|v| seen.insert(v.dedup_key()))
                })
                .collect()),
            Step::As(label) => Ok(current
                .into_iter()
                .map(|mut t| {
                    t.labels.insert(label.clone(), t.value.clone());
                    t
                })
                .collect()),
            Step::Select(keys) => {
                let mut out = Vec::new();
                for t in current {
                    let v = if keys.len() == 1 {
                        t.labels.get(&keys[0]).cloned()
                    } else {
                        let mut m = BTreeMap::new();
                        for k in keys {
                            if let Some(v) = t.labels.get(k) {
                                m.insert(k.clone(), v.clone());
                            }
                        }
                        if m.len() == keys.len() {
                            Some(GValue::Map(m))
                        } else {
                            None
                        }
                    };
                    if let Some(v) = v {
                        out.push(t.advance(v, ctx.track_paths));
                    }
                }
                Ok(out)
            }
            Step::Constant(v) => Ok(current
                .into_iter()
                .map(|t| t.advance(v.clone(), ctx.track_paths))
                .collect()),
            Step::Group(key) | Step::GroupCount(key) => {
                let counting = matches!(step, Step::GroupCount(_));
                let mut m: BTreeMap<String, Vec<GValue>> = BTreeMap::new();
                for t in &current {
                    let k = match key {
                        None => t.value.to_string(),
                        Some(k) => match t.value.as_element() {
                            Some(e) => match element_property(&e, k) {
                                Some(v) => v.to_string(),
                                None => continue, // no key -> not grouped
                            },
                            None => continue,
                        },
                    };
                    m.entry(k).or_default().push(t.value.clone());
                }
                let out: BTreeMap<String, GValue> = m
                    .into_iter()
                    .map(|(k, vs)| {
                        let v = if counting {
                            GValue::Long(vs.len() as i64)
                        } else {
                            GValue::List(vs)
                        };
                        (k, v)
                    })
                    .collect();
                Ok(vec![Traverser::new(GValue::Map(out), ctx.track_paths)])
            }
            Step::Fold => {
                let list = GValue::List(current.iter().map(|t| t.value.clone()).collect());
                Ok(vec![Traverser::new(list, ctx.track_paths)])
            }
            Step::Unfold => {
                let mut out = Vec::new();
                for t in current {
                    match &t.value {
                        GValue::List(items) => {
                            for v in items {
                                out.push(t.advance(v.clone(), ctx.track_paths));
                            }
                        }
                        _ => out.push(t),
                    }
                }
                Ok(out)
            }
            Step::Identity => Ok(current),
        }
    }

    fn run_repeat(
        &self,
        body: &Traversal,
        times: Option<u32>,
        until: Option<&Traversal>,
        emit: bool,
        incoming: Vec<Traverser>,
        ctx: &mut Ctx,
    ) -> GResult<Vec<Traverser>> {
        if times.is_none() && until.is_none() {
            return Err(GremlinError::Unsupported(
                "repeat() requires times() or until()".into(),
            ));
        }
        let mut current = incoming;
        let mut emitted: Vec<Traverser> = Vec::new();
        let mut done: Vec<Traverser> = Vec::new();
        let mut loops = 0u32;
        loop {
            if current.is_empty() {
                break;
            }
            if let Some(t) = times {
                if loops >= t {
                    break;
                }
            }
            if loops >= self.opts.max_repeat_iterations {
                return Err(GremlinError::Execution(format!(
                    "repeat() exceeded {} iterations",
                    self.opts.max_repeat_iterations
                )));
            }
            current = self.run_steps(&body.steps, current, ctx)?;
            loops += 1;
            if emit {
                emitted.extend(current.iter().cloned());
            }
            if let Some(u) = until {
                // Per-traverser do-while: traversers satisfying the
                // until-condition exit the loop.
                let mut staying = Vec::with_capacity(current.len());
                for t in current {
                    if !self.run_sub(u, &t, ctx)?.is_empty() {
                        done.push(t);
                    } else {
                        staying.push(t);
                    }
                }
                current = staying;
            }
        }
        done.extend(current);
        if emit {
            Ok(emitted)
        } else {
            Ok(done)
        }
    }

    /// Run a sub-traversal from one traverser; returns result values.
    fn run_sub(&self, t: &Traversal, from: &Traverser, ctx: &mut Ctx) -> GResult<Vec<GValue>> {
        Ok(self
            .run_sub_traversers(t, from, ctx)?
            .into_iter()
            .map(|t| t.value)
            .collect())
    }

    fn run_sub_traversers(
        &self,
        t: &Traversal,
        from: &Traverser,
        ctx: &mut Ctx,
    ) -> GResult<Vec<Traverser>> {
        self.run_steps(&t.steps, vec![from.clone()], ctx)
    }

    fn filter_passes(&self, spec: &FilterSpec, t: &Traverser, ctx: &mut Ctx) -> GResult<bool> {
        let results = self.run_sub(&spec.traversal, t, ctx)?;
        match &spec.compare {
            None => Ok(!results.is_empty()),
            Some((op, value)) => Ok(results.iter().any(|r| {
                let Some(ord) = r.compare(value) else { return false };
                match op {
                    CompareOp::Eq => ord.is_eq(),
                    CompareOp::Neq => ord.is_ne(),
                    CompareOp::Gt => ord.is_gt(),
                    CompareOp::Gte => ord.is_ge(),
                    CompareOp::Lt => ord.is_lt(),
                    CompareOp::Lte => ord.is_le(),
                }
            })),
        }
    }
}

fn order_value(key: &OrderKey, value: &GValue) -> GValue {
    match key {
        OrderKey::Value => value.clone(),
        OrderKey::Property(k) => match value.as_element() {
            Some(e) => element_property(&e, k).unwrap_or(GValue::Null),
            None => GValue::Null,
        },
    }
}

fn compute_aggregate(op: AggOp, current: &[Traverser]) -> GResult<Option<GValue>> {
    if op == AggOp::Count {
        return Ok(Some(GValue::Long(current.len() as i64)));
    }
    // Integer inputs stay in integer arithmetic: sums of longs beyond 2^53
    // (and min/max of such values) are exact, where a round-trip through
    // f64 would silently lose low-order bits.
    let mut nums: Vec<f64> = Vec::with_capacity(current.len());
    let mut longs: Vec<i64> = Vec::with_capacity(current.len());
    let mut all_long = true;
    for t in current {
        match &t.value {
            GValue::Long(v) => {
                longs.push(*v);
                nums.push(*v as f64);
            }
            GValue::Double(v) => {
                all_long = false;
                nums.push(*v);
            }
            other => {
                return Err(GremlinError::Execution(format!(
                    "numeric aggregate over non-numeric value {other}"
                )))
            }
        }
    }
    if nums.is_empty() {
        return Ok(None);
    }
    let exact_sum = || -> i64 {
        let s: i128 = longs.iter().map(|&v| v as i128).sum();
        s.clamp(i64::MIN as i128, i64::MAX as i128) as i64
    };
    let v = match op {
        AggOp::Sum => {
            if all_long {
                GValue::Long(exact_sum())
            } else {
                GValue::Double(nums.iter().sum())
            }
        }
        AggOp::Mean => {
            if all_long {
                GValue::Double(exact_sum() as f64 / longs.len() as f64)
            } else {
                GValue::Double(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggOp::Min => {
            if all_long {
                GValue::Long(longs.iter().copied().min().expect("non-empty"))
            } else {
                GValue::Double(nums.iter().cloned().fold(f64::INFINITY, f64::min))
            }
        }
        AggOp::Max => {
            if all_long {
                GValue::Long(longs.iter().copied().max().expect("non-empty"))
            } else {
                GValue::Double(nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
            }
        }
        AggOp::Count => unreachable!(),
    };
    Ok(Some(v))
}

/// Check a predicate against a value (re-exported for backend testing).
pub fn pred_holds(p: &Pred, v: &GValue) -> bool {
    p.test(Some(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traversers(values: Vec<GValue>) -> Vec<Traverser> {
        values
            .into_iter()
            .map(|value| Traverser {
                value,
                path: Vec::new(),
                labels: HashMap::new(),
                prev_vertex: None,
            })
            .collect()
    }

    #[test]
    fn long_aggregates_are_exact_beyond_f64_precision() {
        // 2^53 + 1 is not representable as f64; a float round-trip would
        // collapse it to 2^53.
        let big = (1i64 << 53) + 1;
        let ts = traversers(vec![GValue::Long(big), GValue::Long(0)]);
        assert_eq!(compute_aggregate(AggOp::Sum, &ts).unwrap(), Some(GValue::Long(big)));
        assert_eq!(compute_aggregate(AggOp::Max, &ts).unwrap(), Some(GValue::Long(big)));
        let ts = traversers(vec![GValue::Long(big), GValue::Long(big + 1)]);
        assert_eq!(compute_aggregate(AggOp::Min, &ts).unwrap(), Some(GValue::Long(big)));
        assert_eq!(
            compute_aggregate(AggOp::Sum, &ts).unwrap(),
            Some(GValue::Long(2 * big + 1))
        );
    }

    #[test]
    fn long_sum_saturates_instead_of_wrapping() {
        let ts = traversers(vec![GValue::Long(i64::MAX), GValue::Long(i64::MAX)]);
        assert_eq!(
            compute_aggregate(AggOp::Sum, &ts).unwrap(),
            Some(GValue::Long(i64::MAX))
        );
    }

    #[test]
    fn mixed_numeric_aggregates_stay_double() {
        let ts = traversers(vec![GValue::Long(1), GValue::Double(2.5)]);
        assert_eq!(
            compute_aggregate(AggOp::Sum, &ts).unwrap(),
            Some(GValue::Double(3.5))
        );
        assert_eq!(
            compute_aggregate(AggOp::Mean, &ts).unwrap(),
            Some(GValue::Double(1.75))
        );
    }
}
