//! A simple in-memory reference implementation of [`GraphBackend`].
//!
//! This backend stores vertices and edges in hash maps and answers every
//! call by filtering — no indexes, no pushdown cleverness. It serves two
//! purposes: unit-testing the traversal engine in isolation, and acting as
//! a correctness *oracle* in integration tests (the overlay backend and the
//! baseline stores must return the same answers it does).

use std::collections::{BTreeMap, HashMap};

use parking_lot_shim::RwLockShim;

use crate::backend::{
    AggOp, BackendOutput, Direction, EdgeEnd, ElementFilter, ElementKind, GraphBackend,
};
use crate::error::{GremlinError, GResult};
use crate::structure::{Edge, Element, ElementId, GValue, Vertex};

/// Minimal internal RwLock wrapper so this crate stays dependency-free.
mod parking_lot_shim {
    pub use std::sync::RwLock as RwLockShim;
}

/// An in-memory property graph.
#[derive(Debug, Default)]
pub struct MemGraph {
    inner: RwLockShim<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    vertices: BTreeMap<ElementId, Vertex>,
    edges: BTreeMap<ElementId, Edge>,
    out_adj: HashMap<ElementId, Vec<ElementId>>,
    in_adj: HashMap<ElementId, Vec<ElementId>>,
}

impl MemGraph {
    pub fn new() -> MemGraph {
        MemGraph::default()
    }

    pub fn add_vertex(&self, v: Vertex) {
        self.inner.write().unwrap().vertices.insert(v.id.clone(), v);
    }

    pub fn add_edge(&self, e: Edge) {
        let mut inner = self.inner.write().unwrap();
        inner.out_adj.entry(e.src.clone()).or_default().push(e.id.clone());
        inner.in_adj.entry(e.dst.clone()).or_default().push(e.id.clone());
        inner.edges.insert(e.id.clone(), e);
    }

    pub fn vertex_count(&self) -> usize {
        self.inner.read().unwrap().vertices.len()
    }

    pub fn edge_count(&self) -> usize {
        self.inner.read().unwrap().edges.len()
    }
}

fn apply_output(elements: Vec<Element>, filter: &ElementFilter) -> GResult<BackendOutput> {
    if let Some(op) = filter.aggregate {
        // Aggregate pushdown: for projections, aggregate over the projected
        // property values; otherwise count elements.
        return match op {
            AggOp::Count => Ok(BackendOutput::Aggregate(GValue::Long(elements.len() as i64))),
            _ => {
                let keys = filter.projection.clone().unwrap_or_default();
                let mut nums = Vec::new();
                for e in &elements {
                    for k in &keys {
                        if let Some(v) = e.properties().get(k) {
                            if let Some(f) = v.as_f64() {
                                nums.push(f);
                            }
                        }
                    }
                }
                if nums.is_empty() {
                    return Ok(BackendOutput::Elements(Vec::new()));
                }
                let v = match op {
                    AggOp::Sum => GValue::Double(nums.iter().sum()),
                    AggOp::Mean => GValue::Double(nums.iter().sum::<f64>() / nums.len() as f64),
                    AggOp::Min => GValue::Double(nums.iter().cloned().fold(f64::INFINITY, f64::min)),
                    AggOp::Max => {
                        GValue::Double(nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
                    }
                    AggOp::Count => unreachable!(),
                };
                Ok(BackendOutput::Aggregate(v))
            }
        };
    }
    if let Some(keys) = &filter.projection {
        let mut out = Vec::new();
        for e in &elements {
            for k in keys {
                if let Some(v) = e.properties().get(k) {
                    if !matches!(v, GValue::Null) {
                        out.push(v.clone());
                    }
                }
            }
        }
        return Ok(BackendOutput::Values(out));
    }
    Ok(BackendOutput::Elements(elements))
}

impl GraphBackend for MemGraph {
    fn graph_elements(&self, kind: ElementKind, filter: &ElementFilter) -> GResult<BackendOutput> {
        let inner = self.inner.read().unwrap();
        let elements: Vec<Element> = match kind {
            ElementKind::Vertices => inner
                .vertices
                .values()
                .map(|v| Element::Vertex(v.clone()))
                .filter(|e| filter.matches(e))
                .collect(),
            ElementKind::Edges => inner
                .edges
                .values()
                .map(|e| Element::Edge(e.clone()))
                .filter(|e| filter.matches(e))
                .collect(),
        };
        apply_output(elements, filter)
    }

    fn adjacent(
        &self,
        sources: &[Element],
        direction: Direction,
        edge_labels: &[String],
        to: ElementKind,
        filter: &ElementFilter,
    ) -> GResult<Vec<Vec<Element>>> {
        let inner = self.inner.read().unwrap();
        let mut out = Vec::with_capacity(sources.len());
        for src in sources {
            let vid = match src {
                Element::Vertex(v) => &v.id,
                Element::Edge(_) => {
                    return Err(GremlinError::Execution(
                        "adjacency from an edge element".into(),
                    ))
                }
            };
            let mut group: Vec<Element> = Vec::new();
            let mut push_edges = |edge_ids: Option<&Vec<ElementId>>, outgoing: bool| {
                for eid in edge_ids.into_iter().flatten() {
                    let Some(edge) = inner.edges.get(eid) else { continue };
                    if !edge_labels.is_empty() && !edge_labels.contains(&edge.label) {
                        continue;
                    }
                    match to {
                        ElementKind::Edges => {
                            let el = Element::Edge(edge.clone());
                            if filter.matches(&el) {
                                group.push(el);
                            }
                        }
                        ElementKind::Vertices => {
                            let nid = if outgoing { &edge.dst } else { &edge.src };
                            if let Some(v) = inner.vertices.get(nid) {
                                let el = Element::Vertex(v.clone());
                                if filter.matches(&el) {
                                    group.push(el);
                                }
                            }
                        }
                    }
                }
            };
            match direction {
                Direction::Out => push_edges(inner.out_adj.get(vid), true),
                Direction::In => push_edges(inner.in_adj.get(vid), false),
                Direction::Both => {
                    push_edges(inner.out_adj.get(vid), true);
                    push_edges(inner.in_adj.get(vid), false);
                }
            }
            out.push(group);
        }
        Ok(out)
    }

    fn edge_endpoints(
        &self,
        edges: &[Edge],
        end: EdgeEnd,
        came_from: &[Option<ElementId>],
        filter: &ElementFilter,
    ) -> GResult<Vec<Vec<Element>>> {
        let inner = self.inner.read().unwrap();
        let mut out = Vec::with_capacity(edges.len());
        for (i, edge) in edges.iter().enumerate() {
            let mut ids: Vec<&ElementId> = Vec::new();
            match end {
                EdgeEnd::Out => ids.push(&edge.src),
                EdgeEnd::In => ids.push(&edge.dst),
                EdgeEnd::Both => {
                    ids.push(&edge.src);
                    ids.push(&edge.dst);
                }
                EdgeEnd::Other => {
                    let from = came_from.get(i).and_then(|o| o.as_ref());
                    match from {
                        Some(f) if *f == edge.src => ids.push(&edge.dst),
                        Some(f) if *f == edge.dst => ids.push(&edge.src),
                        // Unknown origin: fall back to the destination.
                        _ => ids.push(&edge.dst),
                    }
                }
            }
            let mut group = Vec::new();
            for id in ids {
                if let Some(v) = inner.vertices.get(id) {
                    let el = Element::Vertex(v.clone());
                    if filter.matches(&el) {
                        group.push(el);
                    }
                }
            }
            out.push(group);
        }
        Ok(out)
    }

    fn backend_name(&self) -> &str {
        "memgraph"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 2 healthcare graph, abridged.
    pub fn sample() -> MemGraph {
        let g = MemGraph::new();
        g.add_vertex(
            Vertex::new("patient::1", "patient")
                .with_property("patientID", 1i64)
                .with_property("name", "Alice"),
        );
        g.add_vertex(
            Vertex::new("patient::2", "patient")
                .with_property("patientID", 2i64)
                .with_property("name", "Bob"),
        );
        g.add_vertex(
            Vertex::new(10i64, "disease").with_property("conceptName", "type 2 diabetes"),
        );
        g.add_vertex(Vertex::new(11i64, "disease").with_property("conceptName", "diabetes"));
        g.add_edge(Edge::new("hd1", "hasDisease", "patient::1", 10i64));
        g.add_edge(Edge::new("hd2", "hasDisease", "patient::2", 11i64));
        g.add_edge(Edge::new("isa1", "isa", 10i64, 11i64));
        g
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn graph_elements_with_filters() {
        let g = sample();
        let mut f = ElementFilter { labels: Some(vec!["patient".into()]), ..Default::default() };
        match g.graph_elements(ElementKind::Vertices, &f).unwrap() {
            BackendOutput::Elements(es) => assert_eq!(es.len(), 2),
            other => panic!("{other:?}"),
        }
        f.aggregate = Some(AggOp::Count);
        match g.graph_elements(ElementKind::Vertices, &f).unwrap() {
            BackendOutput::Aggregate(GValue::Long(2)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn adjacency_directions() {
        let g = sample();
        let alice = match g
            .graph_elements(
                ElementKind::Vertices,
                &ElementFilter::with_ids(vec![ElementId::Str("patient::1".into())]),
            )
            .unwrap()
        {
            BackendOutput::Elements(mut es) => es.remove(0),
            other => panic!("{other:?}"),
        };
        let out = g
            .adjacent(
                std::slice::from_ref(&alice),
                Direction::Out,
                &["hasDisease".into()],
                ElementKind::Vertices,
                &ElementFilter::default(),
            )
            .unwrap();
        assert_eq!(out[0].len(), 1);
        assert_eq!(out[0][0].label(), "disease");
        // both() from the disease vertex sees isa (out) and hasDisease (in).
        let d10 = match g
            .graph_elements(
                ElementKind::Vertices,
                &ElementFilter::with_ids(vec![ElementId::Long(10)]),
            )
            .unwrap()
        {
            BackendOutput::Elements(mut es) => es.remove(0),
            other => panic!("{other:?}"),
        };
        let both = g
            .adjacent(
                std::slice::from_ref(&d10),
                Direction::Both,
                &[],
                ElementKind::Edges,
                &ElementFilter::default(),
            )
            .unwrap();
        assert_eq!(both[0].len(), 2);
    }

    #[test]
    fn endpoints_including_other_v() {
        let g = sample();
        let inner_edge = {
            match g
                .graph_elements(
                    ElementKind::Edges,
                    &ElementFilter::with_ids(vec![ElementId::Str("isa1".into())]),
                )
                .unwrap()
            {
                BackendOutput::Elements(mut es) => match es.remove(0) {
                    Element::Edge(e) => e,
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            }
        };
        let ends = g
            .edge_endpoints(
                std::slice::from_ref(&inner_edge),
                EdgeEnd::Other,
                &[Some(ElementId::Long(11))],
                &ElementFilter::default(),
            )
            .unwrap();
        assert_eq!(ends[0][0].id(), &ElementId::Long(10));
        let ends = g
            .edge_endpoints(
                std::slice::from_ref(&inner_edge),
                EdgeEnd::Both,
                &[None],
                &ElementFilter::default(),
            )
            .unwrap();
        assert_eq!(ends[0].len(), 2);
    }
}
