//! Compilation from the parsed AST into a logical [`Traversal`] step plan.
//!
//! Script variables are resolved at compile time against the values bound by
//! previously executed statements, so `g.V(similar_diseases)` compiles into
//! a GraphStep whose id filter is the variable's list value.

use std::collections::HashMap;

use crate::ast::*;
use crate::backend::{AggOp, Direction, EdgeEnd, ElementFilter, ElementKind, Pred, PropPred};
use crate::error::{GremlinError, GResult};
use crate::step::*;
use crate::structure::{value_to_id, ElementId, GValue};

/// Variable bindings produced by earlier statements in a script.
pub type VarEnv = HashMap<String, GValue>;

/// Compile one statement's traversal into a step plan.
pub fn compile(source: &SourceCall, env: &VarEnv) -> GResult<Traversal> {
    let kind = match source.start.name.as_str() {
        "V" => ElementKind::Vertices,
        "E" => ElementKind::Edges,
        other => return Err(GremlinError::Unsupported(format!("source step '{other}'"))),
    };
    let ids = args_to_ids(&source.start.args, env)?;
    let filter = if ids.is_empty() {
        ElementFilter::default()
    } else {
        ElementFilter::with_ids(ids)
    };
    let mut steps = vec![Step::Graph(GraphStep { kind, filter })];
    compile_calls(&source.steps, env, &mut steps)?;
    Ok(Traversal::new(steps))
}

/// Compile an anonymous traversal (used inside repeat/filter/union/...).
pub fn compile_anon(calls: &[StepCall], env: &VarEnv) -> GResult<Traversal> {
    let mut steps = Vec::new();
    compile_calls(calls, env, &mut steps)?;
    Ok(Traversal::new(steps))
}

fn args_to_ids(args: &[Arg], env: &VarEnv) -> GResult<Vec<ElementId>> {
    let mut ids = Vec::new();
    for a in args {
        let v = resolve_value(a, env)?;
        match v {
            GValue::List(items) => {
                for item in items {
                    ids.push(value_to_id(&item).ok_or_else(|| {
                        GremlinError::Execution(format!("value {item} is not a valid element id"))
                    })?);
                }
            }
            other => ids.push(value_to_id(&other).ok_or_else(|| {
                GremlinError::Execution(format!("value {other} is not a valid element id"))
            })?),
        }
    }
    Ok(ids)
}

fn resolve_value(arg: &Arg, env: &VarEnv) -> GResult<GValue> {
    match arg {
        Arg::Value(v) => Ok(v.clone()),
        Arg::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| GremlinError::Execution(format!("unbound variable '{name}'"))),
        other => Err(GremlinError::Unsupported(format!("expected a value argument, got {other:?}"))),
    }
}

fn string_arg(call: &StepCall, idx: usize, env: &VarEnv) -> GResult<String> {
    match resolve_value(&call.args[idx], env)? {
        GValue::Str(s) => Ok(s),
        other => Err(GremlinError::Unsupported(format!(
            "step '{}' expects a string argument, got {other}",
            call.name
        ))),
    }
}

fn string_args(call: &StepCall, env: &VarEnv) -> GResult<Vec<String>> {
    (0..call.args.len()).map(|i| string_arg(call, i, env)).collect()
}

fn int_arg(call: &StepCall, idx: usize, env: &VarEnv) -> GResult<i64> {
    match resolve_value(&call.args[idx], env)? {
        GValue::Long(v) => Ok(v),
        other => Err(GremlinError::Unsupported(format!(
            "step '{}' expects an integer argument, got {other}",
            call.name
        ))),
    }
}

fn compile_pred(p: &PredArg, env: &VarEnv) -> GResult<Pred> {
    let vals: Vec<GValue> = p
        .args
        .iter()
        .map(|a| resolve_value(a, env))
        .collect::<GResult<_>>()?;
    // `within(list)` with a single list argument flattens it.
    let flat = |vals: Vec<GValue>| -> Vec<GValue> {
        if vals.len() == 1 {
            if let GValue::List(items) = &vals[0] {
                return items.clone();
            }
        }
        vals
    };
    Ok(match p.name.as_str() {
        "eq" => Pred::Eq(vals[0].clone()),
        "neq" => Pred::Neq(vals[0].clone()),
        "gt" => Pred::Gt(vals[0].clone()),
        "gte" => Pred::Gte(vals[0].clone()),
        "lt" => Pred::Lt(vals[0].clone()),
        "lte" => Pred::Lte(vals[0].clone()),
        "within" => Pred::Within(flat(vals)),
        "between" | "inside" => Pred::Between(vals[0].clone(), vals[1].clone()),
        other => return Err(GremlinError::Unsupported(format!("predicate '{other}'"))),
    })
}

fn compile_filter_arg(arg: &Arg, env: &VarEnv) -> GResult<FilterSpec> {
    match arg {
        Arg::Anon(calls) => {
            Ok(FilterSpec { traversal: compile_anon(calls, env)?, compare: None })
        }
        Arg::Compare { traversal, op, value } => Ok(FilterSpec {
            traversal: compile_anon(traversal, env)?,
            compare: Some((*op, resolve_value(value, env)?)),
        }),
        other => Err(GremlinError::Unsupported(format!(
            "filter expects a traversal argument, got {other:?}"
        ))),
    }
}

fn compile_calls(calls: &[StepCall], env: &VarEnv, out: &mut Vec<Step>) -> GResult<()> {
    let mut i = 0;
    while i < calls.len() {
        let call = &calls[i];
        match call.name.as_str() {
            // ---------------------------------------------------- adjacency
            "out" | "in" | "both" | "outE" | "inE" | "bothE" => {
                let (direction, to) = match call.name.as_str() {
                    "out" => (Direction::Out, ElementKind::Vertices),
                    "in" => (Direction::In, ElementKind::Vertices),
                    "both" => (Direction::Both, ElementKind::Vertices),
                    "outE" => (Direction::Out, ElementKind::Edges),
                    "inE" => (Direction::In, ElementKind::Edges),
                    _ => (Direction::Both, ElementKind::Edges),
                };
                out.push(Step::Vertex(VertexStep {
                    direction,
                    edge_labels: string_args(call, env)?,
                    to,
                    filter: ElementFilter::default(),
                }));
            }
            "outV" | "inV" | "bothV" | "otherV" => {
                let end = match call.name.as_str() {
                    "outV" => EdgeEnd::Out,
                    "inV" => EdgeEnd::In,
                    "bothV" => EdgeEnd::Both,
                    _ => EdgeEnd::Other,
                };
                out.push(Step::EdgeVertex(EdgeVertexStep { end, filter: ElementFilter::default() }));
            }
            // ------------------------------------------------------ filters
            "has" => {
                let key = string_arg(call, 0, env)?;
                let pred = match call.args.len() {
                    1 => Pred::Exists,
                    2 => match &call.args[1] {
                        Arg::Pred(p) => compile_pred(p, env)?,
                        other => Pred::Eq(resolve_value(other, env)?),
                    },
                    n => {
                        return Err(GremlinError::Unsupported(format!(
                            "has() with {n} arguments"
                        )))
                    }
                };
                out.push(Step::Has(vec![PropPred { key, pred }]));
            }
            "hasNot" => {
                let key = string_arg(call, 0, env)?;
                out.push(Step::Has(vec![PropPred { key, pred: Pred::Absent }]));
            }
            "hasLabel" => {
                let labels: Vec<GValue> =
                    string_args(call, env)?.into_iter().map(GValue::Str).collect();
                out.push(Step::Has(vec![PropPred {
                    key: "label".into(),
                    pred: Pred::Within(labels),
                }]));
            }
            "hasId" => {
                let ids: Vec<GValue> = call
                    .args
                    .iter()
                    .map(|a| resolve_value(a, env))
                    .collect::<GResult<_>>()?;
                out.push(Step::Has(vec![PropPred { key: "id".into(), pred: Pred::Within(ids) }]));
            }
            "filter" => out.push(Step::Filter(compile_filter_arg(&call.args[0], env)?)),
            "where" => out.push(Step::Where(compile_filter_arg(&call.args[0], env)?)),
            "not" => match &call.args[0] {
                Arg::Anon(calls) => out.push(Step::Not(compile_anon(calls, env)?)),
                other => {
                    return Err(GremlinError::Unsupported(format!(
                        "not() expects a traversal, got {other:?}"
                    )))
                }
            },
            "is" => {
                let pred = match &call.args[0] {
                    Arg::Pred(p) => compile_pred(p, env)?,
                    other => Pred::Eq(resolve_value(other, env)?),
                };
                out.push(Step::Is(pred));
            }
            "simplePath" => out.push(Step::SimplePath),
            // -------------------------------------------------- projections
            "values" => out.push(Step::Values(string_args(call, env)?)),
            "valueMap" => out.push(Step::ValueMap(string_args(call, env)?)),
            "properties" => out.push(Step::Properties(string_args(call, env)?)),
            "id" => out.push(Step::Id),
            "label" => out.push(Step::Label),
            "constant" => out.push(Step::Constant(resolve_value(&call.args[0], env)?)),
            // --------------------------------------------------- aggregates
            "count" => out.push(Step::Aggregate(AggOp::Count)),
            "sum" => out.push(Step::Aggregate(AggOp::Sum)),
            "mean" => out.push(Step::Aggregate(AggOp::Mean)),
            "min" => out.push(Step::Aggregate(AggOp::Min)),
            "max" => out.push(Step::Aggregate(AggOp::Max)),
            // ----------------------------------------------------- ordering
            "dedup" => out.push(Step::Dedup),
            "limit" => out.push(Step::Limit(int_arg(call, 0, env)? as u64)),
            "range" => {
                out.push(Step::Range(int_arg(call, 0, env)? as u64, int_arg(call, 1, env)? as u64))
            }
            "order" => {
                // Collect following `.by(...)` modulators.
                let mut keys: Vec<(OrderKey, bool)> = Vec::new();
                while i + 1 < calls.len() && calls[i + 1].name == "by" {
                    i += 1;
                    let by = &calls[i];
                    let mut key = OrderKey::Value;
                    let mut desc = false;
                    for a in &by.args {
                        match resolve_value(a, env)? {
                            GValue::Str(s) if s == "asc" || s == "incr" => desc = false,
                            GValue::Str(s) if s == "desc" || s == "decr" => desc = true,
                            GValue::Str(s) => key = OrderKey::Property(s),
                            other => {
                                return Err(GremlinError::Unsupported(format!(
                                    "order().by({other})"
                                )))
                            }
                        }
                    }
                    keys.push((key, desc));
                }
                if keys.is_empty() {
                    keys.push((OrderKey::Value, false));
                }
                out.push(Step::Order(keys));
            }
            // ------------------------------------------------------ looping
            "repeat" => {
                let body = match &call.args[0] {
                    Arg::Anon(calls) => compile_anon(calls, env)?,
                    other => {
                        return Err(GremlinError::Unsupported(format!(
                            "repeat() expects a traversal, got {other:?}"
                        )))
                    }
                };
                let mut times = None;
                let mut until = None;
                let mut emit = false;
                // Consume following modulators.
                while i + 1 < calls.len() {
                    match calls[i + 1].name.as_str() {
                        "times" => {
                            i += 1;
                            times = Some(int_arg(&calls[i], 0, env)? as u32);
                        }
                        "until" => {
                            i += 1;
                            until = Some(match &calls[i].args[0] {
                                Arg::Anon(c) => compile_anon(c, env)?,
                                other => {
                                    return Err(GremlinError::Unsupported(format!(
                                        "until() expects a traversal, got {other:?}"
                                    )))
                                }
                            });
                        }
                        "emit" => {
                            i += 1;
                            emit = true;
                        }
                        _ => break,
                    }
                }
                out.push(Step::Repeat { body, times, until, emit });
            }
            // ------------------------------------------------- side effects
            "store" => out.push(Step::Store(string_arg(call, 0, env)?)),
            "aggregate" => out.push(Step::AggregateSE(string_arg(call, 0, env)?)),
            "cap" => out.push(Step::Cap(string_arg(call, 0, env)?)),
            // ---------------------------------------------------- branching
            "union" | "coalesce" => {
                let branches: Vec<Traversal> = call
                    .args
                    .iter()
                    .map(|a| match a {
                        Arg::Anon(calls) => compile_anon(calls, env),
                        other => Err(GremlinError::Unsupported(format!(
                            "{}() expects traversals, got {other:?}",
                            call.name
                        ))),
                    })
                    .collect::<GResult<_>>()?;
                if call.name == "union" {
                    out.push(Step::Union(branches));
                } else {
                    out.push(Step::Coalesce(branches));
                }
            }
            // -------------------------------------------------------- misc
            "path" => out.push(Step::Path),
            "as" => out.push(Step::As(string_arg(call, 0, env)?)),
            "select" => out.push(Step::Select(string_args(call, env)?)),
            "group" | "groupCount" => {
                // Optional `.by('key')` modulator.
                let mut key = None;
                if i + 1 < calls.len() && calls[i + 1].name == "by" {
                    i += 1;
                    key = Some(string_arg(&calls[i], 0, env)?);
                }
                if call.name == "group" {
                    out.push(Step::Group(key));
                } else {
                    out.push(Step::GroupCount(key));
                }
            }
            "fold" => out.push(Step::Fold),
            "unfold" => out.push(Step::Unfold),
            "identity" => out.push(Step::Identity),
            "V" => {
                // Mid-traversal V(ids): jump to vertices (used after cap()).
                let ids = args_to_ids(&call.args, env)?;
                let filter = if ids.is_empty() {
                    ElementFilter::default()
                } else {
                    ElementFilter::with_ids(ids)
                };
                out.push(Step::Graph(GraphStep { kind: ElementKind::Vertices, filter }));
            }
            other => return Err(GremlinError::Unsupported(format!("step '{other}'"))),
        }
        i += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_str(s: &str) -> Traversal {
        let script = parse(s).unwrap();
        compile(&script.statements[0].traversal, &VarEnv::new()).unwrap()
    }

    #[test]
    fn compile_basic_chain() {
        let t = compile_str("g.V().hasLabel('patient').has('name', 'Alice').outE()");
        assert_eq!(t.steps.len(), 4);
        assert!(matches!(&t.steps[0], Step::Graph(g) if g.kind == ElementKind::Vertices));
        assert!(matches!(&t.steps[1], Step::Has(p) if p[0].key == "label"));
        assert!(matches!(&t.steps[2], Step::Has(p) if p[0].key == "name"));
        assert!(
            matches!(&t.steps[3], Step::Vertex(v) if v.to == ElementKind::Edges && v.direction == Direction::Out)
        );
    }

    #[test]
    fn compile_ids_into_graph_filter() {
        let t = compile_str("g.V(1, 'p::2')");
        match &t.steps[0] {
            Step::Graph(g) => {
                assert_eq!(
                    g.filter.ids,
                    Some(vec![ElementId::Long(1), ElementId::Str("p::2".into())])
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compile_repeat_with_modulators() {
        let t = compile_str("g.V(1).repeat(out('isa').dedup().store('x')).times(2).cap('x')");
        match &t.steps[1] {
            Step::Repeat { body, times, emit, .. } => {
                assert_eq!(*times, Some(2));
                assert!(!emit);
                assert_eq!(body.steps.len(), 3);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(&t.steps[2], Step::Cap(k) if k == "x"));
    }

    #[test]
    fn compile_variable_ids() {
        let mut env = VarEnv::new();
        env.insert("xs".into(), GValue::List(vec![GValue::Long(5), GValue::Str("d::2".into())]));
        let script = parse("g.V(xs).in('hasDisease')").unwrap();
        let t = compile(&script.statements[0].traversal, &env).unwrap();
        match &t.steps[0] {
            Step::Graph(g) => assert_eq!(g.filter.ids.as_ref().unwrap().len(), 2),
            other => panic!("{other:?}"),
        }
        // Unbound variable errors.
        let script = parse("g.V(nope)").unwrap();
        assert!(compile(&script.statements[0].traversal, &VarEnv::new()).is_err());
    }

    #[test]
    fn compile_comparison_filter() {
        let t = compile_str("g.V(1).outE('follows').filter(outV().id() == 9)");
        match &t.steps[2] {
            Step::Filter(spec) => {
                assert_eq!(spec.compare, Some((CompareOp::Eq, GValue::Long(9))));
                assert_eq!(spec.traversal.steps.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compile_order_by_keys() {
        let t = compile_str("g.V().order().by('name', desc).by('age')");
        match &t.steps[1] {
            Step::Order(keys) => {
                assert_eq!(keys.len(), 2);
                assert_eq!(keys[0], (OrderKey::Property("name".into()), true));
                assert_eq!(keys[1], (OrderKey::Property("age".into()), false));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compile_predicates_and_union() {
        let t = compile_str("g.V().has('age', gt(30)).union(out('a'), in('b'))");
        assert!(matches!(&t.steps[1], Step::Has(p) if matches!(p[0].pred, Pred::Gt(_))));
        assert!(matches!(&t.steps[2], Step::Union(b) if b.len() == 2));
    }

    #[test]
    fn compile_rejects_unknown_step() {
        let script = parse("g.V().frobnicate()").unwrap();
        let err = compile(&script.statements[0].traversal, &VarEnv::new()).unwrap_err();
        assert!(matches!(err, GremlinError::Unsupported(_)));
    }

    #[test]
    fn compile_within_flattens_single_list() {
        let mut env = VarEnv::new();
        env.insert(
            "xs".into(),
            GValue::List(vec![GValue::Str("a".into()), GValue::Str("b".into())]),
        );
        let script = parse("g.V().has('tag', within(xs))").unwrap();
        let t = compile(&script.statements[0].traversal, &env).unwrap();
        match &t.steps[1] {
            Step::Has(p) => match &p[0].pred {
                Pred::Within(vals) => assert_eq!(vals.len(), 2),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}
