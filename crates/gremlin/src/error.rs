//! Errors for the Gremlin substrate.

use std::fmt;

/// Errors raised while parsing, compiling, or executing a traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GremlinError {
    /// The Gremlin text could not be tokenized or parsed.
    Parse(String),
    /// The parsed script uses an unsupported construct.
    Unsupported(String),
    /// A runtime failure inside the traversal engine.
    Execution(String),
    /// A failure reported by the graph backend (e.g. the SQL layer).
    Backend(String),
}

impl fmt::Display for GremlinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GremlinError::Parse(m) => write!(f, "gremlin parse error: {m}"),
            GremlinError::Unsupported(m) => write!(f, "unsupported gremlin: {m}"),
            GremlinError::Execution(m) => write!(f, "traversal error: {m}"),
            GremlinError::Backend(m) => write!(f, "backend error: {m}"),
        }
    }
}

impl std::error::Error for GremlinError {}

/// Result alias for the crate.
pub type GResult<T> = Result<T, GremlinError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(GremlinError::Parse("x".into()).to_string().contains("parse"));
        assert!(GremlinError::Backend("y".into()).to_string().contains("backend"));
    }
}
