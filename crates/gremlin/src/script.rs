//! Script-level execution: multi-statement Gremlin with variables.

use std::sync::Arc;

use crate::ast::Terminal;
use crate::compile::{compile, VarEnv};
use crate::error::{GremlinError, GResult};
use crate::exec::{ExecOptions, Executor, SideEffects};
use crate::backend::GraphBackend;
use crate::observe::TraversalObserver;
use crate::step::Traversal;
use crate::strategy::StrategyRegistry;
use crate::structure::GValue;

/// Runs Gremlin scripts against a backend with a strategy registry applied
/// at compile time — the role of TinkerPop's `GraphTraversalSource`.
pub struct ScriptRunner<'a> {
    backend: &'a dyn GraphBackend,
    strategies: StrategyRegistry,
    options: ExecOptions,
    observer: Option<Arc<dyn TraversalObserver>>,
}

impl<'a> ScriptRunner<'a> {
    pub fn new(backend: &'a dyn GraphBackend) -> ScriptRunner<'a> {
        ScriptRunner {
            backend,
            strategies: StrategyRegistry::new(),
            options: ExecOptions::default(),
            observer: None,
        }
    }

    pub fn with_strategies(mut self, strategies: StrategyRegistry) -> Self {
        self.strategies = strategies;
        self
    }

    pub fn with_options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Attach an observer: it receives strategy-rewrite and per-step timing
    /// events, and its [`TraversalObserver::take_report`] feeds the
    /// `.profile()` terminal.
    pub fn with_observer(mut self, observer: Arc<dyn TraversalObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    pub fn strategies(&self) -> &StrategyRegistry {
        &self.strategies
    }

    /// Parse, compile, optimize, and execute a script. Returns the final
    /// statement's results.
    pub fn run(&self, script_text: &str) -> GResult<Vec<GValue>> {
        self.run_with_side_effects(script_text).map(|(values, _)| values)
    }

    /// Like [`Self::run`] but also returns the final statement's
    /// side-effect store.
    pub fn run_with_side_effects(
        &self,
        script_text: &str,
    ) -> GResult<(Vec<GValue>, SideEffects)> {
        let script = crate::parser::parse(script_text)?;
        let mut env = VarEnv::new();
        let mut last: Option<(Vec<GValue>, SideEffects)> = None;
        for stmt in &script.statements {
            let mut traversal = compile(&stmt.traversal, &env)?;
            self.strategies.apply_all_observed(&mut traversal, self.observer.as_deref());
            if stmt.terminal == Some(Terminal::Explain) {
                // Explain never executes: render the optimized plan plus
                // whatever the backend can say about each step without
                // touching data.
                let text = self.render_explain(&traversal);
                if let Some(name) = &stmt.assign {
                    env.insert(name.clone(), GValue::Str(text.clone()));
                }
                last = Some((vec![GValue::Str(text)], SideEffects::default()));
                continue;
            }
            let mut executor = Executor::with_options(self.backend, self.options.clone());
            if let Some(obs) = self.observer.as_deref() {
                executor = executor.with_observer(obs);
            }
            let (values, side_effects) = executor.run(&traversal)?;
            let result_value = match stmt.terminal {
                Some(Terminal::Next) => values.first().cloned().unwrap_or(GValue::Null),
                Some(Terminal::Iterate) => GValue::List(Vec::new()),
                _ => GValue::List(values.clone()),
            };
            if let Some(name) = &stmt.assign {
                env.insert(name.clone(), result_value);
            }
            let final_values = match stmt.terminal {
                Some(Terminal::Next) => values.into_iter().take(1).collect(),
                Some(Terminal::Iterate) => Vec::new(),
                Some(Terminal::Profile) => {
                    // The observer (when attached) owns the collected
                    // events; without one, fall back to the optimized plan
                    // so `.profile()` still answers something useful.
                    let report = self
                        .observer
                        .as_deref()
                        .and_then(|o| o.take_report())
                        .unwrap_or_else(|| format!("plan: {}", traversal.describe()));
                    vec![GValue::Str(report)]
                }
                _ => values,
            };
            last = Some((final_values, side_effects));
        }
        last.ok_or_else(|| GremlinError::Parse("script produced no statements".into()))
    }

    /// Render an EXPLAIN text for an optimized plan: the plan string, then
    /// per-step backend detail (generated SQL, table eliminations) for
    /// steps where the backend has any.
    fn render_explain(&self, traversal: &Traversal) -> String {
        let mut out = format!("plan: {}", traversal.describe());
        for (i, step) in traversal.steps.iter().enumerate() {
            let lines = self.backend.explain_step(step);
            if !lines.is_empty() {
                out.push_str(&format!("\nstep {i}: {}", step.describe()));
                for l in lines {
                    out.push_str("\n  ");
                    out.push_str(&l);
                }
            }
        }
        out
    }

    /// Compile a single-statement script to its optimized plan without
    /// executing it (used by tests and plan inspection).
    pub fn plan(&self, script_text: &str) -> GResult<crate::step::Traversal> {
        let script = crate::parser::parse(script_text)?;
        let stmt = script
            .statements
            .first()
            .ok_or_else(|| GremlinError::Parse("empty script".into()))?;
        let mut traversal = compile(&stmt.traversal, &VarEnv::new())?;
        self.strategies.apply_all(&mut traversal);
        Ok(traversal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memgraph::MemGraph;
    use crate::structure::{Edge, Vertex};

    fn diamond() -> MemGraph {
        // 1 -> 2 -> 4, 1 -> 3 -> 4 (label "to"), vertex property w.
        let g = MemGraph::new();
        for (id, w) in [(1i64, 1.0f64), (2, 2.0), (3, 3.0), (4, 4.0)] {
            g.add_vertex(Vertex::new(id, "node").with_property("w", w));
        }
        g.add_edge(Edge::new(100i64, "to", 1i64, 2i64).with_property("len", 5i64));
        g.add_edge(Edge::new(101i64, "to", 1i64, 3i64).with_property("len", 7i64));
        g.add_edge(Edge::new(102i64, "to", 2i64, 4i64).with_property("len", 1i64));
        g.add_edge(Edge::new(103i64, "to", 3i64, 4i64).with_property("len", 2i64));
        g
    }

    #[test]
    fn basic_traversal_pipeline() {
        let g = diamond();
        let r = ScriptRunner::new(&g);
        let out = r.run("g.V().count()").unwrap();
        assert_eq!(out, vec![GValue::Long(4)]);
        let out = r.run("g.V(1).out('to').values('w')").unwrap();
        assert_eq!(out.len(), 2);
        let out = r.run("g.V(1).out('to').out('to').dedup()").unwrap();
        assert_eq!(out.len(), 1); // vertex 4 once
        let out = r.run("g.V(1).outE('to').has('len', gt(5)).inV().id()").unwrap();
        assert_eq!(out, vec![GValue::Long(3)]);
    }

    #[test]
    fn aggregates_and_order() {
        let g = diamond();
        let r = ScriptRunner::new(&g);
        assert_eq!(r.run("g.V().values('w').sum()").unwrap(), vec![GValue::Double(10.0)]);
        assert_eq!(r.run("g.V().values('w').mean()").unwrap(), vec![GValue::Double(2.5)]);
        assert_eq!(r.run("g.E().values('len').max()").unwrap(), vec![GValue::Long(7)]);
        let out = r.run("g.V().order().by('w', desc).limit(2).values('w')").unwrap();
        assert_eq!(out, vec![GValue::Double(4.0), GValue::Double(3.0)]);
    }

    #[test]
    fn repeat_times_and_store_cap() {
        let g = diamond();
        let r = ScriptRunner::new(&g);
        let out = r.run("g.V(1).repeat(out('to').dedup().store('x')).times(2).cap('x')").unwrap();
        match &out[0] {
            GValue::List(items) => assert_eq!(items.len(), 3), // 2,3 then 4
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn repeat_until() {
        let g = diamond();
        let r = ScriptRunner::new(&g);
        // Walk until reaching vertex 4.
        let out = r.run("g.V(1).repeat(out('to')).until(hasId(4)).dedup().id()").unwrap();
        assert_eq!(out, vec![GValue::Long(4)]);
    }

    #[test]
    fn variables_across_statements() {
        let g = diamond();
        let r = ScriptRunner::new(&g);
        let out = r
            .run("mids = g.V(1).out('to').id().fold().next(); g.V(mids).out('to').dedup().id()")
            .unwrap();
        assert_eq!(out, vec![GValue::Long(4)]);
    }

    #[test]
    fn filter_comparison_and_where() {
        let g = diamond();
        let r = ScriptRunner::new(&g);
        // LinkBench getLink shape.
        let out = r.run("g.V(1).outE('to').filter(inV().id() == 3)").unwrap();
        assert_eq!(out.len(), 1);
        let out = r.run("g.V().where(__.out('to').has('w', 4.0)).id()").unwrap();
        assert_eq!(out, vec![GValue::Long(2), GValue::Long(3)]);
        let out = r.run("g.V().not(out('to')).id()").unwrap();
        assert_eq!(out, vec![GValue::Long(4)]);
    }

    #[test]
    fn union_path_simple_path() {
        let g = diamond();
        let r = ScriptRunner::new(&g);
        let out = r.run("g.V(2).union(out('to'), in('to')).id()").unwrap();
        assert_eq!(out, vec![GValue::Long(4), GValue::Long(1)]);
        let out = r.run("g.V(1).out('to').out('to').path()").unwrap();
        assert_eq!(out.len(), 2);
        match &out[0] {
            GValue::Path(p) => assert_eq!(p.len(), 3),
            other => panic!("{other:?}"),
        }
        // simplePath drops cyclic walks: 1->2->4 has no repeats, keeps 2.
        let out = r.run("g.V(1).out('to').in('to').simplePath().id()").unwrap();
        // From 1: out->2 in-> {1} dropped; out->3 in->{1} dropped => empty.
        assert!(out.is_empty());
    }

    #[test]
    fn select_as_valuemap() {
        let g = diamond();
        let r = ScriptRunner::new(&g);
        let out = r.run("g.V(1).as('a').out('to').as('b').select('a').id()").unwrap();
        assert_eq!(out, vec![GValue::Long(1), GValue::Long(1)]);
        let out = r.run("g.V(1).valueMap('w')").unwrap();
        match &out[0] {
            GValue::Map(m) => assert_eq!(m.get("w"), Some(&GValue::Double(1.0))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn next_terminal_and_iterate() {
        let g = diamond();
        let r = ScriptRunner::new(&g);
        let out = r.run("g.V().order().by('w').id().next()").unwrap();
        assert_eq!(out, vec![GValue::Long(1)]);
        let out = r.run("g.V().store('all').iterate()").unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn is_and_constant_and_range() {
        let g = diamond();
        let r = ScriptRunner::new(&g);
        let out = r.run("g.V().values('w').is(gt(2.5))").unwrap();
        assert_eq!(out.len(), 2);
        let out = r.run("g.V().constant(9).dedup()").unwrap();
        assert_eq!(out, vec![GValue::Long(9)]);
        let out = r.run("g.V().order().by('w').range(1, 3).values('w')").unwrap();
        assert_eq!(out, vec![GValue::Double(2.0), GValue::Double(3.0)]);
    }

    #[test]
    fn error_paths() {
        let g = diamond();
        let r = ScriptRunner::new(&g);
        assert!(r.run("g.V().outV()").is_err()); // edge step on vertices
        assert!(r.run("g.V().out().repeat(out())").is_err()); // repeat without times/until
        assert!(r.run("g.V(unbound_var)").is_err());
    }

    #[test]
    fn other_v_roundtrip() {
        let g = diamond();
        let r = ScriptRunner::new(&g);
        // From vertex 2 through both incident edges, otherV gives 1 and 4.
        let mut out = r.run("g.V(2).bothE('to').otherV().id()").unwrap();
        out.sort();
        assert_eq!(out, vec![GValue::Long(1), GValue::Long(4)]);
    }
}
