//! Traversal strategies — the provider optimization hook.
//!
//! TinkerPop "opens up a Provider Strategy API for graph database developers
//! to add customized optimization strategies specific to the particular
//! graph database implementation" (Section 6.1). A [`TraversalStrategy`]
//! mutates a compiled step plan; a [`StrategyRegistry`] applies every
//! registered strategy, recursing into nested traversals (repeat bodies,
//! union branches, filters) exactly once per compile.

use std::sync::Arc;

use crate::observe::TraversalObserver;
use crate::step::{Step, Traversal};

/// A plan-rewriting optimization.
pub trait TraversalStrategy: Send + Sync {
    /// Stable name, used to enable/disable strategies in experiments.
    fn name(&self) -> &str;
    /// Mutate the traversal in place. Must preserve query semantics.
    fn apply(&self, traversal: &mut Traversal);
}

/// An ordered collection of strategies.
#[derive(Default, Clone)]
pub struct StrategyRegistry {
    strategies: Vec<Arc<dyn TraversalStrategy>>,
}

impl StrategyRegistry {
    pub fn new() -> StrategyRegistry {
        StrategyRegistry::default()
    }

    pub fn add(&mut self, s: Arc<dyn TraversalStrategy>) {
        self.strategies.push(s);
    }

    pub fn names(&self) -> Vec<&str> {
        self.strategies.iter().map(|s| s.name()).collect()
    }

    pub fn is_empty(&self) -> bool {
        self.strategies.is_empty()
    }

    /// Apply all strategies to the traversal and, recursively, to every
    /// nested traversal.
    pub fn apply_all(&self, traversal: &mut Traversal) {
        self.apply_all_observed(traversal, None);
    }

    /// Like [`Self::apply_all`], additionally reporting each top-level plan
    /// rewrite to the observer. The before/after comparison (two
    /// `describe()` renderings per strategy) only happens when an observer
    /// is attached, so the unobserved path costs nothing extra.
    pub fn apply_all_observed(
        &self,
        traversal: &mut Traversal,
        observer: Option<&dyn TraversalObserver>,
    ) {
        for s in &self.strategies {
            match observer {
                None => s.apply(traversal),
                Some(obs) => {
                    let before = traversal.describe();
                    s.apply(traversal);
                    let after = traversal.describe();
                    if before != after {
                        obs.strategy_applied(s.name(), &before, &after);
                    }
                }
            }
        }
        // Nested traversals are rewritten without observation: their
        // rewrites are implementation detail of the enclosing step.
        for step in &mut traversal.steps {
            match step {
                Step::Repeat { body, until, .. } => {
                    self.apply_all(body);
                    if let Some(u) = until {
                        self.apply_all(u);
                    }
                }
                Step::Union(branches) | Step::Coalesce(branches) => {
                    for b in branches {
                        self.apply_all(b);
                    }
                }
                Step::Filter(spec) | Step::Where(spec) => self.apply_all(&mut spec.traversal),
                Step::Not(t) => self.apply_all(t),
                _ => {}
            }
        }
    }
}

impl std::fmt::Debug for StrategyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrategyRegistry").field("strategies", &self.names()).finish()
    }
}

/// Built-in strategy: remove no-op `identity()` steps.
pub struct IdentityRemoval;

impl TraversalStrategy for IdentityRemoval {
    fn name(&self) -> &str {
        "IdentityRemoval"
    }

    fn apply(&self, traversal: &mut Traversal) {
        traversal.steps.retain(|s| !matches!(s, Step::Identity));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::FilterSpec;

    #[test]
    fn identity_removal_cleans_plan() {
        let mut t = Traversal::new(vec![Step::Identity, Step::Dedup, Step::Identity]);
        let mut reg = StrategyRegistry::new();
        reg.add(Arc::new(IdentityRemoval));
        reg.apply_all(&mut t);
        assert_eq!(t.steps, vec![Step::Dedup]);
    }

    #[test]
    fn registry_recurses_into_nested_traversals() {
        let mut t = Traversal::new(vec![
            Step::Repeat {
                body: Traversal::new(vec![Step::Identity, Step::Dedup]),
                times: Some(2),
                until: None,
                emit: false,
            },
            Step::Filter(FilterSpec {
                traversal: Traversal::new(vec![Step::Identity]),
                compare: None,
            }),
        ]);
        let mut reg = StrategyRegistry::new();
        reg.add(Arc::new(IdentityRemoval));
        reg.apply_all(&mut t);
        match &t.steps[0] {
            Step::Repeat { body, .. } => assert_eq!(body.steps, vec![Step::Dedup]),
            other => panic!("{other:?}"),
        }
        match &t.steps[1] {
            Step::Filter(spec) => assert!(spec.traversal.steps.is_empty()),
            other => panic!("{other:?}"),
        }
        assert_eq!(reg.names(), vec!["IdentityRemoval"]);
    }
}
