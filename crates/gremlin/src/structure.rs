//! The property-graph structure API: elements, ids, and values.
//!
//! This mirrors TinkerPop's core API (Section 3 of the paper): vertices and
//! edges with an `id`, a `label`, and key/value properties. Elements carry a
//! `provenance` field recording which relational table the element came from
//! — "every vertex/edge in the property graph comes from a particular table.
//! We record this information in the basic vertex and edge data structures
//! so that we can access this information at runtime" (Section 6.3).

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Unique identifier of a vertex or edge.
///
/// Plain numeric ids are `Long`; prefixed and implicit composite ids (e.g.
/// `patient::1` or `1::hasDisease::10`) are `Str`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElementId {
    Long(i64),
    Str(String),
}

impl ElementId {
    /// Render in the canonical textual form used by prefixed ids.
    pub fn as_text(&self) -> String {
        match self {
            ElementId::Long(v) => v.to_string(),
            ElementId::Str(s) => s.clone(),
        }
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElementId::Long(v) => write!(f, "{v}"),
            ElementId::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for ElementId {
    fn from(v: i64) -> Self {
        ElementId::Long(v)
    }
}

impl From<&str> for ElementId {
    fn from(v: &str) -> Self {
        ElementId::Str(v.to_string())
    }
}

impl From<String> for ElementId {
    fn from(v: String) -> Self {
        ElementId::Str(v)
    }
}

/// A vertex of the property graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Vertex {
    pub id: ElementId,
    pub label: String,
    pub properties: BTreeMap<String, GValue>,
    /// Relational table this vertex was materialized from, if any.
    pub provenance: Option<String>,
}

impl Vertex {
    pub fn new(id: impl Into<ElementId>, label: impl Into<String>) -> Vertex {
        Vertex {
            id: id.into(),
            label: label.into(),
            properties: BTreeMap::new(),
            provenance: None,
        }
    }

    pub fn with_property(mut self, key: &str, value: impl Into<GValue>) -> Vertex {
        self.properties.insert(key.to_string(), value.into());
        self
    }
}

/// A directed edge of the property graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    pub id: ElementId,
    pub label: String,
    pub src: ElementId,
    pub dst: ElementId,
    pub properties: BTreeMap<String, GValue>,
    /// Relational table this edge was materialized from, if any.
    pub provenance: Option<String>,
}

impl Edge {
    pub fn new(
        id: impl Into<ElementId>,
        label: impl Into<String>,
        src: impl Into<ElementId>,
        dst: impl Into<ElementId>,
    ) -> Edge {
        Edge {
            id: id.into(),
            label: label.into(),
            src: src.into(),
            dst: dst.into(),
            properties: BTreeMap::new(),
            provenance: None,
        }
    }

    pub fn with_property(mut self, key: &str, value: impl Into<GValue>) -> Edge {
        self.properties.insert(key.to_string(), value.into());
        self
    }
}

/// Either kind of graph element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    Vertex(Vertex),
    Edge(Edge),
}

impl Element {
    pub fn id(&self) -> &ElementId {
        match self {
            Element::Vertex(v) => &v.id,
            Element::Edge(e) => &e.id,
        }
    }

    pub fn label(&self) -> &str {
        match self {
            Element::Vertex(v) => &v.label,
            Element::Edge(e) => &e.label,
        }
    }

    pub fn properties(&self) -> &BTreeMap<String, GValue> {
        match self {
            Element::Vertex(v) => &v.properties,
            Element::Edge(e) => &e.properties,
        }
    }

    pub fn provenance(&self) -> Option<&str> {
        match self {
            Element::Vertex(v) => v.provenance.as_deref(),
            Element::Edge(e) => e.provenance.as_deref(),
        }
    }

    pub fn is_vertex(&self) -> bool {
        matches!(self, Element::Vertex(_))
    }

    pub fn is_edge(&self) -> bool {
        matches!(self, Element::Edge(_))
    }
}

/// The dynamic value type flowing through a traversal.
#[derive(Debug, Clone)]
pub enum GValue {
    Null,
    Long(i64),
    Double(f64),
    Str(String),
    Bool(bool),
    List(Vec<GValue>),
    Map(BTreeMap<String, GValue>),
    Vertex(Vertex),
    Edge(Edge),
    /// A traversal path: the ordered objects visited.
    Path(Vec<GValue>),
}

impl GValue {
    pub fn as_element(&self) -> Option<Element> {
        match self {
            GValue::Vertex(v) => Some(Element::Vertex(v.clone())),
            GValue::Edge(e) => Some(Element::Edge(e.clone())),
            _ => None,
        }
    }

    pub fn from_element(e: Element) -> GValue {
        match e {
            Element::Vertex(v) => GValue::Vertex(v),
            Element::Edge(e) => GValue::Edge(e),
        }
    }

    /// Numeric view (Long and Double only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            GValue::Long(v) => Some(*v as f64),
            GValue::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Identity key used by `dedup()`: elements dedup by kind+id, scalars
    /// by value.
    pub fn dedup_key(&self) -> GValue {
        match self {
            GValue::Vertex(v) => {
                GValue::List(vec![GValue::Str("v".into()), id_value(&v.id)])
            }
            GValue::Edge(e) => GValue::List(vec![GValue::Str("e".into()), id_value(&e.id)]),
            other => other.clone(),
        }
    }

    /// Equality with numeric cross-type comparison (2 == 2.0).
    pub fn compare(&self, other: &GValue) -> Option<Ordering> {
        match (self, other) {
            (GValue::Null, GValue::Null) => Some(Ordering::Equal),
            (GValue::Null, _) | (_, GValue::Null) => None,
            (GValue::Bool(a), GValue::Bool(b)) => Some(a.cmp(b)),
            (GValue::Str(a), GValue::Str(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Some(x.total_cmp(&y)),
                _ => None,
            },
        }
    }
}

/// Convert an id to a comparable value.
pub fn id_value(id: &ElementId) -> GValue {
    match id {
        ElementId::Long(v) => GValue::Long(*v),
        ElementId::Str(s) => GValue::Str(s.clone()),
    }
}

/// Try to view a value as an element id.
pub fn value_to_id(v: &GValue) -> Option<ElementId> {
    match v {
        GValue::Long(x) => Some(ElementId::Long(*x)),
        GValue::Str(s) => Some(ElementId::Str(s.clone())),
        GValue::Vertex(vx) => Some(vx.id.clone()),
        GValue::Edge(e) => Some(e.id.clone()),
        _ => None,
    }
}

impl PartialEq for GValue {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for GValue {}

impl PartialOrd for GValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for GValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl GValue {
    /// Total ordering for sorting and set membership; groups by type rank,
    /// numerics compare across Long/Double.
    pub fn total_cmp(&self, other: &GValue) -> Ordering {
        fn rank(v: &GValue) -> u8 {
            match v {
                GValue::Null => 0,
                GValue::Bool(_) => 1,
                GValue::Long(_) | GValue::Double(_) => 2,
                GValue::Str(_) => 3,
                GValue::List(_) => 4,
                GValue::Map(_) => 5,
                GValue::Vertex(_) => 6,
                GValue::Edge(_) => 7,
                GValue::Path(_) => 8,
            }
        }
        match (self, other) {
            (GValue::Null, GValue::Null) => Ordering::Equal,
            (GValue::Bool(a), GValue::Bool(b)) => a.cmp(b),
            (GValue::Str(a), GValue::Str(b)) => a.cmp(b),
            (GValue::Long(a), GValue::Long(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                a.as_f64().unwrap().total_cmp(&b.as_f64().unwrap())
            }
            (GValue::List(a), GValue::List(b)) | (GValue::Path(a), GValue::Path(b)) => a.cmp(b),
            (GValue::Map(a), GValue::Map(b)) => a
                .iter()
                .cmp(b.iter()),
            (GValue::Vertex(a), GValue::Vertex(b)) => a.id.cmp(&b.id),
            (GValue::Edge(a), GValue::Edge(b)) => a.id.cmp(&b.id),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl Hash for GValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            GValue::Null => 0u8.hash(state),
            GValue::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            GValue::Long(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            GValue::Double(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            GValue::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            GValue::List(items) | GValue::Path(items) => {
                4u8.hash(state);
                for i in items {
                    i.hash(state);
                }
            }
            GValue::Map(m) => {
                5u8.hash(state);
                for (k, v) in m {
                    k.hash(state);
                    v.hash(state);
                }
            }
            GValue::Vertex(v) => {
                6u8.hash(state);
                v.id.hash(state);
            }
            GValue::Edge(e) => {
                7u8.hash(state);
                e.id.hash(state);
            }
        }
    }
}

impl fmt::Display for GValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GValue::Null => f.write_str("null"),
            GValue::Long(v) => write!(f, "{v}"),
            GValue::Double(v) => write!(f, "{v}"),
            GValue::Str(s) => f.write_str(s),
            GValue::Bool(b) => write!(f, "{b}"),
            GValue::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            GValue::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            GValue::Vertex(v) => write!(f, "v[{}]", v.id),
            GValue::Edge(e) => write!(f, "e[{}][{}->{}]", e.id, e.src, e.dst),
            GValue::Path(p) => {
                write!(f, "path[")?;
                for (i, v) in p.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for GValue {
    fn from(v: i64) -> Self {
        GValue::Long(v)
    }
}
impl From<f64> for GValue {
    fn from(v: f64) -> Self {
        GValue::Double(v)
    }
}
impl From<&str> for GValue {
    fn from(v: &str) -> Self {
        GValue::Str(v.to_string())
    }
}
impl From<String> for GValue {
    fn from(v: String) -> Self {
        GValue::Str(v)
    }
}
impl From<bool> for GValue {
    fn from(v: bool) -> Self {
        GValue::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_accessors() {
        let v = Vertex::new(1, "patient").with_property("name", "Alice");
        let e = Element::Vertex(v);
        assert_eq!(e.id(), &ElementId::Long(1));
        assert_eq!(e.label(), "patient");
        assert!(e.is_vertex());
        assert_eq!(e.properties().get("name"), Some(&GValue::Str("Alice".into())));
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(GValue::Long(2), GValue::Double(2.0));
        assert_eq!(GValue::Long(2).compare(&GValue::Double(2.5)), Some(Ordering::Less));
        assert_eq!(GValue::Str("a".into()).compare(&GValue::Long(1)), None);
        assert_eq!(GValue::Null.compare(&GValue::Long(1)), None);
    }

    #[test]
    fn dedup_key_identity_for_elements() {
        let v1 = Vertex::new(1, "a").with_property("x", 1i64);
        let mut v2 = Vertex::new(1, "a");
        v2.properties.insert("x".into(), GValue::Long(999));
        // Same id -> same dedup key despite differing properties.
        assert_eq!(GValue::Vertex(v1).dedup_key(), GValue::Vertex(v2).dedup_key());
        // Vertex and edge with the same id have different keys.
        let e = Edge::new(1, "l", 0, 2);
        assert_ne!(GValue::Vertex(Vertex::new(1, "a")).dedup_key(), GValue::Edge(e).dedup_key());
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = [GValue::Str("b".into()),
            GValue::Long(10),
            GValue::Null,
            GValue::Double(1.5),
            GValue::Bool(false)];
        vals.sort();
        assert_eq!(vals[0], GValue::Null);
        assert_eq!(vals[1], GValue::Bool(false));
        assert_eq!(vals[2], GValue::Double(1.5));
        assert_eq!(vals[3], GValue::Long(10));
    }

    #[test]
    fn id_value_roundtrip() {
        assert_eq!(value_to_id(&GValue::Long(5)), Some(ElementId::Long(5)));
        assert_eq!(value_to_id(&id_value(&ElementId::Str("p::1".into()))), Some(ElementId::Str("p::1".into())));
        assert_eq!(value_to_id(&GValue::Bool(true)), None);
        let v = Vertex::new(7, "x");
        assert_eq!(value_to_id(&GValue::Vertex(v)), Some(ElementId::Long(7)));
    }

    #[test]
    fn display_forms() {
        let v = Vertex::new(1, "a");
        assert_eq!(GValue::Vertex(v).to_string(), "v[1]");
        assert_eq!(
            GValue::List(vec![GValue::Long(1), GValue::Str("x".into())]).to_string(),
            "[1, x]"
        );
    }
}
