//! The logical step plan a Gremlin traversal compiles into.
//!
//! This mirrors TinkerPop's step taxonomy (Section 6.1 of the paper): each
//! step is a transformation (GraphStep, VertexStep, ...), filter (HasStep,
//! ...), side-effect (store), or branch (union, repeat). Steps that access
//! the graph structure API — [`Step::Graph`], [`Step::Vertex`],
//! [`Step::EdgeVertex`] — are the paper's *GSA steps*: each typically
//! results in one or more SQL queries, and the optimization strategies all
//! target them.

use crate::backend::{AggOp, Direction, EdgeEnd, ElementFilter, ElementKind, PropPred};
use crate::structure::GValue;

/// A compiled traversal: an ordered list of steps.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Traversal {
    pub steps: Vec<Step>,
}

impl Traversal {
    pub fn new(steps: Vec<Step>) -> Traversal {
        Traversal { steps }
    }

    /// True if any step (recursively) requires path tracking.
    pub fn needs_paths(&self) -> bool {
        fn scan(steps: &[Step]) -> bool {
            steps.iter().any(|s| match s {
                Step::Path | Step::SimplePath => true,
                Step::Repeat { body, until, .. } => {
                    scan(&body.steps) || until.as_ref().map(|u| scan(&u.steps)).unwrap_or(false)
                }
                Step::Union(ts) | Step::Coalesce(ts) => ts.iter().any(|t| scan(&t.steps)),
                Step::Filter(spec) | Step::Where(spec) => scan(&spec.traversal.steps),
                Step::Not(t) => scan(&t.steps),
                _ => false,
            })
        }
        scan(&self.steps)
    }

    /// Render a compact plan string (used in tests and EXPLAIN-style
    /// diagnostics).
    pub fn describe(&self) -> String {
        let parts: Vec<String> = self.steps.iter().map(Step::describe).collect();
        parts.join(" -> ")
    }
}

/// `g.V(...)` / `g.E(...)` — fetch from the whole graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStep {
    pub kind: ElementKind,
    pub filter: ElementFilter,
}

/// `out/in/both[E](labels)` — move from vertices to adjacent elements.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexStep {
    pub direction: Direction,
    pub edge_labels: Vec<String>,
    /// `Vertices` for out()/in()/both(), `Edges` for outE()/inE()/bothE().
    pub to: ElementKind,
    pub filter: ElementFilter,
}

/// `outV/inV/bothV/otherV` — move from edges to endpoint vertices.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeVertexStep {
    pub end: EdgeEnd,
    pub filter: ElementFilter,
}

/// Sub-traversal filter used by `filter(...)`, `where(...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterSpec {
    pub traversal: Traversal,
    /// `filter(outV().id() == x)` style comparison; `None` means plain
    /// existence ("the sub-traversal produces at least one result").
    pub compare: Option<(CompareOp, GValue)>,
}

/// Comparison operators in filter sugar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    Eq,
    Neq,
    Gt,
    Gte,
    Lt,
    Lte,
}

/// Sort key for `order().by(...)`.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderKey {
    /// Order by the traverser value itself.
    Value,
    /// Order by a property of the element.
    Property(String),
}

/// One step of a traversal.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    Graph(GraphStep),
    Vertex(VertexStep),
    EdgeVertex(EdgeVertexStep),
    /// `has(...)`, `hasLabel(...)`, `hasId(...)` — pure filters.
    Has(Vec<PropPred>),
    /// `values(keys...)` — flatten to property values.
    Values(Vec<String>),
    /// `valueMap(keys...)` — map of property values per element.
    ValueMap(Vec<String>),
    /// `properties(keys...)` — key/value property entries.
    Properties(Vec<String>),
    Id,
    Label,
    /// Global aggregate: `count()`, `sum()`, `mean()`, `min()`, `max()`.
    Aggregate(AggOp),
    Dedup,
    Limit(u64),
    /// `range(lo, hi)`.
    Range(u64, u64),
    Order(Vec<(OrderKey, bool)>),
    Repeat {
        body: Traversal,
        times: Option<u32>,
        until: Option<Traversal>,
        emit: bool,
    },
    /// `store(key)` — lazy side-effect collection.
    Store(String),
    /// `aggregate(key)` — eager (barrier) side-effect collection.
    AggregateSE(String),
    /// `cap(key)` — emit the collected side effect as a list.
    Cap(String),
    Filter(FilterSpec),
    Where(FilterSpec),
    Not(Traversal),
    /// `is(P)` — filter scalars by predicate.
    Is(crate::backend::Pred),
    Union(Vec<Traversal>),
    /// `coalesce(t1, t2, ...)` — per traverser, the first branch that
    /// yields results.
    Coalesce(Vec<Traversal>),
    Path,
    /// `simplePath()` — drop traversers that revisit an element.
    SimplePath,
    As(String),
    Select(Vec<String>),
    Constant(GValue),
    /// `group().by(key)` — barrier: map from key to list of incoming
    /// values (`None` key groups by the value itself).
    Group(Option<String>),
    /// `groupCount().by(key)` — barrier: map from key to count.
    GroupCount(Option<String>),
    /// `fold()` — gather the stream into one list.
    Fold,
    /// `unfold()` — flatten lists back into the stream.
    Unfold,
    Identity,
}

impl Step {
    /// Whether this step accesses the graph structure API (a GSA step).
    pub fn is_gsa(&self) -> bool {
        matches!(self, Step::Graph(_) | Step::Vertex(_) | Step::EdgeVertex(_))
    }

    /// Short plan label.
    pub fn describe(&self) -> String {
        match self {
            Step::Graph(g) => {
                let kind = if g.kind == ElementKind::Vertices { "V" } else { "E" };
                let mut tags = Vec::new();
                if g.filter.ids.is_some() {
                    tags.push("ids");
                }
                if g.filter.labels.is_some() {
                    tags.push("labels");
                }
                if !g.filter.predicates.is_empty() {
                    tags.push("preds");
                }
                if g.filter.projection.is_some() {
                    tags.push("proj");
                }
                if g.filter.aggregate.is_some() {
                    tags.push("agg");
                }
                if g.filter.src_ids.is_some() {
                    tags.push("src_ids");
                }
                if g.filter.dst_ids.is_some() {
                    tags.push("dst_ids");
                }
                if tags.is_empty() {
                    format!("Graph({kind})")
                } else {
                    format!("Graph({kind}|{})", tags.join("+"))
                }
            }
            Step::Vertex(v) => {
                let dir = match v.direction {
                    Direction::Out => "out",
                    Direction::In => "in",
                    Direction::Both => "both",
                };
                let suffix = if v.to == ElementKind::Edges { "E" } else { "" };
                format!("Vertex({dir}{suffix})")
            }
            Step::EdgeVertex(e) => format!("EdgeVertex({:?})", e.end),
            Step::Has(p) => format!("Has({})", p.len()),
            Step::Values(k) => format!("Values({})", k.join(",")),
            Step::ValueMap(_) => "ValueMap".into(),
            Step::Properties(_) => "Properties".into(),
            Step::Id => "Id".into(),
            Step::Label => "Label".into(),
            Step::Aggregate(op) => format!("Aggregate({op:?})"),
            Step::Dedup => "Dedup".into(),
            Step::Limit(n) => format!("Limit({n})"),
            Step::Range(a, b) => format!("Range({a},{b})"),
            Step::Order(_) => "Order".into(),
            Step::Repeat { times, .. } => format!("Repeat(times={times:?})"),
            Step::Store(k) => format!("Store({k})"),
            Step::AggregateSE(k) => format!("AggregateSE({k})"),
            Step::Cap(k) => format!("Cap({k})"),
            Step::Filter(_) => "Filter".into(),
            Step::Where(_) => "Where".into(),
            Step::Not(_) => "Not".into(),
            Step::Is(_) => "Is".into(),
            Step::Union(ts) => format!("Union({})", ts.len()),
            Step::Coalesce(ts) => format!("Coalesce({})", ts.len()),
            Step::Path => "Path".into(),
            Step::SimplePath => "SimplePath".into(),
            Step::As(k) => format!("As({k})"),
            Step::Select(k) => format!("Select({})", k.join(",")),
            Step::Constant(_) => "Constant".into(),
            Step::Group(k) => format!("Group({})", k.as_deref().unwrap_or("<value>")),
            Step::GroupCount(k) => format!("GroupCount({})", k.as_deref().unwrap_or("<value>")),
            Step::Fold => "Fold".into(),
            Step::Unfold => "Unfold".into(),
            Step::Identity => "Identity".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gsa_classification() {
        let g = Step::Graph(GraphStep { kind: ElementKind::Vertices, filter: Default::default() });
        assert!(g.is_gsa());
        assert!(!Step::Dedup.is_gsa());
        assert!(Step::EdgeVertex(EdgeVertexStep { end: EdgeEnd::Out, filter: Default::default() })
            .is_gsa());
    }

    #[test]
    fn path_detection_recurses_into_repeat_and_union() {
        let t = Traversal::new(vec![Step::Repeat {
            body: Traversal::new(vec![Step::Path]),
            times: Some(2),
            until: None,
            emit: false,
        }]);
        assert!(t.needs_paths());
        let t = Traversal::new(vec![Step::Union(vec![
            Traversal::new(vec![Step::Dedup]),
            Traversal::new(vec![Step::SimplePath]),
        ])]);
        assert!(t.needs_paths());
        let t = Traversal::new(vec![Step::Dedup]);
        assert!(!t.needs_paths());
    }

    #[test]
    fn describe_tags_pushdowns() {
        let f = ElementFilter {
            aggregate: Some(AggOp::Count),
            src_ids: Some(vec![]),
            ..Default::default()
        };
        let s = Step::Graph(GraphStep { kind: ElementKind::Edges, filter: f });
        let d = s.describe();
        assert!(d.contains("agg"), "{d}");
        assert!(d.contains("src_ids"), "{d}");
    }
}
