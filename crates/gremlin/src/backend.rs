//! The graph backend trait — TinkerPop's "graph structure API" with the
//! pushdown extensions Db2 Graph adds.
//!
//! The paper's Graph Structure module "extend\[s\] the basic API to carry out
//! more sophisticated functionalities (e.g. predicate, projection, and
//! aggregate pushdown) in response to the optimized query plans" (Section
//! 6.1). [`ElementFilter`] is that extension: strategies fold filter steps,
//! property projections, aggregates, and GraphStep::VertexStep id
//! constraints into it, and each backend implementation turns the filter
//! into whatever access it natively supports (SQL for the overlay backend,
//! adjacency probes for the native store, KV lookups for the Janus-like
//! store).

use crate::error::GResult;
use crate::structure::{Edge, Element, ElementId, GValue};

/// Which element set a graph-level step addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementKind {
    Vertices,
    Edges,
}

/// Direction of a vertex step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Out,
    In,
    Both,
}

/// Which endpoint(s) an edge-to-vertex step retrieves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeEnd {
    /// `outV()`: the source vertex.
    Out,
    /// `inV()`: the destination vertex.
    In,
    /// `bothV()`: both endpoints.
    Both,
    /// `otherV()`: the endpoint other than the one traversed from.
    Other,
}

/// A property predicate pushed into the backend (from `has(...)` steps).
#[derive(Debug, Clone, PartialEq)]
pub struct PropPred {
    pub key: String,
    pub pred: Pred,
}

/// Predicate kinds (TinkerPop's `P`).
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    Eq(GValue),
    Neq(GValue),
    Gt(GValue),
    Gte(GValue),
    Lt(GValue),
    Lte(GValue),
    Within(Vec<GValue>),
    Between(GValue, GValue),
    /// `has('key')` — the property must exist.
    Exists,
    /// `hasNot('key')` — the property must be absent.
    Absent,
}

impl Pred {
    /// Evaluate against a property value (`None` = property absent).
    pub fn test(&self, value: Option<&GValue>) -> bool {
        match self {
            Pred::Exists => value.is_some(),
            Pred::Absent => value.is_none(),
            _ => {
                let Some(v) = value else { return false };
                match self {
                    Pred::Eq(x) => v.compare(x) == Some(std::cmp::Ordering::Equal),
                    Pred::Neq(x) => {
                        matches!(v.compare(x), Some(o) if o != std::cmp::Ordering::Equal)
                    }
                    Pred::Gt(x) => matches!(v.compare(x), Some(std::cmp::Ordering::Greater)),
                    Pred::Gte(x) => {
                        matches!(v.compare(x), Some(o) if o != std::cmp::Ordering::Less)
                    }
                    Pred::Lt(x) => matches!(v.compare(x), Some(std::cmp::Ordering::Less)),
                    Pred::Lte(x) => {
                        matches!(v.compare(x), Some(o) if o != std::cmp::Ordering::Greater)
                    }
                    Pred::Within(set) => {
                        set.iter().any(|x| v.compare(x) == Some(std::cmp::Ordering::Equal))
                    }
                    Pred::Between(lo, hi) => {
                        matches!(v.compare(lo), Some(o) if o != std::cmp::Ordering::Less)
                            && matches!(v.compare(hi), Some(std::cmp::Ordering::Less))
                    }
                    Pred::Exists | Pred::Absent => unreachable!(),
                }
            }
        }
    }
}

/// Aggregates that can be pushed into a graph-level step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    Count,
    Sum,
    Mean,
    Min,
    Max,
}

/// The pushdown filter attached to graph-structure-accessing steps.
///
/// All fields are optional; an empty filter means "everything".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ElementFilter {
    /// Restrict to these element ids (`g.V(ids)`).
    pub ids: Option<Vec<ElementId>>,
    /// Restrict to these labels (`hasLabel(...)` pushdown).
    pub labels: Option<Vec<String>>,
    /// Property predicates (`has(...)` pushdown).
    pub predicates: Vec<PropPred>,
    /// Property projection (`values(...)` pushdown): the backend may return
    /// only these properties on each element.
    pub projection: Option<Vec<String>>,
    /// Aggregate pushdown (`count()` etc.): the backend returns a single
    /// aggregate value instead of elements.
    pub aggregate: Option<AggOp>,
    /// For edges: restrict to edges whose source vertex id is in this set
    /// (produced by the GraphStep::VertexStep mutation strategy).
    pub src_ids: Option<Vec<ElementId>>,
    /// For edges: restrict to edges whose destination vertex id is in this
    /// set.
    pub dst_ids: Option<Vec<ElementId>>,
}

impl ElementFilter {
    pub fn with_ids(ids: Vec<ElementId>) -> ElementFilter {
        ElementFilter { ids: Some(ids), ..Default::default() }
    }

    /// True when the filter constrains nothing.
    pub fn is_empty(&self) -> bool {
        self.ids.is_none()
            && self.labels.is_none()
            && self.predicates.is_empty()
            && self.projection.is_none()
            && self.aggregate.is_none()
            && self.src_ids.is_none()
            && self.dst_ids.is_none()
    }

    /// Evaluate the non-structural parts (labels + predicates) against an
    /// element. Backends that cannot push a filter natively call this to
    /// post-filter.
    pub fn matches(&self, e: &Element) -> bool {
        if let Some(ids) = &self.ids {
            if !ids.iter().any(|i| i == e.id()) {
                return false;
            }
        }
        if let Some(labels) = &self.labels {
            if !labels.iter().any(|l| l == e.label()) {
                return false;
            }
        }
        if let Some(src_ids) = &self.src_ids {
            match e {
                Element::Edge(edge) => {
                    if !src_ids.iter().any(|i| i == &edge.src) {
                        return false;
                    }
                }
                Element::Vertex(_) => return false,
            }
        }
        if let Some(dst_ids) = &self.dst_ids {
            match e {
                Element::Edge(edge) => {
                    if !dst_ids.iter().any(|i| i == &edge.dst) {
                        return false;
                    }
                }
                Element::Vertex(_) => return false,
            }
        }
        for p in &self.predicates {
            let value = element_property(e, &p.key);
            if !p.pred.test(value.as_ref()) {
                return false;
            }
        }
        true
    }
}

/// Resolve a property key against an element, treating `id` and `label` as
/// pseudo-properties like TinkerPop's `T.id`/`T.label`.
pub fn element_property(e: &Element, key: &str) -> Option<GValue> {
    match key {
        "id" => Some(crate::structure::id_value(e.id())),
        "label" => Some(GValue::Str(e.label().to_string())),
        _ => e.properties().get(key).cloned(),
    }
}

/// Apply the projection/aggregate parts of a filter to already-filtered
/// elements — the shared "finalize" for backends that post-process instead
/// of pushing these down natively (the in-memory reference backend and the
/// baseline stores; the SQL overlay backend pushes them into SQL instead).
pub fn finalize_elements(elements: Vec<Element>, filter: &ElementFilter) -> BackendOutput {
    if let Some(op) = filter.aggregate {
        if op == AggOp::Count && filter.projection.is_none() {
            return BackendOutput::Aggregate(GValue::Long(elements.len() as i64));
        }
        let keys = filter.projection.clone().unwrap_or_default();
        let mut nums: Vec<f64> = Vec::new();
        let mut all_long = true;
        let mut count = 0i64;
        for e in &elements {
            for k in &keys {
                if let Some(v) = e.properties().get(k) {
                    count += 1;
                    match v {
                        GValue::Long(x) => nums.push(*x as f64),
                        GValue::Double(x) => {
                            all_long = false;
                            nums.push(*x);
                        }
                        _ => {}
                    }
                }
            }
        }
        if op == AggOp::Count {
            return BackendOutput::Aggregate(GValue::Long(count));
        }
        if nums.is_empty() {
            return BackendOutput::Elements(Vec::new());
        }
        let v = match op {
            AggOp::Sum => {
                let s: f64 = nums.iter().sum();
                if all_long {
                    GValue::Long(s as i64)
                } else {
                    GValue::Double(s)
                }
            }
            AggOp::Mean => GValue::Double(nums.iter().sum::<f64>() / nums.len() as f64),
            AggOp::Min => {
                let m = nums.iter().cloned().fold(f64::INFINITY, f64::min);
                if all_long {
                    GValue::Long(m as i64)
                } else {
                    GValue::Double(m)
                }
            }
            AggOp::Max => {
                let m = nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                if all_long {
                    GValue::Long(m as i64)
                } else {
                    GValue::Double(m)
                }
            }
            AggOp::Count => unreachable!(),
        };
        return BackendOutput::Aggregate(v);
    }
    if let Some(keys) = &filter.projection {
        let mut out = Vec::new();
        for e in &elements {
            for k in keys {
                if let Some(v) = e.properties().get(k) {
                    if !matches!(v, GValue::Null) {
                        out.push(v.clone());
                    }
                }
            }
        }
        return BackendOutput::Values(out);
    }
    BackendOutput::Elements(elements)
}

/// Output of a graph-level backend call.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendOutput {
    /// Matching elements (with properties, possibly trimmed to the
    /// projection).
    Elements(Vec<Element>),
    /// Projected property values, flattened per element in request order
    /// (projection pushdown).
    Values(Vec<GValue>),
    /// A single aggregate value (aggregate pushdown).
    Aggregate(GValue),
}

/// The graph structure API a provider implements.
///
/// `adjacent` and `edge_endpoints` return results grouped per input element
/// so the traversal engine can keep traverser paths aligned.
pub trait GraphBackend: Send + Sync {
    /// `g.V(...)` / `g.E(...)`: fetch elements of a kind with pushdown.
    fn graph_elements(&self, kind: ElementKind, filter: &ElementFilter) -> GResult<BackendOutput>;

    /// Adjacency: for each source vertex, its incident edges
    /// (`to == Edges`) or neighbouring vertices (`to == Vertices`) along
    /// `direction`, restricted to `edge_labels` (empty = all) and the
    /// result-element `filter`.
    fn adjacent(
        &self,
        sources: &[Element],
        direction: Direction,
        edge_labels: &[String],
        to: ElementKind,
        filter: &ElementFilter,
    ) -> GResult<Vec<Vec<Element>>>;

    /// For each edge, the requested endpoint vertex/vertices.
    /// `came_from`, when known, carries the vertex id each edge was reached
    /// from (needed by `otherV()`).
    fn edge_endpoints(
        &self,
        edges: &[Edge],
        end: EdgeEnd,
        came_from: &[Option<ElementId>],
        filter: &ElementFilter,
    ) -> GResult<Vec<Vec<Element>>>;

    /// A short name for diagnostics.
    fn backend_name(&self) -> &str {
        "graph"
    }

    /// Data-independent explanation of how the backend would evaluate one
    /// step of a compiled plan — without touching any data. Backends that
    /// compile steps to a query language return per-table decisions and the
    /// query text here (one line per entry); the default (in-memory
    /// backends) has nothing to add beyond the step description.
    fn explain_step(&self, _step: &crate::step::Step) -> Vec<String> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::Vertex;

    #[test]
    fn predicate_evaluation() {
        let v = GValue::Long(5);
        assert!(Pred::Eq(GValue::Long(5)).test(Some(&v)));
        assert!(Pred::Eq(GValue::Double(5.0)).test(Some(&v)));
        assert!(!Pred::Eq(GValue::Long(4)).test(Some(&v)));
        assert!(Pred::Neq(GValue::Long(4)).test(Some(&v)));
        assert!(Pred::Gt(GValue::Long(4)).test(Some(&v)));
        assert!(!Pred::Gt(GValue::Long(5)).test(Some(&v)));
        assert!(Pred::Gte(GValue::Long(5)).test(Some(&v)));
        assert!(Pred::Lt(GValue::Long(6)).test(Some(&v)));
        assert!(Pred::Within(vec![GValue::Long(1), GValue::Long(5)]).test(Some(&v)));
        assert!(Pred::Between(GValue::Long(5), GValue::Long(6)).test(Some(&v)));
        assert!(!Pred::Between(GValue::Long(6), GValue::Long(9)).test(Some(&v)));
        assert!(Pred::Exists.test(Some(&v)));
        assert!(!Pred::Exists.test(None));
        assert!(!Pred::Eq(GValue::Long(5)).test(None));
    }

    #[test]
    fn filter_matches_labels_ids_and_predicates() {
        let v = Vertex::new(1, "patient").with_property("name", "Alice");
        let e = Element::Vertex(v);
        let mut f = ElementFilter::default();
        assert!(f.is_empty());
        assert!(f.matches(&e));
        f.labels = Some(vec!["patient".into()]);
        assert!(f.matches(&e));
        f.labels = Some(vec!["disease".into()]);
        assert!(!f.matches(&e));
        f.labels = None;
        f.ids = Some(vec![ElementId::Long(2)]);
        assert!(!f.matches(&e));
        f.ids = Some(vec![ElementId::Long(1)]);
        f.predicates.push(PropPred { key: "name".into(), pred: Pred::Eq(GValue::Str("Alice".into())) });
        assert!(f.matches(&e));
        f.predicates.push(PropPred { key: "missing".into(), pred: Pred::Exists });
        assert!(!f.matches(&e));
    }

    #[test]
    fn filter_src_dst_constraints_apply_to_edges_only() {
        let edge = crate::structure::Edge::new(1, "knows", 10, 20);
        let e = Element::Edge(edge);
        let f = ElementFilter { src_ids: Some(vec![ElementId::Long(10)]), ..Default::default() };
        assert!(f.matches(&e));
        let f = ElementFilter { src_ids: Some(vec![ElementId::Long(99)]), ..Default::default() };
        assert!(!f.matches(&e));
        let f = ElementFilter { dst_ids: Some(vec![ElementId::Long(20)]), ..Default::default() };
        assert!(f.matches(&e));
        let v = Element::Vertex(Vertex::new(10, "x"));
        assert!(!f.matches(&v));
    }

    #[test]
    fn pseudo_properties() {
        let v = Element::Vertex(Vertex::new(3, "thing").with_property("a", 1i64));
        assert_eq!(element_property(&v, "id"), Some(GValue::Long(3)));
        assert_eq!(element_property(&v, "label"), Some(GValue::Str("thing".into())));
        assert_eq!(element_property(&v, "a"), Some(GValue::Long(1)));
        assert_eq!(element_property(&v, "zz"), None);
    }
}
