//! Abstract syntax tree for Gremlin scripts.
//!
//! A script is a sequence of `;`-separated statements, each optionally
//! assigning its result to a variable — matching the paper's Section 4
//! example:
//!
//! ```text
//! similar_diseases = g.V().hasLabel('patient')...cap('x').next();
//! g.V(similar_diseases).in('hasDisease').dedup().values('patientID')
//! ```

use crate::step::CompareOp;
use crate::structure::GValue;

/// A full Gremlin script.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    pub statements: Vec<Statement>,
}

/// One statement: an optional assignment target plus a rooted traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    pub assign: Option<String>,
    pub traversal: SourceCall,
    pub terminal: Option<Terminal>,
}

/// Terminal methods that end a traversal chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminal {
    /// `.next()` — take the first result.
    Next,
    /// `.toList()` — collect all results into a list.
    ToList,
    /// `.iterate()` — discard results (side effects only).
    Iterate,
    /// `.explain()` — do not execute; return the optimized plan and, when
    /// the backend supports it, the SQL each GSA step would generate.
    Explain,
    /// `.profile()` — execute, then return a per-step profiling report.
    Profile,
}

/// A traversal rooted at the graph source `g`: the start step (`V`/`E`)
/// plus the following chained steps.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceCall {
    pub start: StepCall,
    pub steps: Vec<StepCall>,
}

/// One chained method call.
#[derive(Debug, Clone, PartialEq)]
pub struct StepCall {
    pub name: String,
    pub args: Vec<Arg>,
}

/// A predicate invocation (TinkerPop's `P`): `eq(5)`, `within('a','b')`.
#[derive(Debug, Clone, PartialEq)]
pub struct PredArg {
    pub name: String,
    pub args: Vec<Arg>,
}

/// An argument of a step call.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// A literal value.
    Value(GValue),
    /// A script variable reference (bound by a prior statement).
    Var(String),
    /// An anonymous traversal (`out('isa').dedup()` or `__.out(...)`).
    Anon(Vec<StepCall>),
    /// A predicate (`eq(...)`, `within(...)`, ...).
    Pred(PredArg),
    /// Comparison sugar: `outV().id() == id2`.
    Compare {
        traversal: Vec<StepCall>,
        op: CompareOp,
        value: Box<Arg>,
    },
}

impl StepCall {
    pub fn new(name: &str, args: Vec<Arg>) -> StepCall {
        StepCall { name: name.to_string(), args }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let s = StepCall::new("has", vec![Arg::Value(GValue::Str("name".into()))]);
        assert_eq!(s.name, "has");
        assert_eq!(s.args.len(), 1);
    }
}
