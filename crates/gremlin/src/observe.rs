//! Query observability hooks.
//!
//! A [`TraversalObserver`] receives events from the compile pipeline (which
//! strategies rewrote the plan) and the interpreter (per-step wall time and
//! traverser counts). The overlay backend in `db2graph-core` implements it
//! with its `Profiler`, which additionally collects backend-side events
//! (table elimination decisions, generated SQL, template cache hits).
//!
//! The trait lives here — below the backend crates — so the gremlin layer
//! never depends on a particular backend's metrics representation. All
//! methods have empty defaults: an observer implements only what it needs,
//! and the pipeline only pays for observation when an observer is attached.

/// Receiver for compile-time and run-time traversal events.
pub trait TraversalObserver: Send + Sync {
    /// A strategy changed the plan. `before`/`after` are
    /// [`crate::step::Traversal::describe`] renderings; called only when
    /// they differ.
    fn strategy_applied(&self, _name: &str, _before: &str, _after: &str) {}

    /// A top-level step is about to run. Paired with [`step_finished`] —
    /// an observer that builds hierarchical traces opens a span here and
    /// closes it when the step finishes, so backend events emitted during
    /// the step nest under it.
    ///
    /// [`step_finished`]: TraversalObserver::step_finished
    fn step_started(&self, _index: usize, _description: &str) {}

    /// A top-level step finished. `index` is the step's position in the
    /// optimized plan, `in_count`/`out_count` are the traverser frontier
    /// sizes before and after, `nanos` is wall time spent in the step
    /// (including backend calls).
    fn step_finished(
        &self,
        _index: usize,
        _description: &str,
        _in_count: usize,
        _out_count: usize,
        _nanos: u64,
    ) {
    }

    /// Render and clear the accumulated per-query report, if this observer
    /// builds one. Used by the script-level `.profile()` terminal, which
    /// must return the report as a traversal result.
    fn take_report(&self) -> Option<String> {
        None
    }
}

/// An observer that ignores every event (useful in tests).
pub struct NoopObserver;

impl TraversalObserver for NoopObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_inert() {
        let o = NoopObserver;
        o.strategy_applied("x", "a", "b");
        o.step_started(0, "s");
        o.step_finished(0, "s", 1, 2, 3);
        assert!(o.take_report().is_none());
    }
}
