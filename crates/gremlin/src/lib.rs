//! # gremlin — a Gremlin traversal substrate
//!
//! A from-scratch implementation of the parts of the Apache TinkerPop stack
//! that the paper *"IBM Db2 Graph"* (SIGMOD 2020) builds on:
//!
//! * the **property graph structure API** ([`structure`]): vertices, edges,
//!   ids, values — with element *provenance* (source table) recorded, as the
//!   paper's runtime optimizations require;
//! * a **Gremlin parser** ([`parser`]) for the traversal subset the paper
//!   exercises (LinkBench queries, the Section 4 healthcare script,
//!   repeat/dedup/store/cap, predicates, filters, unions, paths);
//! * a **step plan** ([`step`]) mirroring TinkerPop's step taxonomy, with
//!   the pushdown-extended [`backend::ElementFilter`] on every
//!   graph-structure-accessing (GSA) step;
//! * the **provider strategy API** ([`strategy`]): plan-rewriting hooks that
//!   Db2 Graph uses for predicate/projection/aggregate pushdown and the
//!   GraphStep::VertexStep mutation;
//! * a batching **interpreter** ([`exec`]) that makes one backend call per
//!   GSA step for the whole traverser frontier;
//! * a reference **in-memory backend** ([`memgraph`]) used as a correctness
//!   oracle.
//!
//! Any store that implements [`backend::GraphBackend`] gets the whole
//! language: the relational overlay in `db2graph-core` and both baseline
//! stores in `gstore` plug in here, exactly as graph databases plug into
//! TinkerPop.
//!
//! ## Example
//!
//! ```
//! use gremlin::memgraph::MemGraph;
//! use gremlin::script::ScriptRunner;
//! use gremlin::structure::{Edge, GValue, Vertex};
//!
//! let g = MemGraph::new();
//! g.add_vertex(Vertex::new(1, "person").with_property("name", "Alice"));
//! g.add_vertex(Vertex::new(2, "person").with_property("name", "Bob"));
//! g.add_edge(Edge::new(10, "knows", 1, 2));
//!
//! let runner = ScriptRunner::new(&g);
//! let out = runner.run("g.V(1).out('knows').values('name')").unwrap();
//! assert_eq!(out, vec![GValue::Str("Bob".into())]);
//! ```

pub mod ast;
pub mod backend;
pub mod compile;
pub mod error;
pub mod exec;
pub mod memgraph;
pub mod observe;
pub mod parser;
pub mod script;
pub mod step;
pub mod strategy;
pub mod structure;

pub use backend::{
    AggOp, BackendOutput, Direction, EdgeEnd, ElementFilter, ElementKind, GraphBackend, Pred,
    PropPred,
};
pub use error::{GremlinError, GResult};
pub use exec::{ExecOptions, Executor, SideEffects, Traverser};
pub use observe::{NoopObserver, TraversalObserver};
pub use script::ScriptRunner;
pub use step::{CompareOp, FilterSpec, GraphStep, Step, Traversal, VertexStep};
pub use strategy::{StrategyRegistry, TraversalStrategy};
pub use structure::{Edge, Element, ElementId, GValue, Vertex};
