//! Facade crate re-exporting the full public API of the workspace.
pub use db2graph_core as core;
pub use db2graph_server as server;
pub use gremlin;
pub use gstore;
pub use linkbench;
pub use reldb;
