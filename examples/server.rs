//! The graph query service over the healthcare overlay — the network
//! face of the paper's stack, the way a Gremlin server fronts TinkerPop.
//!
//! Run with: `cargo run --release --example server`
//!
//! Knobs (environment): `DB2GRAPH_HTTP_ADDR` (default `127.0.0.1:8182`),
//! `DB2GRAPH_MAX_INFLIGHT`, `DB2GRAPH_QUERY_TIMEOUT_MS`; set
//! `DB2GRAPH_DATA_DIR` (plus optionally `DB2GRAPH_DURABILITY` and
//! `DB2GRAPH_CHECKPOINT_MS`) to persist across restarts — a reopened
//! directory recovers from its checkpoint + WAL instead of reseeding.
//! `DB2GRAPH_SQL_ENDPOINT=1` enables the raw-SQL admin endpoint
//! (`POST /sql`), which is off by default because it can mutate
//! anything. `DB2GRAPH_REPLICA_OF=host:port` turns the server into a
//! log-shipping read replica of a durable primary (see
//! `docs/REPLICATION.md`) — it bootstraps from the primary instead of
//! seeding and refuses writes. Then:
//!
//! ```sh
//! curl -s localhost:8182/healthz
//! curl -s localhost:8182/query -d "g.V().hasLabel('patient').values('name')"
//! curl -s localhost:8182/metrics
//! ```
//!
//! See `docs/SERVER.md` for the full endpoint reference.

#[path = "common/seed.rs"]
mod seed;

use db2graph::core::config::healthcare_example_json;
use db2graph::core::{Db2Graph, GraphOptions, OverlayConfig};
use db2graph::server::{GraphServer, ServerConfig};

fn main() {
    // Log every query as "slow" so /slow-queries has content to show in a
    // demo; production deployments set a real threshold instead.
    let options = GraphOptions { slow_query_nanos: Some(0), ..Default::default() };
    let config = ServerConfig::from_env();
    let graph = if config.replica_of.is_some() {
        // A follower never seeds: its state is a mirror of the primary's,
        // pulled over /checkpoint + /wal before the overlay reads the
        // catalog (ServerConfig::open_database runs the initial sync).
        let db = match config.open_database() {
            Ok(db) => db,
            Err(e) => {
                eprintln!("db2graph replica failed its initial sync: {e}");
                std::process::exit(1);
            }
        };
        let overlay = OverlayConfig::from_json(healthcare_example_json()).expect("overlay json");
        Db2Graph::open_with_options(db, &overlay, options).expect("overlay")
    } else {
        let (_db, graph) = seed::open_healthcare(options);
        graph
    };
    let handle = match GraphServer::start(graph, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("db2graph server failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("db2graph server listening on http://{}", handle.addr());
    println!("endpoints: POST /query /explain /profile (/sql if DB2GRAPH_SQL_ENDPOINT=1) · GET /metrics /slow-queries /workload /healthz /readyz /events /wal /checkpoint");
    handle.wait();
}
