//! The graph query service over the healthcare overlay — the network
//! face of the paper's stack, the way a Gremlin server fronts TinkerPop.
//!
//! Run with: `cargo run --release --example server`
//!
//! Knobs (environment): `DB2GRAPH_HTTP_ADDR` (default `127.0.0.1:8182`),
//! `DB2GRAPH_MAX_INFLIGHT`, `DB2GRAPH_QUERY_TIMEOUT_MS`; set
//! `DB2GRAPH_DATA_DIR` (plus optionally `DB2GRAPH_DURABILITY` and
//! `DB2GRAPH_CHECKPOINT_MS`) to persist across restarts — a reopened
//! directory recovers from its checkpoint + WAL instead of reseeding.
//! `DB2GRAPH_SQL_ENDPOINT=1` enables the raw-SQL admin endpoint
//! (`POST /sql`), which is off by default because it can mutate
//! anything. Then:
//!
//! ```sh
//! curl -s localhost:8182/healthz
//! curl -s localhost:8182/query -d "g.V().hasLabel('patient').values('name')"
//! curl -s localhost:8182/metrics
//! ```
//!
//! See `docs/SERVER.md` for the full endpoint reference.

#[path = "common/seed.rs"]
mod seed;

use db2graph::core::GraphOptions;
use db2graph::server::{GraphServer, ServerConfig};

fn main() {
    // Log every query as "slow" so /slow-queries has content to show in a
    // demo; production deployments set a real threshold instead.
    let options = GraphOptions { slow_query_nanos: Some(0), ..Default::default() };
    let (_db, graph) = seed::open_healthcare(options);
    let config = ServerConfig::from_env();
    let handle = match GraphServer::start(graph, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("db2graph server failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("db2graph server listening on http://{}", handle.addr());
    println!("endpoints: POST /query /explain /profile (/sql if DB2GRAPH_SQL_ENDPOINT=1) · GET /metrics /slow-queries /workload /healthz");
    handle.wait();
}
