//! The paper's Section 4 synergistic-analytics scenario, end to end:
//! a Gremlin graph query embedded in SQL via the `graphQuery` polymorphic
//! table function, joined with device data and aggregated — "graph queries
//! excel at navigating through complex relationships, whereas SQL is good
//! at the heavy-lifting group-by and aggregation".
//!
//! Run with: `cargo run --example healthcare_analytics`

use std::sync::Arc;

use db2graph::core::config::healthcare_example_json;
use db2graph::core::Db2Graph;
use db2graph::reldb::Database;

fn main() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR, address VARCHAR, subscriptionID BIGINT);
         CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, conceptName VARCHAR);
         CREATE TABLE DiseaseOntology (sourceID BIGINT, targetID BIGINT, type VARCHAR,
            FOREIGN KEY (sourceID) REFERENCES Disease(diseaseID),
            FOREIGN KEY (targetID) REFERENCES Disease(diseaseID));
         CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR,
            FOREIGN KEY (patientID) REFERENCES Patient(patientID),
            FOREIGN KEY (diseaseID) REFERENCES Disease(diseaseID));
         CREATE TABLE DeviceData (subscriptionID BIGINT, day BIGINT, steps BIGINT, exerciseMinutes BIGINT);
         CREATE INDEX ix_dd_sub ON DeviceData (subscriptionID);
         INSERT INTO Patient VALUES
            (1, 'Alice', '12 Oak St', 100), (2, 'Bob', '9 Elm St', 101),
            (3, 'Carol', '4 Pine St', 102), (4, 'Dave', NULL, 103);
         INSERT INTO Disease VALUES
            (10, 'E11', 'type 2 diabetes'), (11, 'E10', 'type 1 diabetes'),
            (12, 'E08', 'diabetes'), (13, 'E00', 'metabolic disease'), (14, 'I10', 'hypertension');
         INSERT INTO DiseaseOntology VALUES (10, 12, 'isa'), (11, 12, 'isa'), (12, 13, 'isa');
         INSERT INTO HasDisease VALUES
            (1, 10, 'diagnosed 2019'), (2, 11, 'diagnosed 2020'), (3, 14, NULL), (4, 12, NULL);
         INSERT INTO DeviceData VALUES
            (100, 1, 9000, 40), (100, 2, 11000, 55),
            (101, 1, 3000, 10), (101, 2, 5000, 20),
            (102, 1, 12000, 70), (103, 1, 800, 5);",
    )
    .expect("schema + data");

    let graph = Db2Graph::open_json(db.clone(), healthcare_example_json()).expect("overlay");
    graph.register_graph_query("graphQuery");

    // The paper's query: find patients with similar diseases to patient 1
    // (2 hops up + 2 hops down the disease ontology) via Gremlin, then let
    // SQL join them to their wearable-device data and aggregate.
    let sql = "SELECT patientID, AVG(steps) AS avg_steps, AVG(exerciseMinutes) AS avg_minutes \
        FROM DeviceData AS D, \
        TABLE(graphQuery('gremlin', 'similar_diseases = g.V().hasLabel(''patient'').has(''patientID'', 1).out(''hasDisease'')\
            .repeat(out(''isa'').dedup().store(''x'')).times(2)\
            .repeat(in(''isa'').dedup().store(''x'')).times(2).cap(''x'').next();\
            g.V(similar_diseases).in(''hasDisease'').dedup().values(''patientID'', ''subscriptionID'')')) \
        AS P (patientID BIGINT, subscriptionID BIGINT) \
        WHERE D.subscriptionID = P.subscriptionID \
        GROUP BY patientID ORDER BY patientID";

    println!("== Section 4: synergistic SQL + graph query ==\n");
    println!("{sql}\n");
    let rs = db.execute(sql).expect("synergistic query");
    println!("{rs}");

    println!("The graph part navigated the ontology (patients with diseases similar to");
    println!("patient 1's), the SQL part joined with DeviceData and computed the averages.");
    println!("Carol (hypertension only) is correctly absent.\n");

    // Contrast: the same question in one Gremlin script (no SQL join) —
    // possible, but the aggregation side is where SQL shines.
    let gremlin_only = "similar_diseases = g.V().hasLabel('patient').has('patientID', 1).out('hasDisease')\
        .repeat(out('isa').dedup().store('x')).times(2)\
        .repeat(in('isa').dedup().store('x')).times(2).cap('x').next();\
        g.V(similar_diseases).in('hasDisease').dedup().values('name')";
    let names = graph.run(gremlin_only).expect("gremlin query");
    println!(
        "Patients found by the graph side alone: {:?}",
        names.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );

    // What the telemetry layer observed while the queries above ran: the
    // SQL Dialect's workload view (pattern costs + wall-time-ranked index
    // suggestions) and the aggregate latency snapshot. With
    // `DB2GRAPH_TRACE=<path>` set, a Perfetto-loadable Chrome trace of
    // every span is additionally written when the graph drops.
    println!("\n== Telemetry ==\n");
    print!("{}", graph.workload_report());
    let m = graph.metrics();
    println!("metrics: {}", m.to_json().to_compact());
    if graph.trace_sink().is_some() {
        println!("tracing: enabled ({} span(s) retained)", m.trace_spans);
    }
}
