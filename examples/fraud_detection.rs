//! The Section 7 finance scenario: mule-fraud detection over live bank
//! transaction data — "graph queries are used to detect how a set of
//! fraudsters are connected to a set of beneficiaries through a sequence of
//! mule accounts". The data is updated by the bank's operational systems
//! and simultaneously queried as a graph; the example also shows the
//! "surprising benefit" of Section 5: *derived edges* defined as a view.
//!
//! Run with: `cargo run --example fraud_detection`

use std::sync::Arc;

use db2graph::core::{Db2Graph, ETableConfig, OverlayConfig, VTableConfig};
use db2graph::reldb::Database;

fn overlay() -> OverlayConfig {
    OverlayConfig {
        v_tables: vec![VTableConfig {
            table_name: "Account".into(),
            prefixed_id: false,
            id: "accountID".into(),
            fix_label: false,
            label: "kind".into(), // fraudster / mule / beneficiary / regular
            properties: Some(vec!["accountID".into(), "holder".into(), "riskScore".into()]),
        }],
        e_tables: vec![ETableConfig {
            table_name: "Transfer".into(),
            src_v_table: Some("Account".into()),
            src_v: "fromAccount".into(),
            dst_v_table: Some("Account".into()),
            dst_v: "toAccount".into(),
            prefixed_edge_id: true,
            implicit_edge_id: false,
            id: Some("'tx'::transferID".into()),
            fix_label: true,
            label: "'transfer'".into(),
            properties: Some(vec!["amount".into(), "day".into()]),
        }],
    }
}

fn main() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Account (accountID BIGINT PRIMARY KEY, holder VARCHAR, kind VARCHAR, riskScore DOUBLE);
         CREATE TABLE Transfer (transferID BIGINT PRIMARY KEY, fromAccount BIGINT, toAccount BIGINT,
                                amount DOUBLE, day BIGINT,
            FOREIGN KEY (fromAccount) REFERENCES Account(accountID),
            FOREIGN KEY (toAccount) REFERENCES Account(accountID));
         CREATE INDEX ix_tr_from ON Transfer (fromAccount);
         CREATE INDEX ix_tr_to ON Transfer (toAccount);
         -- fraudsters 1-2, mules 10-13, beneficiaries 20-21, regulars 30+
         INSERT INTO Account VALUES
            (1, 'F. Schemer', 'fraudster', 0.95), (2, 'A. Grifter', 'fraudster', 0.9),
            (10, 'Mule One', 'mule', 0.5), (11, 'Mule Two', 'mule', 0.5),
            (12, 'Mule Three', 'mule', 0.4), (13, 'Mule Four', 'mule', 0.6),
            (20, 'B. Holder', 'beneficiary', 0.2), (21, 'C. Holder', 'beneficiary', 0.3),
            (30, 'Jane Doe', 'regular', 0.0), (31, 'John Roe', 'regular', 0.0);
         INSERT INTO Transfer VALUES
            (100, 1, 10, 9500.0, 1),
            (101, 10, 11, 9200.0, 2),
            (102, 11, 20, 9000.0, 3),   -- 1 -> 10 -> 11 -> 20 (3-hop mule chain)
            (103, 2, 12, 5000.0, 1),
            (104, 12, 21, 4900.0, 2),   -- 2 -> 12 -> 21 (2-hop chain)
            (105, 30, 31, 120.0, 4),    -- innocent
            (106, 13, 30, 700.0, 5);",
    )
    .expect("schema + data");

    let graph = Db2Graph::open(db.clone(), &overlay()).expect("overlay");

    println!("== Mule-fraud detection (Section 7, finance) ==\n");

    // Fraudster -> ... -> beneficiary paths up to 4 hops, with paths shown.
    let q = "g.V().hasLabel('fraudster')\
        .repeat(out('transfer').simplePath()).emit().times(4)\
        .hasLabel('beneficiary').path()";
    println!("query: {q}\n");
    let out = graph.run(q).expect("path query");
    for p in &out {
        println!("  suspicious chain: {p}");
    }

    // The timeliness claim: a new transfer closes a chain and is seen by
    // the very next graph query — no export/import cycle.
    println!("\nBank's operational system inserts a new transfer 13 -> 21...");
    db.execute("INSERT INTO Transfer VALUES (107, 1, 13, 8000.0, 6)").unwrap();
    db.execute("INSERT INTO Transfer VALUES (108, 13, 21, 7900.0, 7)").unwrap();
    let out = graph.run(q).expect("path query after update");
    println!("chains now visible: {}", out.len());

    // Derived edges (the Section 5 "surprising benefit"): a non-
    // materialized view that short-circuits two-hop transfers, overlaid as
    // a new edge type — no million-edge insert, no maintenance logic.
    db.execute(
        "CREATE VIEW TwoHop AS \
         SELECT a.fromAccount AS fromAccount, b.toAccount AS toAccount, \
                a.amount AS firstAmount \
         FROM Transfer a JOIN Transfer b ON a.toAccount = b.fromAccount",
    )
    .unwrap();
    let mut cfg = overlay();
    cfg.e_tables.push(ETableConfig {
        table_name: "TwoHop".into(),
        src_v_table: Some("Account".into()),
        src_v: "fromAccount".into(),
        dst_v_table: Some("Account".into()),
        dst_v: "toAccount".into(),
        prefixed_edge_id: false,
        implicit_edge_id: true,
        id: None,
        fix_label: true,
        label: "'twoHop'".into(),
        properties: Some(vec!["firstAmount".into()]),
    });
    let graph2 = Db2Graph::open(db.clone(), &cfg).expect("overlay with derived edges");
    let out = graph2
        .run("g.V().hasLabel('fraudster').out('twoHop').dedup().values('holder')")
        .expect("derived edge query");
    println!(
        "\nAccounts exactly two transfers away from a fraudster (via derived edges): {:?}",
        out.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );

    // Deleting a base transfer automatically removes derived edges.
    db.execute("DELETE FROM Transfer WHERE transferID = 101").unwrap();
    let out = graph2
        .run("g.V().hasLabel('fraudster').out('twoHop').dedup().values('holder')")
        .expect("derived edge query after delete");
    println!(
        "After deleting transfer 101, derived edges shrink automatically: {:?}",
        out.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
}
