//! Quickstart: overlay a property graph onto existing relational tables and
//! query it with Gremlin — the paper's Figure 2 healthcare scenario.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use db2graph::core::config::healthcare_example_json;
use db2graph::core::Db2Graph;
use db2graph::reldb::Database;

fn main() {
    // 1. "Existing" relational data: the four tables in Figure 2's
    //    dashed-line box, plus wearable-device data.
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR, address VARCHAR, subscriptionID BIGINT);
         CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, conceptName VARCHAR);
         CREATE TABLE DiseaseOntology (sourceID BIGINT, targetID BIGINT, type VARCHAR,
            FOREIGN KEY (sourceID) REFERENCES Disease(diseaseID),
            FOREIGN KEY (targetID) REFERENCES Disease(diseaseID));
         CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR,
            FOREIGN KEY (patientID) REFERENCES Patient(patientID),
            FOREIGN KEY (diseaseID) REFERENCES Disease(diseaseID));
         INSERT INTO Patient VALUES
            (1, 'Alice', '12 Oak St', 100), (2, 'Bob', '9 Elm St', 101);
         INSERT INTO Disease VALUES
            (10, 'E11', 'type 2 diabetes'), (11, 'E10', 'type 1 diabetes'), (12, 'E08', 'diabetes');
         INSERT INTO DiseaseOntology VALUES (10, 12, 'isa'), (11, 12, 'isa');
         INSERT INTO HasDisease VALUES (1, 10, 'diagnosed 2019'), (2, 11, NULL);",
    )
    .expect("schema + data");

    // 2. Open a graph view over those tables — no copy, no transformation.
    //    The overlay configuration is the JSON file from Section 5 of the
    //    paper, verbatim.
    let graph = Db2Graph::open_json(db.clone(), healthcare_example_json()).expect("overlay");

    println!("== overlay topology ==");
    for vt in &graph.topology().vertex_tables {
        println!("  vertex table {:12} label={:?}", vt.name, vt.label);
    }
    for et in &graph.topology().edge_tables {
        println!("  edge table   {:12} label={:?}", et.name, et.label);
    }

    // 3. Gremlin queries run as SQL against the live tables.
    println!("\n== Gremlin over relational data ==");
    for q in [
        "g.V().count()",
        "g.V().hasLabel('patient').values('name')",
        "g.V().has('name', 'Alice').out('hasDisease').values('conceptName')",
        "g.V().has('name', 'Alice').out('hasDisease').out('isa').values('conceptName')",
        "g.V(12).in('isa').in('hasDisease').dedup().values('name')",
    ] {
        let out = graph.run(q).expect("query");
        let rendered: Vec<String> = out.iter().map(|v| v.to_string()).collect();
        println!("  {q}\n    -> [{}]", rendered.join(", "));
    }

    // 4. The killer feature: SQL updates are instantly visible to graph
    //    queries, because graph and SQL share the same single copy of data.
    db.execute("INSERT INTO HasDisease VALUES (2, 10, 'new diagnosis')").unwrap();
    let out = graph
        .run("g.V(10).in('hasDisease').values('name')")
        .expect("query after update");
    println!("\nAfter a SQL INSERT, patients with type 2 diabetes: {:?}",
        out.iter().map(|v| v.to_string()).collect::<Vec<_>>());

    // 5. And the optimizer is observable: the same query plan the paper's
    //    strategies produce.
    println!(
        "\nOptimized plan for g.V(10).in('hasDisease').count():\n  {}",
        graph.explain("g.V(10).in('hasDisease').count()").unwrap()
    );
    let stats = graph.stats();
    println!("\nOverlay stats: {stats:?}");
}
