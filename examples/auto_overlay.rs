//! AutoOverlay (Section 5.1): derive a graph overlay automatically from a
//! star schema's primary/foreign-key constraints — Algorithms 1 and 2 of
//! the paper — then edit nothing and start traversing.
//!
//! Run with: `cargo run --example auto_overlay`

use std::sync::Arc;

use db2graph::core::{auto_overlay, identify_tables, Db2Graph};
use db2graph::reldb::Database;

fn main() {
    // A retail star schema: two dimension tables, one fact table (which
    // AutoOverlay turns into BOTH a vertex table and edge tables), and a
    // many-to-many link table (which becomes C(2,2)=1 edge table).
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Customer (custID BIGINT PRIMARY KEY, custName VARCHAR, city VARCHAR);
         CREATE TABLE Product (prodID BIGINT PRIMARY KEY, prodName VARCHAR, price DOUBLE);
         -- Fact table: has a primary key AND foreign keys.
         CREATE TABLE Sale (saleID BIGINT PRIMARY KEY, custID BIGINT, prodID BIGINT, qty BIGINT,
            FOREIGN KEY (custID) REFERENCES Customer(custID),
            FOREIGN KEY (prodID) REFERENCES Product(prodID));
         -- Pure link table: no primary key, two foreign keys.
         CREATE TABLE Wishlist (custID BIGINT, prodID BIGINT, addedDay BIGINT,
            FOREIGN KEY (custID) REFERENCES Customer(custID),
            FOREIGN KEY (prodID) REFERENCES Product(prodID));
         INSERT INTO Customer VALUES (1, 'Ada', 'Zurich'), (2, 'Ben', 'Oslo');
         INSERT INTO Product VALUES (100, 'Lamp', 40.0), (101, 'Desk', 250.0), (102, 'Chair', 90.0);
         INSERT INTO Sale VALUES (1000, 1, 100, 2), (1001, 1, 101, 1), (1002, 2, 102, 4);
         INSERT INTO Wishlist VALUES (1, 102, 7), (2, 100, 8);",
    )
    .expect("schema + data");

    // Algorithm 1: classify tables.
    let roles = identify_tables(&db.table_schemas());
    println!("== Algorithm 1: table roles ==");
    println!("  vertex tables: {:?}", roles.vertex_tables);
    println!("  edge tables:   {:?}", roles.edge_tables);

    // Algorithm 2: generate the overlay configuration.
    let config = auto_overlay(&db, None).expect("auto overlay");
    println!("\n== Algorithm 2: generated overlay configuration (JSON) ==\n");
    println!("{}", config.to_json());

    // Open and traverse — zero manual mapping work.
    let graph = Db2Graph::open(db.clone(), &config).expect("overlay");

    println!("\n== traversals over the generated overlay ==");
    // The fact table acts as vertices (sales) and as edges (sale->customer,
    // sale->product).
    let q = "g.V().hasLabel('Sale').out('Sale_Customer').values('custName')";
    println!("  {q}");
    println!(
        "    -> {:?}",
        graph.run(q).unwrap().iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
    // What did Ada buy?
    let q = "g.V('customer::1').in('Sale_Customer').out('Sale_Product').values('prodName')";
    println!("  {q}");
    println!(
        "    -> {:?}",
        graph.run(q).unwrap().iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
    // Wishlist edges come from the PK-less link table.
    let q = "g.V('customer::2').out('Customer_Wishlist_Product').values('prodName')";
    println!("  {q}");
    println!(
        "    -> {:?}",
        graph.run(q).unwrap().iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
    // Who wants what Ada bought?
    let q = "g.V('customer::1').in('Sale_Customer').out('Sale_Product')\
             .in('Customer_Wishlist_Product').dedup().values('custName')";
    println!("  {q}");
    println!(
        "    -> {:?}",
        graph.run(q).unwrap().iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
}
