//! The Section 7 law-enforcement scenario: a police-department dataset
//! with persons, organizations, arrests, vehicles, phones, and addresses —
//! all overlaid as one property graph with AutoOverlay-style multi-type
//! vertices, queried with path traversals starting from a single vertex.
//!
//! Run with: `cargo run --example law_enforcement`

use std::sync::Arc;

use db2graph::core::{auto_overlay, Db2Graph};
use db2graph::reldb::Database;

fn main() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Person (personID BIGINT PRIMARY KEY, name VARCHAR, role VARCHAR);
         CREATE TABLE Organization (orgID BIGINT PRIMARY KEY, orgName VARCHAR, orgType VARCHAR);
         CREATE TABLE Arrest (arrestID BIGINT PRIMARY KEY, charge VARCHAR, day BIGINT);
         CREATE TABLE Phone (phoneID BIGINT PRIMARY KEY, number VARCHAR);
         CREATE TABLE Address (addressID BIGINT PRIMARY KEY, street VARCHAR, city VARCHAR);
         -- link tables (no PKs, pairs of FKs -> AutoOverlay edge tables)
         CREATE TABLE ArrestedIn (personID BIGINT, arrestID BIGINT, roleInArrest VARCHAR,
            FOREIGN KEY (personID) REFERENCES Person(personID),
            FOREIGN KEY (arrestID) REFERENCES Arrest(arrestID));
         CREATE TABLE MemberOf (personID BIGINT, orgID BIGINT, since BIGINT,
            FOREIGN KEY (personID) REFERENCES Person(personID),
            FOREIGN KEY (orgID) REFERENCES Organization(orgID));
         CREATE TABLE UsesPhone (personID BIGINT, phoneID BIGINT,
            FOREIGN KEY (personID) REFERENCES Person(personID),
            FOREIGN KEY (phoneID) REFERENCES Phone(phoneID));
         CREATE TABLE LivesAt (personID BIGINT, addressID BIGINT,
            FOREIGN KEY (personID) REFERENCES Person(personID),
            FOREIGN KEY (addressID) REFERENCES Address(addressID));
         INSERT INTO Person VALUES
            (1, 'R. Malone', 'suspect'), (2, 'S. Vann', 'suspect'),
            (3, 'T. Webb', 'witness'), (4, 'U. Cole', 'suspect');
         INSERT INTO Organization VALUES
            (100, 'Eastside Crew', 'gang'), (101, 'Harbor Imports LLC', 'legitimate');
         INSERT INTO Arrest VALUES (500, 'burglary', 120), (501, 'fraud', 130);
         INSERT INTO Phone VALUES (900, '555-0101'), (901, '555-0102'), (902, '555-0103');
         INSERT INTO Address VALUES (800, '12 Dock Rd', 'Harborton'), (801, '77 Hill St', 'Harborton');
         INSERT INTO ArrestedIn VALUES
            (1, 500, 'suspect'), (2, 500, 'suspect'), (3, 500, 'witness'), (4, 501, 'suspect');
         INSERT INTO MemberOf VALUES (1, 100, 2018), (2, 100, 2020), (4, 101, 2015);
         INSERT INTO UsesPhone VALUES (1, 900), (2, 901), (4, 902);
         INSERT INTO LivesAt VALUES (1, 800), (2, 801), (4, 800);",
    )
    .expect("schema + data");

    // AutoOverlay (Algorithms 1 & 2): derive the whole graph overlay from
    // primary/foreign-key metadata — 5 vertex tables, 4 edge tables.
    let config = auto_overlay(&db, None).expect("auto overlay");
    println!("== AutoOverlay-generated configuration ==");
    println!(
        "  {} vertex tables, {} edge tables",
        config.v_tables.len(),
        config.e_tables.len()
    );
    for e in &config.e_tables {
        println!("    edge {:12} {} -> {} (label {})", e.table_name,
            e.src_v.split(':').next().unwrap_or(""),
            e.dst_v.split(':').next().unwrap_or(""), e.label);
    }

    let graph = Db2Graph::open(db.clone(), &config).expect("overlay");

    // Case study 1: phone numbers and addresses of the suspects in arrest
    // 500 (a path query from a single vertex, as in Section 7).
    println!("\n== Case study: arrest 500 ==");
    let q = "g.V('arrest::500').in('Person_ArrestedIn_Arrest')\
        .has('role', 'suspect').as('p')\
        .out('Person_UsesPhone_Phone').values('number')";
    let phones = graph.run(q).expect("phones");
    println!(
        "suspect phone numbers: {:?}",
        phones.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
    let q = "g.V('arrest::500').in('Person_ArrestedIn_Arrest')\
        .has('role', 'suspect')\
        .out('Person_LivesAt_Address').dedup().values('street')";
    let addrs = graph.run(q).expect("addresses");
    println!(
        "suspect addresses: {:?}",
        addrs.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );

    // Case study 2: do all suspects of arrest 500 belong to one criminal
    // organization?
    let q = "g.V('arrest::500').in('Person_ArrestedIn_Arrest')\
        .has('role', 'suspect')\
        .out('Person_MemberOf_Organization')\
        .has('orgType', 'gang').dedup().values('orgName')";
    let orgs = graph.run(q).expect("orgs");
    println!(
        "criminal organizations of all suspects: {:?}",
        orgs.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );

    // Case study 3: who shares an address with a gang member?
    let q = "g.V().hasLabel('Organization').has('orgType', 'gang')\
        .in('Person_MemberOf_Organization')\
        .out('Person_LivesAt_Address')\
        .in('Person_LivesAt_Address').dedup().values('name')";
    let cohab = graph.run(q).expect("cohabitants");
    println!(
        "people sharing addresses with gang members: {:?}",
        cohab.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );

    // The dataset is updated in real time; graph queries always see the
    // latest data (the reason a standalone graph DB didn't fit, per the
    // paper).
    db.execute("INSERT INTO UsesPhone VALUES (2, 902)").unwrap();
    let phones = graph
        .run("g.V('arrest::500').in('Person_ArrestedIn_Arrest').has('role','suspect').out('Person_UsesPhone_Phone').dedup().values('number')")
        .expect("phones after update");
    println!(
        "\nafter a live update, suspect phones now: {:?}",
        phones.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
}
