//! A dual SQL + Gremlin console over one database — the paper's first
//! interface ("users can have a SQL console and a Gremlin console opened
//! side by side to query the same underlying data either as relational
//! tables or as a property graph", Section 4).
//!
//! Lines starting with `g.` run as Gremlin; everything else runs as SQL.
//! Meta-commands: `\plan <gremlin>` shows the optimized step plan,
//! `\stats` shows overlay counters, `\quit` exits.
//!
//! Run with: `cargo run --example console`
//! (or pipe a script: `echo "g.V().count()" | cargo run --example console`)

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use db2graph::core::config::healthcare_example_json;
use db2graph::core::Db2Graph;
use db2graph::reldb::Database;

fn main() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR, address VARCHAR, subscriptionID BIGINT);
         CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, conceptName VARCHAR);
         CREATE TABLE DiseaseOntology (sourceID BIGINT, targetID BIGINT, type VARCHAR,
            FOREIGN KEY (sourceID) REFERENCES Disease(diseaseID),
            FOREIGN KEY (targetID) REFERENCES Disease(diseaseID));
         CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR,
            FOREIGN KEY (patientID) REFERENCES Patient(patientID),
            FOREIGN KEY (diseaseID) REFERENCES Disease(diseaseID));
         INSERT INTO Patient VALUES (1, 'Alice', '12 Oak St', 100), (2, 'Bob', '9 Elm St', 101);
         INSERT INTO Disease VALUES (10, 'E11', 'type 2 diabetes'), (11, 'E10', 'type 1 diabetes'), (12, 'E08', 'diabetes');
         INSERT INTO DiseaseOntology VALUES (10, 12, 'isa'), (11, 12, 'isa');
         INSERT INTO HasDisease VALUES (1, 10, 'diagnosed 2019'), (2, 11, NULL);",
    )
    .expect("seed data");
    let graph = Db2Graph::open_json(db.clone(), healthcare_example_json()).expect("overlay");
    graph.register_graph_query("graphQuery");

    println!("db2graph console — SQL and Gremlin over the same tables.");
    println!("  g.<...>        Gremlin   |  SELECT/INSERT/...  SQL");
    println!("  \\plan g.<...>  show optimized plan  |  \\stats  overlay counters  |  \\quit");
    println!();

    let stdin = io::stdin();
    let interactive = atty_like();
    loop {
        if interactive {
            print!("> ");
            io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        if !interactive {
            println!("> {line}");
        }
        if line == "\\quit" || line == "\\q" {
            break;
        }
        if line == "\\stats" {
            println!("{:?}", graph.stats());
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\plan ") {
            match graph.explain(rest) {
                Ok(plan) => println!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if line.starts_with("g.") {
            match graph.run(line) {
                Ok(values) => {
                    for v in &values {
                        println!("==> {v}");
                    }
                    println!("({} result{})", values.len(), if values.len() == 1 { "" } else { "s" });
                }
                Err(e) => println!("error: {e}"),
            }
        } else {
            match db.execute(line) {
                Ok(rs) => print!("{rs}"),
                Err(e) => println!("error: {e}"),
            }
        }
    }
}

/// Crude interactivity guess without a libc dependency: honor an env
/// override, default to non-interactive prompt suppression when piped
/// input is likely (PS1 unset in CI is good enough for an example).
fn atty_like() -> bool {
    std::env::var("CONSOLE_INTERACTIVE").map(|v| v == "1").unwrap_or(false)
}
