//! A dual SQL + Gremlin console over one database — the paper's first
//! interface ("users can have a SQL console and a Gremlin console opened
//! side by side to query the same underlying data either as relational
//! tables or as a property graph", Section 4).
//!
//! Lines starting with `g.` run as Gremlin; everything else runs as SQL.
//! Meta-commands: `\plan <gremlin>` shows the optimized step plan,
//! `\stats` shows overlay counters, `\quit` exits.
//!
//! Run with: `cargo run --example console`
//! (or pipe a script: `echo "g.V().count()" | cargo run --example console`)
//!
//! `--serve` starts the HTTP query service (see `docs/SERVER.md`) on the
//! same seeded overlay instead of the REPL, so the interactive demo and
//! the network path share one setup.

#[path = "common/seed.rs"]
mod seed;

use std::io::{self, BufRead, Write};

use db2graph::server::{GraphServer, ServerConfig};

fn main() {
    let (db, graph) = seed::open_healthcare(Default::default());

    if std::env::args().any(|a| a == "--serve") {
        let handle = match GraphServer::start(graph, ServerConfig::from_env()) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("console --serve failed to start: {e}");
                std::process::exit(1);
            }
        };
        println!("db2graph console serving on http://{}", handle.addr());
        handle.wait();
        return;
    }

    println!("db2graph console — SQL and Gremlin over the same tables.");
    println!("  g.<...>        Gremlin   |  SELECT/INSERT/...  SQL");
    println!("  \\plan g.<...>  show optimized plan  |  \\stats  overlay counters  |  \\quit");
    println!();

    let stdin = io::stdin();
    let interactive = atty_like();
    loop {
        if interactive {
            print!("> ");
            io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        if !interactive {
            println!("> {line}");
        }
        if line == "\\quit" || line == "\\q" {
            break;
        }
        if line == "\\stats" {
            println!("{:?}", graph.stats());
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\plan ") {
            match graph.explain(rest) {
                Ok(plan) => println!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if line.starts_with("g.") {
            match graph.run(line) {
                Ok(values) => {
                    for v in &values {
                        println!("==> {v}");
                    }
                    println!("({} result{})", values.len(), if values.len() == 1 { "" } else { "s" });
                }
                Err(e) => println!("error: {e}"),
            }
        } else {
            match db.execute(line) {
                Ok(rs) => print!("{rs}"),
                Err(e) => println!("error: {e}"),
            }
        }
    }
}

/// Crude interactivity guess without a libc dependency: honor an env
/// override, default to non-interactive prompt suppression when piped
/// input is likely (PS1 unset in CI is good enough for an example).
fn atty_like() -> bool {
    std::env::var("CONSOLE_INTERACTIVE").map(|v| v == "1").unwrap_or(false)
}
