//! Shared setup for the interactive console and the HTTP server examples:
//! the paper's Figure 2 healthcare schema, seeded, overlaid, and with the
//! `graphQuery` table function registered — one code path, so whatever
//! the demo shows is exactly what the network serves.

use std::sync::Arc;

use db2graph::core::config::healthcare_example_json;
use db2graph::core::{Db2Graph, GraphOptions};
use db2graph::reldb::Database;

pub fn open_healthcare(options: GraphOptions) -> (Arc<Database>, Arc<Db2Graph>) {
    // In-memory by default; durable (WAL + checkpoints, with crash
    // recovery) when `options.data_dir` / `DB2GRAPH_DATA_DIR` is set.
    let db = options.open_database().expect("open database");
    // A recovered data directory already holds the schema and data —
    // reseeding would collide with the primary keys.
    if db.get_table("Patient").is_none() {
        seed_healthcare(&db);
    }
    let graph = Db2Graph::open_with_options(
        db.clone(),
        &db2graph::core::OverlayConfig::from_json(healthcare_example_json()).expect("overlay json"),
        options,
    )
    .expect("overlay");
    graph.register_graph_query("graphQuery");
    (db, graph)
}

fn seed_healthcare(db: &Database) {
    db.execute_script(
        "CREATE TABLE Patient (patientID BIGINT PRIMARY KEY, name VARCHAR, address VARCHAR, subscriptionID BIGINT);
         CREATE TABLE Disease (diseaseID BIGINT PRIMARY KEY, conceptCode VARCHAR, conceptName VARCHAR);
         CREATE TABLE DiseaseOntology (sourceID BIGINT, targetID BIGINT, type VARCHAR,
            FOREIGN KEY (sourceID) REFERENCES Disease(diseaseID),
            FOREIGN KEY (targetID) REFERENCES Disease(diseaseID));
         CREATE TABLE HasDisease (patientID BIGINT, diseaseID BIGINT, description VARCHAR,
            FOREIGN KEY (patientID) REFERENCES Patient(patientID),
            FOREIGN KEY (diseaseID) REFERENCES Disease(diseaseID));
         INSERT INTO Patient VALUES (1, 'Alice', '12 Oak St', 100), (2, 'Bob', '9 Elm St', 101);
         INSERT INTO Disease VALUES (10, 'E11', 'type 2 diabetes'), (11, 'E10', 'type 1 diabetes'), (12, 'E08', 'diabetes');
         INSERT INTO DiseaseOntology VALUES (10, 12, 'isa'), (11, 12, 'isa');
         INSERT INTO HasDisease VALUES (1, 10, 'diagnosed 2019'), (2, 11, NULL);",
    )
    .expect("seed data");
}
